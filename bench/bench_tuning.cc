// Reproduces the paper's hyper-parameter selection narrative: "based on
// the empirical study on tuning set, we set the default component weight
// alpha = 0.1". Grid-searches alpha on the 10% tune split and reports the
// tune-split MAP per candidate plus the winner.

#include <cstdio>

#include "bench_common.h"
#include "eval/tuning.h"
#include "util/logging.h"
#include "util/timer.h"

int main() {
  using namespace inf2vec;         // NOLINT
  using namespace inf2vec::bench;  // NOLINT

  const std::vector<double> candidates = {0.0, 0.1, 0.3, 0.5, 1.0};

  BenchReport report("tuning");
  report.SetConfig("dataset_scale", 0.7);
  for (DatasetKind kind :
       {DatasetKind::kDiggLike, DatasetKind::kFlickrLike}) {
    const Dataset d = MakeDataset(kind, /*scale=*/0.7);
    PrintBanner("Alpha selection on the tuning split", d);

    ZooOptions options;
    WallTimer timer;
    Result<AlphaTuningResult> result =
        TuneAlpha(d.world.graph, d.split.train, d.split.tune,
                  MakeInf2vecConfig(options), candidates);
    INF2VEC_CHECK(result.ok()) << result.status().ToString();
    obs::JsonValue& row = report.AddResult(
        d.name, timer.ElapsedSeconds() * 1000.0, /*throughput=*/0.0,
        candidates.size());
    row.Set("best_alpha", result.value().best_alpha);
    obs::JsonValue map_by_alpha = obs::JsonValue::Object();

    std::printf("%-8s %-10s %-10s\n", "alpha", "tune-MAP", "tune-AUC");
    for (size_t i = 0; i < candidates.size(); ++i) {
      const RankingMetrics& m = result.value().per_candidate[i];
      std::printf("%-8.2f %-10.4f %-10.4f%s\n", candidates[i], m.map, m.auc,
                  candidates[i] == result.value().best_alpha
                      ? "   <- selected"
                      : "");
      map_by_alpha.Set(std::to_string(candidates[i]), m.map);
    }
    row.Set("map_by_alpha", std::move(map_by_alpha));
    std::printf("\n");
  }
  report.Write();
  std::printf("shape check vs paper Section V-A-2: a small but non-zero "
              "alpha wins — both pure-global (0.0) and pure-local (1.0) "
              "contexts underperform the mix.\n");
  return 0;
}
