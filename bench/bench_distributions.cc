// Figures 1-3 reproduction: the data-analysis plots of Section III-A.
//
//  Fig. 1  source-user frequency distribution  (power law)
//  Fig. 2  target-user frequency distribution  (power law)
//  Fig. 3  CDF of #already-active friends at adoption time
//          (Digg: CDF(0) ~ 0.7, Flickr: CDF(0) ~ 0.5)
//
// Prints log-binned histograms (the series a log-log plot would show) and
// the CDF table.

#include <cstdio>

#include "bench_common.h"
#include "diffusion/influence_pairs.h"
#include "util/histogram.h"
#include "util/timer.h"

namespace {

using namespace inf2vec;  // NOLINT

void PrintLogBinned(const char* label, const Histogram& hist) {
  std::printf("%s  (log-log slope %.2f)\n", label, hist.LogLogSlope());
  std::printf("  %-18s %s\n", "frequency-bin", "#users");
  uint64_t lo = 1;
  while (lo <= hist.Max()) {
    const uint64_t hi = lo * 2 - 1;
    uint64_t count = 0;
    for (uint64_t v = lo; v <= hi && v <= hist.Max(); ++v) {
      count += hist.CountOf(v);
    }
    if (count > 0) {
      std::printf("  [%6llu, %6llu]   %llu\n",
                  static_cast<unsigned long long>(lo),
                  static_cast<unsigned long long>(hi),
                  static_cast<unsigned long long>(count));
    }
    lo = hi + 1;
  }
}

}  // namespace

int main() {
  using namespace inf2vec::bench;  // NOLINT

  BenchReport report("distributions");
  for (DatasetKind kind :
       {DatasetKind::kDiggLike, DatasetKind::kFlickrLike}) {
    const Dataset d = MakeDataset(kind);
    PrintBanner("Figures 1-3: influence-pair distributions", d);

    WallTimer timer;
    const PairFrequencyTable pairs(d.world.graph, d.world.log);
    std::printf("total influence pairs: %llu\n\n",
                static_cast<unsigned long long>(pairs.total_pairs()));
    const Histogram source = pairs.SourceFrequencyDistribution();
    const Histogram target = pairs.TargetFrequencyDistribution();
    PrintLogBinned("Fig. 1: times a user acts as SOURCE", source);
    std::printf("\n");
    PrintLogBinned("Fig. 2: times a user acts as TARGET", target);

    const Histogram cdf = ActiveFriendCountDistribution(d.world.graph,
                                                        d.world.log);
    const double wall_ms = timer.ElapsedSeconds() * 1000.0;
    std::printf("\nFig. 3: CDF of #active friends before adoption\n");
    for (uint64_t x : {0ULL, 1ULL, 2ULL, 3ULL, 5ULL, 10ULL, 20ULL}) {
      std::printf("  CDF(%2llu) = %.3f\n",
                  static_cast<unsigned long long>(x), cdf.CdfAt(x));
    }
    std::printf("paper reference: CDF(0) = 0.7 on Digg, 0.5 on Flickr\n\n");

    obs::JsonValue& row = report.AddResult(d.name, wall_ms);
    row.Set("total_pairs", pairs.total_pairs());
    row.Set("source_loglog_slope", source.LogLogSlope());
    row.Set("target_loglog_slope", target.LogLogSlope());
    row.Set("cdf_zero_active_friends", cdf.CdfAt(0));
  }
  report.Write();
  return 0;
}
