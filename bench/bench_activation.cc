// Table II reproduction: activation prediction on both datasets.
//
// All seven methods of Section V-A-3 ranked by AUC / MAP / P@10 / P@50 /
// P@100, with mean (stdev) over multiple seeds for Inf2vec, as the paper
// reports. Expected shape: Inf2vec best everywhere; ST/EM mid-pack;
// Emb-IC at or below ST/EM; MF decent AUC; Node2vec and DE poor.

#include <cstdio>

#include "bench_common.h"
#include "util/logging.h"
#include "util/timer.h"
#include "eval/activation_task.h"
#include "eval/harness.h"
#include "eval/significance.h"

namespace {

void SetMetricColumns(inf2vec::obs::JsonValue& row,
                      const inf2vec::RankingMetrics& m) {
  row.Set("auc", m.auc);
  row.Set("map", m.map);
  row.Set("p10", m.p10);
  row.Set("p50", m.p50);
  row.Set("p100", m.p100);
}

}  // namespace

int main() {
  using namespace inf2vec;         // NOLINT
  using namespace inf2vec::bench;  // NOLINT

  constexpr int kInf2vecRuns = 5;

  BenchReport report("activation");
  report.SetConfig("inf2vec_runs", kInf2vecRuns);
  for (DatasetKind kind :
       {DatasetKind::kDiggLike, DatasetKind::kFlickrLike}) {
    const Dataset d = MakeDataset(kind);
    PrintBanner("Table II: activation prediction", d);

    ZooOptions options;
    const ModelZoo zoo(d, options);

    ResultTable table("Activation prediction on " + d.name);
    for (const auto& [name, model] : zoo.All()) {
      if (name == "Inf2vec") continue;  // Reported with stdev below.
      WallTimer timer;
      const RankingMetrics metrics =
          EvaluateActivation(*model, d.world.graph, d.split.test);
      table.AddRow(name, metrics);
      SetMetricColumns(report.AddResult(d.name + "/" + name,
                                        timer.ElapsedSeconds() * 1000.0),
                       metrics);
    }

    // Inf2vec: mean and stdev over seeds (paper: average of 10 runs).
    std::vector<RankingMetrics> runs;
    WallTimer inf_timer;
    for (int run = 0; run < kInf2vecRuns; ++run) {
      ZooOptions run_options = options;
      run_options.seed = 1000 + run;
      Result<Inf2vecModel> model = Inf2vecModel::Train(
          d.world.graph, d.split.train, MakeInf2vecConfig(run_options));
      INF2VEC_CHECK(model.ok()) << model.status().ToString();
      const EmbeddingPredictor pred = model.value().Predictor();
      runs.push_back(EvaluateActivation(pred, d.world.graph, d.split.test));
    }
    const MetricsSummary summary = SummarizeRuns(runs);
    table.AddRowWithStdev("Inf2vec", summary);
    SetMetricColumns(
        report.AddResult(d.name + "/Inf2vec",
                         inf_timer.ElapsedSeconds() * 1000.0,
                         /*throughput=*/0.0, kInf2vecRuns),
        summary.mean);
    table.Print();

    // The paper: "all reported improvements over baseline methods are
    // statistically significant with p-value < 0.05". Paired Wilcoxon
    // signed-rank over per-episode AUC, Inf2vec vs each baseline.
    const std::vector<RankingMetrics> inf_eps = EvaluateActivationPerEpisode(
        zoo.inf2vec().Predictor(), d.world.graph, d.split.test);
    std::vector<double> inf_auc;
    inf_auc.reserve(inf_eps.size());
    for (const RankingMetrics& m : inf_eps) inf_auc.push_back(m.auc);
    std::printf("paired Wilcoxon (per-episode AUC), Inf2vec vs:\n");
    for (const auto& [name, model] : zoo.All()) {
      if (name == "Inf2vec") continue;
      const std::vector<RankingMetrics> base_eps =
          EvaluateActivationPerEpisode(*model, d.world.graph, d.split.test);
      std::vector<double> base_auc;
      base_auc.reserve(base_eps.size());
      for (const RankingMetrics& m : base_eps) base_auc.push_back(m.auc);
      const Result<WilcoxonResult> test =
          WilcoxonSignedRank(inf_auc, base_auc);
      if (test.ok()) {
        std::printf("  %-10s z=%+6.2f  p=%.4f%s\n", name.c_str(),
                    test.value().z, test.value().p_value,
                    test.value().p_value < 0.05 ? "  (significant)" : "");
      } else {
        std::printf("  %-10s (not testable: %s)\n", name.c_str(),
                    test.status().message().c_str());
      }
    }
    std::printf("\n");
  }
  report.Write();
  std::printf(
      "shape check vs paper Table II: Inf2vec > {ST, EM} > Emb-IC; MF solid "
      "AUC; DE and Node2vec near the bottom.\n");
  return 0;
}
