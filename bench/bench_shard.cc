// Scatter-gather serving bench: the coordinator's fan-out /topk against
// an in-process shard fleet (real loopback HTTP, the production
// ShardService handlers) versus the single-node InfluenceService scan of
// the same table. Reports the distribution cost of sharding — JSON
// round-trips, per-shard gather, thread fan-out, merge — at 1 and 3
// shards, plus the routed /score path, through BENCH_shard.json.
//
// Arms:
//   topk_single   single-node InfluenceService::TopK, no HTTP (baseline)
//   topk_1shard   coordinator over ONE shard: pure scatter-gather
//                 overhead (serialize + HTTP + parse), no parallelism
//   topk_3shard   coordinator over three shards: each backend scans a
//                 third of the table concurrently
//   score_route   coordinator routed /score (gather + one backend call)
//
// Every coordinator ranking is checked bit-identical to the single-node
// answer while the clock runs (summary.merge_equality_pass) — the bench
// doubles as a continuous merge-equality property check at bench scale.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "embedding/model_io.h"
#include "obs/http_server.h"
#include "obs/metrics.h"
#include "serve/influence_service.h"
#include "shard/coordinator.h"
#include "shard/shard_service.h"
#include "shard/shard_split.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

using namespace inf2vec;         // NOLINT
using namespace inf2vec::bench;  // NOLINT

// Large enough that the per-shard scan dominates fixed HTTP cost at 3
// shards, small enough that artifact split + load stays in seconds.
constexpr uint32_t kNumUsers = 200000;
constexpr uint32_t kDim = 32;
constexpr uint32_t kSeedsPerSet = 4;
constexpr uint32_t kNumSeedSets = 64;
constexpr uint32_t kTopKQueries = 48;
constexpr uint32_t kScoreQueries = 400;
constexpr uint32_t kTopK = 10;

uint64_t NowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

double PercentileUs(std::vector<uint64_t>& latencies, double q) {
  INF2VEC_CHECK(!latencies.empty());
  std::sort(latencies.begin(), latencies.end());
  const double rank = q * static_cast<double>(latencies.size() - 1);
  return static_cast<double>(latencies[static_cast<size_t>(rank + 0.5)]);
}

struct ArmStats {
  double wall_ms = 0.0;
  double qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

template <typename Fn>
ArmStats RunArm(uint32_t n, Fn&& fn) {
  std::vector<uint64_t> latencies;
  latencies.reserve(n);
  const WallTimer wall;
  for (uint32_t i = 0; i < n; ++i) {
    const uint64_t start = NowUs();
    fn(i);
    latencies.push_back(NowUs() - start);
  }
  ArmStats stats;
  stats.wall_ms = wall.ElapsedMillis();
  stats.qps = static_cast<double>(n) / (stats.wall_ms / 1000.0);
  stats.p50_us = PercentileUs(latencies, 0.50);
  stats.p99_us = PercentileUs(latencies, 0.99);
  return stats;
}

/// One in-process shard backend: service + HTTP server + its registry.
struct ShardBackend {
  obs::MetricsRegistry registry;
  std::unique_ptr<shard::ShardService> service;
  std::unique_ptr<obs::StatsServer> server;
};

/// Splits the model into `num_shards` slices and serves each slice from
/// an in-process epoll server, exactly like `serve --shard` does.
std::vector<std::unique_ptr<ShardBackend>> StartFleet(
    const std::string& model_path, const std::string& dir,
    uint32_t num_shards) {
  std::filesystem::create_directories(dir);
  auto paths = shard::SplitModelArtifact(model_path, dir, num_shards);
  INF2VEC_CHECK(paths.ok()) << paths.status().ToString();
  std::vector<std::unique_ptr<ShardBackend>> fleet;
  for (const std::string& path : paths.value()) {
    auto backend = std::make_unique<ShardBackend>();
    auto service =
        shard::ShardService::Load(path, {}, &backend->registry);
    INF2VEC_CHECK(service.ok()) << service.status().ToString();
    backend->service = std::make_unique<shard::ShardService>(
        std::move(service).value());
    backend->server = std::make_unique<obs::StatsServer>(
        obs::StatsServerOptions{}, &backend->registry);
    shard::RegisterShardEndpoints(backend->server.get(),
                                  backend->service.get());
    INF2VEC_CHECK(backend->server->Start().ok());
    fleet.push_back(std::move(backend));
  }
  return fleet;
}

shard::ShardCoordinator Connect(
    const std::vector<std::unique_ptr<ShardBackend>>& fleet) {
  shard::CoordinatorOptions options;
  for (const auto& backend : fleet) {
    options.backends.push_back("127.0.0.1:" +
                               std::to_string(backend->server->port()));
  }
  options.shard_deadline_ms = 10000;
  auto coordinator = shard::ShardCoordinator::Connect(std::move(options));
  INF2VEC_CHECK(coordinator.ok()) << coordinator.status().ToString();
  return std::move(coordinator).value();
}

}  // namespace

int main() {
  // Fixed-seed synthetic table: scatter-gather cost depends on shape, not
  // on learned values.
  Rng rng(777);
  EmbeddingStore store(kNumUsers, kDim);
  store.InitUniform(-0.5, 0.5, rng);
  for (UserId u = 0; u < kNumUsers; ++u) {
    store.mutable_source_bias(u) = rng.UniformDouble(-0.1, 0.1);
    store.mutable_target_bias(u) = rng.UniformDouble(-0.1, 0.1);
  }

  const std::string model_path = "BENCH_shard_model.i2v";
  ModelMetadata metadata;
  metadata.aggregation = "Ave";
  metadata.dim = kDim;
  INF2VEC_CHECK(SaveModelArtifact(store, metadata, model_path).ok());

  auto single_or = serve::InfluenceService::Load(model_path, {});
  INF2VEC_CHECK(single_or.ok()) << single_or.status().ToString();
  const serve::InfluenceService single = std::move(single_or).value();
  single.Warm();

  auto fleet1 = StartFleet(model_path, "BENCH_shard_fleet1", 1);
  auto fleet3 = StartFleet(model_path, "BENCH_shard_fleet3", 3);
  shard::ShardCoordinator coord1 = Connect(fleet1);
  shard::ShardCoordinator coord3 = Connect(fleet3);

  std::vector<std::vector<UserId>> seed_sets(kNumSeedSets);
  for (auto& seeds : seed_sets) {
    seeds.reserve(kSeedsPerSet);
    for (uint32_t i = 0; i < kSeedsPerSet; ++i) {
      seeds.push_back(static_cast<UserId>(rng.UniformU64(kNumUsers)));
    }
  }

  std::printf("shard bench: %u users, dim %u, k=%u, fleets of 1 and 3\n\n",
              kNumUsers, kDim, kTopK);

  // The single-node reference answers, computed once and reused as the
  // merge-equality oracle inside the coordinator arms.
  std::vector<serve::TopKResult> expected;
  expected.reserve(kTopKQueries);
  const ArmStats topk_single = RunArm(kTopKQueries, [&](uint32_t i) {
    serve::TopKRequest request;
    request.seeds = seed_sets[i % kNumSeedSets];
    request.k = kTopK;
    auto result = single.TopK(request);
    INF2VEC_CHECK(result.ok()) << result.status().ToString();
    expected.push_back(std::move(result).value());
  });

  bool equality_pass = true;
  const auto run_coord = [&](shard::ShardCoordinator& coord, uint32_t i) {
    shard::CoordTopKRequest request;
    request.seeds = seed_sets[i % kNumSeedSets];
    request.k = kTopK;
    auto merged = coord.TopK(request);
    INF2VEC_CHECK(merged.ok()) << merged.status().ToString();
    INF2VEC_CHECK(!merged.value().degraded);
    // Bit-identical to the single-node ranking, on the clock.
    const auto& got = merged.value().entries;
    const auto& want = expected[i].entries;
    if (got.size() != want.size()) equality_pass = false;
    for (size_t j = 0; equality_pass && j < got.size(); ++j) {
      if (got[j].user != want[j].user || got[j].score != want[j].score) {
        equality_pass = false;
      }
    }
  };

  const ArmStats topk_1shard = RunArm(
      kTopKQueries, [&](uint32_t i) { run_coord(coord1, i); });
  const ArmStats topk_3shard = RunArm(
      kTopKQueries, [&](uint32_t i) { run_coord(coord3, i); });
  INF2VEC_CHECK(equality_pass) << "coordinator ranking diverged";

  const ArmStats score_route = RunArm(kScoreQueries, [&](uint32_t i) {
    const UserId candidate = (i * 7919) % kNumUsers;
    auto scored = coord3.Score(candidate, seed_sets[i % kNumSeedSets],
                               std::nullopt, 0);
    INF2VEC_CHECK(scored.ok()) << scored.status().ToString();
  });

  for (auto& backend : fleet1) backend->server->Stop();
  for (auto& backend : fleet3) backend->server->Stop();

  const double overhead_1shard = topk_1shard.p50_us / topk_single.p50_us;
  const double speedup_3shard = topk_1shard.p50_us / topk_3shard.p50_us;

  std::printf("%-14s %10s %12s %12s %12s\n", "arm", "wall ms", "qps",
              "p50 us", "p99 us");
  const auto print_arm = [](const char* name, const ArmStats& s) {
    std::printf("%-14s %10.1f %12.0f %12.0f %12.0f\n", name, s.wall_ms,
                s.qps, s.p50_us, s.p99_us);
  };
  print_arm("topk_single", topk_single);
  print_arm("topk_1shard", topk_1shard);
  print_arm("topk_3shard", topk_3shard);
  print_arm("score_route", score_route);
  std::printf(
      "\nscatter-gather: %.2fx single-node p50 at 1 shard (distribution "
      "tax), %.2fx faster at 3 shards than 1; merge equality %s\n",
      overhead_1shard, speedup_3shard, equality_pass ? "pass" : "FAIL");

  BenchReport report("shard");
  report.SetConfig("num_users", static_cast<int64_t>(kNumUsers));
  report.SetConfig("dim", static_cast<int64_t>(kDim));
  report.SetConfig("k", static_cast<int64_t>(kTopK));
  report.SetConfig("seeds_per_set", static_cast<int64_t>(kSeedsPerSet));
  report.SetSummary("merge_equality_pass", equality_pass);
  report.SetSummary("scatter_gather_overhead_1shard", overhead_1shard);
  report.SetSummary("speedup_3shard_over_1shard", speedup_3shard);
  report.SetSummary("topk_single_p50_us", topk_single.p50_us);
  report.SetSummary("topk_3shard_p50_us", topk_3shard.p50_us);
  const auto add_row = [&report](const char* name, const ArmStats& s,
                                 uint64_t reps) {
    obs::JsonValue& row = report.AddResult(name, s.wall_ms, s.qps, reps);
    row.Set("p50_us", s.p50_us);
    row.Set("p99_us", s.p99_us);
  };
  add_row("topk_single", topk_single, kTopKQueries);
  add_row("topk_1shard", topk_1shard, kTopKQueries);
  add_row("topk_3shard", topk_3shard, kTopKQueries);
  add_row("score_route", score_route, kScoreQueries);
  report.Write();

  std::error_code ec;
  std::filesystem::remove(model_path, ec);
  std::filesystem::remove_all("BENCH_shard_fleet1", ec);
  std::filesystem::remove_all("BENCH_shard_fleet3", ec);
  return 0;
}
