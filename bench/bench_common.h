#ifndef INF2VEC_BENCH_BENCH_COMMON_H_
#define INF2VEC_BENCH_BENCH_COMMON_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "action/action_log.h"
#include "baselines/em_ic.h"
#include "baselines/emb_ic.h"
#include "baselines/ic_baseline.h"
#include "baselines/mf_bpr.h"
#include "baselines/node2vec.h"
#include "core/inf2vec_model.h"
#include "eval/metrics.h"
#include "obs/json.h"
#include "synth/world_generator.h"

namespace inf2vec {
namespace bench {

/// A reproducible benchmark dataset: synthetic world + 80/10/10 split.
/// Seeds are fixed so every bench binary sees identical data.
struct Dataset {
  std::string name;
  synth::World world;
  LogSplit split;
};

/// Which paper dataset the synthetic profile mirrors.
enum class DatasetKind { kDiggLike, kFlickrLike };

/// Builds the standard bench dataset. `scale` in (0, 1] shrinks the user
/// and item counts proportionally for the faster sweep benches.
Dataset MakeDataset(DatasetKind kind, double scale = 1.0);

/// Shared hyper-parameters for the standard model roster. Defaults mirror
/// the paper's Section V-A-2 with bench-friendly Monte-Carlo counts.
struct ZooOptions {
  uint32_t dim = 50;
  uint32_t inf2vec_epochs = 16;
  /// |N| per positive; the paper uses 5-10 and the upper end measurably
  /// helps on the flickr-like data.
  uint32_t num_negatives = 10;
  uint32_t context_length = 50;
  double alpha = 0.1;
  uint32_t mc_simulations = 300;
  uint32_t em_iterations = 15;
  uint32_t emb_ic_iterations = 12;
  uint64_t seed = 1;
};

/// The full evaluated roster of Section V-A-3, trained and ready to score.
/// Owns every model; All() exposes them through the common interface in
/// the paper's table order.
class ModelZoo {
 public:
  ModelZoo(const Dataset& dataset, const ZooOptions& options);

  /// (display name, scorer) in Table II row order.
  std::vector<std::pair<std::string, const InfluenceModel*>> All() const;

  const Inf2vecModel& inf2vec() const { return *inf2vec_; }
  const EmbIcModel& emb_ic() const { return *emb_ic_; }
  const MfBprModel& mf() const { return *mf_; }
  const Node2vecModel& node2vec() const { return *node2vec_; }

 private:
  std::unique_ptr<IcBaselineModel> de_;
  std::unique_ptr<IcBaselineModel> st_;
  std::unique_ptr<IcBaselineModel> em_;
  std::unique_ptr<EmbIcModel> emb_ic_;
  std::unique_ptr<MfBprModel> mf_;
  std::unique_ptr<Node2vecModel> node2vec_;
  std::unique_ptr<Inf2vecModel> inf2vec_;
  std::unique_ptr<EmbeddingPredictor> mf_pred_;
  std::unique_ptr<EmbeddingPredictor> node2vec_pred_;
  std::unique_ptr<EmbeddingPredictor> inf2vec_pred_;
};

/// Standard Inf2vec config derived from ZooOptions (exposed so sweep
/// benches can vary one knob at a time).
Inf2vecConfig MakeInf2vecConfig(const ZooOptions& options);

/// Prints the standard bench banner: binary purpose + dataset stats.
void PrintBanner(const std::string& title, const Dataset& dataset);

/// Unified machine-readable bench output: every bench binary routes its
/// measurements through this writer, so any two BENCH_*.json files diff
/// with tools/bench_compare.py (and tools/bench_gate.sh gates them in
/// ctest). Schema v1:
///
///   {"schema_version": 1, "bench": "<name>",
///    "config": {...},                    // knob echo, bench-specific
///    "summary": {...},                   // optional headline numbers
///    "results": [{"name": "<row>", "wall_ms": W, "throughput": T,
///                 "repetitions": R, ...extra columns...}]}
///
/// `throughput` is units/second (higher is better); rows measuring pure
/// latency pass <= 0, which omits the key and makes comparators fall back
/// to wall_ms (lower is better). Row names must be unique per bench —
/// they are the join key when diffing two files.
class BenchReport {
 public:
  explicit BenchReport(std::string name);

  /// Bench-configuration echo (dataset, epochs, dims...).
  void SetConfig(const std::string& key, obs::JsonValue value);

  /// Headline numbers outside the per-row results (overheads, gates...).
  void SetSummary(const std::string& key, obs::JsonValue value);

  /// Appends a measured row; the returned object is live until Write, so
  /// callers can attach extra columns with Set().
  obs::JsonValue& AddResult(const std::string& row_name, double wall_ms,
                            double throughput = 0.0,
                            uint64_t repetitions = 1);

  obs::JsonValue ToJson() const;

  /// Writes BENCH_<name>.json into the working directory and prints the
  /// path (best-effort: a write failure is reported, not fatal — the
  /// human-readable stdout tables already happened).
  void Write() const;

 private:
  std::string name_;
  obs::JsonValue config_ = obs::JsonValue::Object();
  obs::JsonValue summary_ = obs::JsonValue::Object();
  std::vector<obs::JsonValue> results_;
};

}  // namespace bench
}  // namespace inf2vec

#endif  // INF2VEC_BENCH_BENCH_COMMON_H_
