// Table IV reproduction: the Inf2vec-L ablation (alpha = 1.0, local
// influence context only) on both tasks and both datasets, next to full
// Inf2vec. Expected shape: Inf2vec-L consistently below Inf2vec — the
// global user-similarity context carries real signal.

#include <cstdio>

#include "bench_common.h"
#include "util/logging.h"
#include "util/timer.h"
#include "eval/activation_task.h"
#include "eval/diffusion_task.h"
#include "eval/harness.h"

int main() {
  using namespace inf2vec;         // NOLINT
  using namespace inf2vec::bench;  // NOLINT

  BenchReport report("inf2vec_l");
  for (DatasetKind kind :
       {DatasetKind::kDiggLike, DatasetKind::kFlickrLike}) {
    const Dataset d = MakeDataset(kind);
    PrintBanner("Table IV: Inf2vec-L ablation", d);

    ZooOptions options;
    Result<Inf2vecModel> full = Inf2vecModel::Train(
        d.world.graph, d.split.train, MakeInf2vecConfig(options));
    INF2VEC_CHECK(full.ok()) << full.status().ToString();

    ZooOptions local_options = options;
    local_options.alpha = 1.0;
    Result<Inf2vecModel> local = Inf2vecModel::Train(
        d.world.graph, d.split.train, MakeInf2vecConfig(local_options));
    INF2VEC_CHECK(local.ok()) << local.status().ToString();

    const EmbeddingPredictor full_pred = full.value().Predictor();
    const EmbeddingPredictor local_pred =
        local.value().Predictor("Inf2vec-L");

    {
      ResultTable table("Activation prediction on " + d.name);
      WallTimer timer;
      const RankingMetrics local_m =
          EvaluateActivation(local_pred, d.world.graph, d.split.test);
      const RankingMetrics full_m =
          EvaluateActivation(full_pred, d.world.graph, d.split.test);
      const double ms = timer.ElapsedSeconds() * 1000.0 / 2.0;
      table.AddRow("Inf2vec-L", local_m);
      table.AddRow("Inf2vec", full_m);
      table.Print();
      for (const auto& [variant, m] :
           {std::pair<const char*, const RankingMetrics&>{"Inf2vec-L",
                                                          local_m},
            {"Inf2vec", full_m}}) {
        obs::JsonValue& row = report.AddResult(
            d.name + "/activation/" + variant, ms);
        row.Set("auc", m.auc);
        row.Set("map", m.map);
      }
    }
    {
      DiffusionTaskOptions task;
      Rng rng(5);
      ResultTable table("Diffusion prediction on " + d.name);
      WallTimer timer;
      const RankingMetrics local_m =
          EvaluateDiffusion(local_pred, d.world.graph.num_users(),
                            d.split.test, task, rng);
      const RankingMetrics full_m =
          EvaluateDiffusion(full_pred, d.world.graph.num_users(),
                            d.split.test, task, rng);
      const double ms = timer.ElapsedSeconds() * 1000.0 / 2.0;
      table.AddRow("Inf2vec-L", local_m);
      table.AddRow("Inf2vec", full_m);
      table.Print();
      for (const auto& [variant, m] :
           {std::pair<const char*, const RankingMetrics&>{"Inf2vec-L",
                                                          local_m},
            {"Inf2vec", full_m}}) {
        obs::JsonValue& row =
            report.AddResult(d.name + "/diffusion/" + variant, ms);
        row.Set("auc", m.auc);
        row.Set("map", m.map);
      }
    }
    std::printf("\n");
  }
  report.Write();
  std::printf("shape check vs paper Table IV: Inf2vec-L < Inf2vec on every "
              "metric, both tasks.\n");
  return 0;
}
