// Hogwild scaling bench: end-to-end Inf2vec training (parallel corpus
// generation + lock-free SGD epochs) at 1/2/4/hw_concurrency threads on
// the default synthetic Digg-like world. Reports per-phase seconds,
// pairs/sec, speedup over the serial reference, and the final-epoch
// objective (which must stay within ~2% of serial — Hogwild's benign
// races and resharded RNG streams perturb the trajectory, not the
// optimum).
//
// Also emits BENCH_parallel_train.json (machine-readable) so later PRs
// can track the scaling trajectory.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace {

using namespace inf2vec;         // NOLINT
using namespace inf2vec::bench;  // NOLINT

struct RunResult {
  uint32_t threads = 1;
  double corpus_seconds = 0.0;
  double sgd_seconds = 0.0;
  double total_seconds = 0.0;
  double pairs_per_second = 0.0;
  double final_objective = 0.0;
  size_t corpus_pairs = 0;
};

RunResult RunAt(const Dataset& d, Inf2vecConfig config, uint32_t threads) {
  config.num_threads = threads;
  RunResult result;
  result.threads = threads;

  WallTimer corpus_timer;
  InfluenceCorpus corpus;
  if (threads <= 1) {
    corpus = BuildInfluenceCorpus(d.world.graph, d.split.train,
                                  config.context, d.world.graph.num_users(),
                                  CorpusBuildOptions{.seed = config.seed});
  } else {
    ThreadPool pool(threads);
    corpus = BuildInfluenceCorpus(
        d.world.graph, d.split.train, config.context,
        d.world.graph.num_users(),
        CorpusBuildOptions{.seed = config.seed, .pool = &pool});
  }
  result.corpus_seconds = corpus_timer.ElapsedSeconds();
  result.corpus_pairs = corpus.pairs.size();

  std::vector<double> objectives;
  WallTimer sgd_timer;
  Result<Inf2vecModel> model = Inf2vecModel::TrainFromCorpus(
      corpus, d.world.graph.num_users(), config, &objectives);
  INF2VEC_CHECK(model.ok()) << model.status().ToString();
  result.sgd_seconds = sgd_timer.ElapsedSeconds();

  result.total_seconds = result.corpus_seconds + result.sgd_seconds;
  result.pairs_per_second =
      static_cast<double>(corpus.pairs.size()) *
      static_cast<double>(config.epochs) / result.sgd_seconds;
  result.final_objective = objectives.back();
  return result;
}

void WriteBenchJson(const Dataset& d, const Inf2vecConfig& config,
                    const std::vector<RunResult>& results) {
  BenchReport report("parallel_train");
  report.SetConfig("world", d.name);
  report.SetConfig("users", d.world.graph.num_users());
  report.SetConfig("episodes",
                   static_cast<int64_t>(d.split.train.num_episodes()));
  report.SetConfig("epochs", config.epochs);
  report.SetConfig("dim", config.dim);
  report.SetConfig("hardware_concurrency",
                   ThreadPool::ResolveThreadCount(0));
  const RunResult& serial = results.front();
  for (const RunResult& r : results) {
    obs::JsonValue& row =
        report.AddResult("threads=" + std::to_string(r.threads),
                         r.total_seconds * 1000.0, r.pairs_per_second,
                         config.epochs);
    row.Set("threads", r.threads);
    row.Set("corpus_seconds", r.corpus_seconds);
    row.Set("sgd_seconds", r.sgd_seconds);
    row.Set("total_seconds", r.total_seconds);
    row.Set("speedup_total", serial.total_seconds / r.total_seconds);
    row.Set("final_objective", r.final_objective);
    row.Set("objective_rel_delta",
            std::fabs(r.final_objective - serial.final_objective) /
                std::fabs(serial.final_objective));
  }
  report.Write();
}

}  // namespace

int main() {
  const Dataset d = MakeDataset(DatasetKind::kDiggLike);
  PrintBanner("Hogwild scaling: end-to-end training vs thread count", d);

  ZooOptions zoo;
  Inf2vecConfig config = MakeInf2vecConfig(zoo);
  config.epochs = 8;  // Enough SGD work to expose scaling; bench stays fast.

  const uint32_t hw = ThreadPool::ResolveThreadCount(0);
  std::vector<uint32_t> sweep = {1, 2, 4, hw};
  std::sort(sweep.begin(), sweep.end());
  sweep.erase(std::unique(sweep.begin(), sweep.end()), sweep.end());

  std::printf("hardware threads: %u; epochs: %u; dim: %u\n\n", hw,
              config.epochs, config.dim);
  std::printf("%-8s %10s %9s %9s %12s %9s %11s %8s\n", "threads",
              "corpus(s)", "sgd(s)", "total(s)", "pairs/sec", "speedup",
              "objective", "d-obj%");

  std::vector<RunResult> results;
  for (uint32_t threads : sweep) {
    results.push_back(RunAt(d, config, threads));
    const RunResult& r = results.back();
    const RunResult& serial = results.front();
    std::printf("%-8u %10.3f %9.3f %9.3f %12.0f %8.2fx %11.5f %7.2f%%\n",
                r.threads, r.corpus_seconds, r.sgd_seconds,
                r.total_seconds, r.pairs_per_second,
                serial.total_seconds / r.total_seconds, r.final_objective,
                100.0 *
                    std::fabs(r.final_objective - serial.final_objective) /
                    std::fabs(serial.final_objective));
    std::fflush(stdout);
  }

  WriteBenchJson(d, config, results);

  std::printf(
      "\nshape check: pairs/sec should scale near-linearly with threads up"
      " to the physical core count (this host: %u), with the final epoch"
      " objective within ~2%% of the serial run — Hogwild's lock-free"
      " updates perturb the trajectory, not the converged objective."
      " threads=1 is the bit-exact serial reference path.\n",
      hw);
  return 0;
}
