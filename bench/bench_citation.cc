// Table VI + Section V-D reproduction: the citation-network case study.
//
// Embedding model (skip-gram over first-order author influence pairs)
// versus the conventional model (ST probabilities + Monte-Carlo), both
// predicting each test author's top-10 future followers. Paper reference:
// average precision 0.1863 (embedding) vs 0.0616 (conventional); the three
// most prolific authors get 4/10-7/10 vs 0/10-4/10 hits.

#include <cstdio>

#include "bench_common.h"
#include "citation/case_study.h"
#include "citation/citation_generator.h"
#include "util/logging.h"
#include "util/timer.h"

int main() {
  using namespace inf2vec;            // NOLINT
  using namespace inf2vec::bench;     // NOLINT
  using namespace inf2vec::citation;  // NOLINT

  std::printf("##### Table VI: citation case study #####\n\n");

  CitationProfile profile;
  profile.num_authors = 800;
  profile.num_papers = 1600;
  Rng rng(20180416);
  Result<CitationData> data = GenerateCitationNetwork(profile, rng);
  INF2VEC_CHECK(data.ok()) << data.status().ToString();
  std::printf("synthetic citation network: %u authors, %zu influence "
              "relationships (paper: 4,259 authors, 138,046 "
              "relationships)\n\n",
              data.value().num_authors,
              data.value().influence_pairs.size());

  CaseStudyOptions options;
  options.mc_simulations = 1000;
  WallTimer timer;
  Result<CaseStudyResult> result =
      RunCitationCaseStudy(data.value(), options, rng);
  INF2VEC_CHECK(result.ok()) << result.status().ToString();
  const CaseStudyResult& r = result.value();
  const double wall_ms = timer.ElapsedSeconds() * 1000.0;

  std::printf("%-28s %10s %14s\n", "", "Embedding", "Conventional");
  for (const auto& ex : r.examples) {
    std::printf("author %-20u  %6u/%u %12u/%u\n", ex.author,
                ex.embedding_hits, options.top_k, ex.conventional_hits,
                options.top_k);
  }
  std::printf("%-28s %10.4f %14.4f\n", "avg precision (all test authors)",
              r.embedding_avg_precision, r.conventional_avg_precision);
  std::printf("test authors: %zu\n", r.num_test_authors);

  BenchReport report("citation");
  report.SetConfig("authors", profile.num_authors);
  report.SetConfig("papers", profile.num_papers);
  report.SetConfig("mc_simulations", options.mc_simulations);
  obs::JsonValue& row = report.AddResult("case_study", wall_ms);
  row.Set("embedding_avg_precision", r.embedding_avg_precision);
  row.Set("conventional_avg_precision", r.conventional_avg_precision);
  row.Set("test_authors", static_cast<int64_t>(r.num_test_authors));
  report.Write();

  std::printf("\npaper reference: 0.1863 vs 0.0616 — the embedding model "
              "should clearly beat the conventional model.\n");
  return 0;
}
