// Figure 6 reproduction: t-SNE visualization of the learned
// representations on the digg-like dataset.
//
// The paper plots the nodes of the 10,000 most frequent influence pairs
// and highlights the top-5 pairs: under Inf2vec both endpoints of a
// frequent pair sit close together; under Emb-IC / MF / Node2vec they
// often do not. Without a screen we report the quantitative proxy: the
// mean distance between pair endpoints divided by the mean distance
// between all plotted points (lower = pairs more co-located), in both the
// original embedding space and the 2-D t-SNE space, plus the top-5 pair
// coordinates for external plotting.

#include <cstdio>
#include <unordered_map>
#include <unordered_set>

#include "bench_common.h"
#include "util/logging.h"
#include "util/timer.h"
#include "diffusion/influence_pairs.h"
#include "viz/tsne.h"

namespace {

using namespace inf2vec;         // NOLINT
using namespace inf2vec::bench;  // NOLINT

struct PlotData {
  std::vector<UserId> nodes;                       // Plotted users.
  std::unordered_map<UserId, size_t> index;        // User -> row.
  std::vector<std::pair<size_t, size_t>> top5;     // Highlighted pairs.
  std::vector<std::pair<size_t, size_t>> all_pairs;
};

PlotData CollectPlotNodes(const Dataset& d, size_t top_pairs) {
  const PairFrequencyTable table(d.world.graph, d.split.train);
  const auto pairs = table.TopPairs(top_pairs);
  PlotData plot;
  for (const auto& [pair, count] : pairs) {
    for (UserId u : {pair.source, pair.target}) {
      if (plot.index.emplace(u, plot.nodes.size()).second) {
        plot.nodes.push_back(u);
      }
    }
  }
  for (size_t i = 0; i < pairs.size(); ++i) {
    const auto& [pair, count] = pairs[i];
    const std::pair<size_t, size_t> idx = {plot.index[pair.source],
                                           plot.index[pair.target]};
    plot.all_pairs.push_back(idx);
    if (i < 5) plot.top5.push_back(idx);
  }
  return plot;
}

/// Builds the row-major [S_u ; T_u] matrix for the plotted nodes.
std::vector<double> ConcatMatrix(const EmbeddingStore& store,
                                 const std::vector<UserId>& nodes) {
  std::vector<double> data;
  data.reserve(nodes.size() * 2 * store.dim());
  for (UserId u : nodes) {
    const std::vector<double> row = store.ConcatenatedVector(u);
    data.insert(data.end(), row.begin(), row.end());
  }
  return data;
}

/// Directional influence-retrieval quality: for each highlighted pair
/// (u, v), the percentile rank of v among all plotted nodes when ranked by
/// the model's own influence similarity score(u, .). 0 = v is the model's
/// top pick, 0.5 = random. This is the quantitative reading of the paper's
/// Fig. 6 claim ("if pair (u -> v) is frequently observed, the
/// representation of u should be close to the representation of v").
template <typename ScoreFn>
double MeanRetrievalRank(const PlotData& plot,
                         const std::vector<std::pair<size_t, size_t>>& pairs,
                         ScoreFn score) {
  if (pairs.empty() || plot.nodes.size() < 3) return 0.5;
  double total = 0.0;
  for (const auto& [a, b] : pairs) {
    const UserId u = plot.nodes[a];
    const UserId v = plot.nodes[b];
    const double target = score(u, v);
    size_t better = 0;
    for (size_t j = 0; j < plot.nodes.size(); ++j) {
      if (j == a || j == b) continue;
      if (score(u, plot.nodes[j]) > target) ++better;
    }
    total += static_cast<double>(better) /
             static_cast<double>(plot.nodes.size() - 2);
  }
  return total / static_cast<double>(pairs.size());
}

template <typename ScoreFn>
void Report(const char* name, const EmbeddingStore& store,
            const PlotData& plot, ScoreFn score, BenchReport* bench) {
  const size_t n = plot.nodes.size();
  const size_t dim = 2 * store.dim();
  const std::vector<double> high = ConcatMatrix(store, plot.nodes);

  TsneOptions tsne;
  tsne.iterations = 250;
  tsne.perplexity = 20.0;
  WallTimer tsne_timer;
  Result<std::vector<double>> coords = RunTsne(high, n, dim, tsne);
  INF2VEC_CHECK(coords.ok()) << coords.status().ToString();
  const double tsne_ms = tsne_timer.ElapsedSeconds() * 1000.0;

  // Percentile rank of pair partners (0 = nearest neighbor, 0.5 = random
  // placement), in the original embedding space and the 2-D map.
  const double high_top5 = MeanPairNeighborRank(high, n, dim, plot.top5);
  const double high_all =
      MeanPairNeighborRank(high, n, dim, plot.all_pairs);
  const double low_top5 =
      MeanPairNeighborRank(coords.value(), n, 2, plot.top5);
  const double low_all =
      MeanPairNeighborRank(coords.value(), n, 2, plot.all_pairs);
  const double retrieval_top5 = MeanRetrievalRank(plot, plot.top5, score);
  const double retrieval_all =
      MeanRetrievalRank(plot, plot.all_pairs, score);
  std::printf("%-10s  influence-retrieval rank: top5 %.3f / all %.3f   "
              "tsne partner-rank: top5 %.3f / all %.3f   "
              "(embed-space partner-rank: top5 %.3f / all %.3f)\n",
              name, retrieval_top5, retrieval_all, low_top5, low_all,
              high_top5, high_all);
  std::printf("            top-5 pair coordinates (x1,y1)-(x2,y2): ");
  for (const auto& [a, b] : plot.top5) {
    std::printf("(%.1f,%.1f)-(%.1f,%.1f) ", coords.value()[a * 2],
                coords.value()[a * 2 + 1], coords.value()[b * 2],
                coords.value()[b * 2 + 1]);
  }
  std::printf("\n");
  std::fflush(stdout);

  obs::JsonValue& row = bench->AddResult(name, tsne_ms);
  row.Set("retrieval_rank_top5", retrieval_top5);
  row.Set("retrieval_rank_all", retrieval_all);
  row.Set("tsne_partner_rank_top5", low_top5);
  row.Set("tsne_partner_rank_all", low_all);
}

}  // namespace

int main() {
  const Dataset d = MakeDataset(DatasetKind::kDiggLike);
  PrintBanner("Figure 6: t-SNE of learned representations", d);

  PlotData plot = CollectPlotNodes(d, /*top_pairs=*/150);
  std::printf("plotting %zu nodes from the %zu most frequent influence "
              "pairs\n\n",
              plot.nodes.size(), plot.all_pairs.size());

  ZooOptions options;
  const ModelZoo zoo(d, options);

  BenchReport bench("visualization");
  bench.SetConfig("top_pairs", 150);
  bench.SetConfig("plotted_nodes", static_cast<int64_t>(plot.nodes.size()));

  // Each model is scored by its own influence-similarity notion: the
  // latent-factor models by their bilinear score, Emb-IC by its
  // distance-parameterized edge probability argument.
  const EmbeddingStore& emb_ic_store = zoo.emb_ic().embeddings();
  Report("Emb-IC", emb_ic_store, plot, [&](UserId u, UserId v) {
    const auto s = emb_ic_store.Source(u);
    const auto t = emb_ic_store.Target(v);
    double d2 = 0.0;
    for (size_t k = 0; k < s.size(); ++k) {
      const double diff = s[k] - t[k];
      d2 += diff * diff;
    }
    return emb_ic_store.target_bias(v) - d2;
  }, &bench);
  const EmbeddingStore& mf_store = zoo.mf().embeddings();
  Report("MF", mf_store, plot,
         [&](UserId u, UserId v) { return mf_store.Score(u, v); }, &bench);
  const EmbeddingStore& n2v_store = zoo.node2vec().embeddings();
  Report("Node2vec", n2v_store, plot,
         [&](UserId u, UserId v) { return n2v_store.Score(u, v); }, &bench);
  const EmbeddingStore& inf_store = zoo.inf2vec().embeddings();
  Report("Inf2vec", inf_store, plot,
         [&](UserId u, UserId v) { return inf_store.Score(u, v); }, &bench);
  bench.Write();

  std::printf("\nshape check vs paper Fig. 6: Inf2vec's influence-retrieval "
              "ranks are the smallest — given a frequent pair's source, its "
              "representation places the true target nearest (0.5 would be "
              "random placement).\n");
  return 0;
}
