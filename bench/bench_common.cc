#include "bench_common.h"

#include <cstdio>

#include "util/logging.h"

namespace inf2vec {
namespace bench {
namespace {

constexpr uint64_t kWorldSeed = 20180416;  // ICDE 2018 opening day.
constexpr uint64_t kSplitSeed = 7;

}  // namespace

Dataset MakeDataset(DatasetKind kind, double scale) {
  synth::WorldProfile profile = kind == DatasetKind::kDiggLike
                                    ? synth::WorldProfile::DiggLike()
                                    : synth::WorldProfile::FlickrLike();
  profile.num_users =
      static_cast<uint32_t>(profile.num_users * scale);
  profile.num_items =
      static_cast<uint32_t>(profile.num_items * scale);
  Rng rng(kWorldSeed);
  Result<synth::World> world = synth::GenerateWorld(profile, rng);
  INF2VEC_CHECK(world.ok()) << world.status().ToString();

  Dataset dataset;
  dataset.name = profile.name;
  dataset.world = std::move(world).value();
  Rng split_rng(kSplitSeed);
  dataset.split = SplitLog(dataset.world.log, 0.8, 0.1, split_rng);
  return dataset;
}

Inf2vecConfig MakeInf2vecConfig(const ZooOptions& options) {
  Inf2vecConfig config;
  config.dim = options.dim;
  config.context.length = options.context_length;
  config.context.alpha = options.alpha;
  config.epochs = options.inf2vec_epochs;
  config.sgd.num_negatives = options.num_negatives;
  config.seed = options.seed;
  return config;
}

ModelZoo::ModelZoo(const Dataset& dataset, const ZooOptions& options) {
  const SocialGraph& graph = dataset.world.graph;
  const ActionLog& train = dataset.split.train;

  de_ = std::make_unique<IcBaselineModel>(
      CreateDegreeModel(graph, options.mc_simulations));
  st_ = std::make_unique<IcBaselineModel>(
      CreateStaticModel(graph, train, options.mc_simulations));

  EmOptions em_options;
  em_options.iterations = options.em_iterations;
  em_options.mc_simulations = options.mc_simulations;
  em_ = std::make_unique<IcBaselineModel>(
      CreateEmModel(graph, train, em_options));

  EmbIcOptions emb_options;
  emb_options.dim = options.dim;
  emb_options.em_iterations = options.emb_ic_iterations;
  emb_options.mc_simulations = options.mc_simulations;
  emb_options.seed = options.seed + 1;
  Result<EmbIcModel> emb = EmbIcModel::Train(graph, train, emb_options);
  INF2VEC_CHECK(emb.ok()) << emb.status().ToString();
  emb_ic_ = std::make_unique<EmbIcModel>(std::move(emb).value());

  MfOptions mf_options;
  mf_options.dim = options.dim;
  mf_options.seed = options.seed + 2;
  Result<MfBprModel> mf = MfBprModel::Train(graph.num_users(), train,
                                            mf_options);
  INF2VEC_CHECK(mf.ok()) << mf.status().ToString();
  mf_ = std::make_unique<MfBprModel>(std::move(mf).value());
  mf_pred_ = std::make_unique<EmbeddingPredictor>(mf_->Predictor());

  Node2vecOptions n2v_options;
  n2v_options.dim = options.dim;
  n2v_options.seed = options.seed + 3;
  Result<Node2vecModel> n2v = Node2vecModel::Train(graph, n2v_options);
  INF2VEC_CHECK(n2v.ok()) << n2v.status().ToString();
  node2vec_ = std::make_unique<Node2vecModel>(std::move(n2v).value());
  node2vec_pred_ = std::make_unique<EmbeddingPredictor>(
      node2vec_->Predictor());

  Result<Inf2vecModel> inf =
      Inf2vecModel::Train(graph, train, MakeInf2vecConfig(options));
  INF2VEC_CHECK(inf.ok()) << inf.status().ToString();
  inf2vec_ = std::make_unique<Inf2vecModel>(std::move(inf).value());
  inf2vec_pred_ = std::make_unique<EmbeddingPredictor>(
      inf2vec_->Predictor());
}

std::vector<std::pair<std::string, const InfluenceModel*>> ModelZoo::All()
    const {
  return {
      {"DE", de_.get()},           {"ST", st_.get()},
      {"EM", em_.get()},           {"Emb-IC", emb_ic_.get()},
      {"MF", mf_pred_.get()},      {"Node2vec", node2vec_pred_.get()},
      {"Inf2vec", inf2vec_pred_.get()},
  };
}

BenchReport::BenchReport(std::string name) : name_(std::move(name)) {}

void BenchReport::SetConfig(const std::string& key, obs::JsonValue value) {
  config_.Set(key, std::move(value));
}

void BenchReport::SetSummary(const std::string& key, obs::JsonValue value) {
  summary_.Set(key, std::move(value));
}

obs::JsonValue& BenchReport::AddResult(const std::string& row_name,
                                       double wall_ms, double throughput,
                                       uint64_t repetitions) {
  obs::JsonValue row = obs::JsonValue::Object();
  row.Set("name", obs::JsonValue(row_name));
  row.Set("wall_ms", obs::JsonValue(wall_ms));
  if (throughput > 0.0) row.Set("throughput", obs::JsonValue(throughput));
  row.Set("repetitions",
          obs::JsonValue(static_cast<int64_t>(repetitions)));
  results_.push_back(std::move(row));
  return results_.back();
}

obs::JsonValue BenchReport::ToJson() const {
  obs::JsonValue doc = obs::JsonValue::Object();
  doc.Set("schema_version", obs::JsonValue(static_cast<int64_t>(1)));
  doc.Set("bench", obs::JsonValue(name_));
  doc.Set("config", config_);
  if (!summary_.members().empty()) doc.Set("summary", summary_);
  obs::JsonValue rows = obs::JsonValue::Array();
  for (const obs::JsonValue& row : results_) rows.Append(row);
  doc.Set("results", std::move(rows));
  return doc;
}

void BenchReport::Write() const {
  const std::string path = "BENCH_" + name_ + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "failed to open %s for writing\n", path.c_str());
    return;
  }
  const std::string text = ToJson().Dump(2) + "\n";
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  std::fflush(stdout);
}

void PrintBanner(const std::string& title, const Dataset& dataset) {
  std::printf("##### %s #####\n", title.c_str());
  std::printf(
      "dataset %s: %u users, %llu edges, %zu episodes "
      "(%zu train / %zu tune / %zu test), %llu actions\n\n",
      dataset.name.c_str(), dataset.world.graph.num_users(),
      static_cast<unsigned long long>(dataset.world.graph.num_edges()),
      dataset.world.log.num_episodes(), dataset.split.train.num_episodes(),
      dataset.split.tune.num_episodes(), dataset.split.test.num_episodes(),
      static_cast<unsigned long long>(dataset.world.log.num_actions()));
  std::fflush(stdout);
}

}  // namespace bench
}  // namespace inf2vec
