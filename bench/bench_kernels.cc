// Microbench for the runtime-dispatched kernel layer: scalar vs AVX2/FMA
// for the four hot serving/training primitives, at the paper's dim 50
// (deliberately not a multiple of the 4-lane AVX2 width, so every arm
// pays the remainder-lane cost the production shapes pay).
//
// Arms (one row per backend each):
//   dot        fp64 dot product, the EmbeddingStore::Score inner loop
//   seed_scan  blocked score scan over a padded table (TopK inner loop)
//   grad_step  fused SGD gradient accumulate + target row update
//   dot_i8     int8 quantized dot (the `serve --quantize int8` scan)
//
// Reports per-backend throughput (ops/sec) plus headline speedup
// summaries through BENCH_kernels.json. Gate: tools/bench_gate.sh.

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "kernels/aligned.h"
#include "kernels/kernels.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

using namespace inf2vec;         // NOLINT
using namespace inf2vec::bench;  // NOLINT

constexpr uint32_t kDim = 50;
constexpr uint32_t kRows = 4096;
constexpr uint32_t kSeedsPerScan = 8;
constexpr uint32_t kDotReps = 40;        // x kRows dots per backend
constexpr uint32_t kScanReps = 60;       // x kRows scored targets
constexpr uint32_t kGradReps = 40;       // x kRows grad steps
constexpr uint32_t kDotI8Reps = 80;      // x kRows int8 dots

struct Table {
  kernels::AlignedVector<double> rows;     // kRows x stride fp64
  kernels::AlignedVector<int8_t> q_rows;   // kRows x q_stride int8
  size_t stride = 0;    // doubles
  size_t q_stride = 0;  // bytes
};

Table MakeTable(Rng& rng) {
  Table t;
  t.stride = kernels::PaddedStride(kDim, sizeof(double));
  t.q_stride = kernels::PaddedStride(kDim, sizeof(int8_t));
  t.rows.assign(static_cast<size_t>(kRows) * t.stride, 0.0);
  t.q_rows.assign(static_cast<size_t>(kRows) * t.q_stride, 0);
  for (uint32_t r = 0; r < kRows; ++r) {
    for (uint32_t k = 0; k < kDim; ++k) {
      t.rows[r * t.stride + k] = rng.UniformDouble(-0.5, 0.5);
      t.q_rows[r * t.q_stride + k] =
          static_cast<int8_t>(rng.UniformInt(-127, 127));
    }
  }
  return t;
}

struct ArmResult {
  double wall_ms = 0.0;
  double ops_per_sec = 0.0;
  uint64_t reps = 0;
};

template <typename Fn>
ArmResult TimeArm(kernels::Isa isa, uint64_t total_ops, Fn&& fn) {
  INF2VEC_CHECK(kernels::SetActiveIsa(isa));
  const WallTimer wall;
  fn();
  ArmResult result;
  result.wall_ms = wall.ElapsedMillis();
  result.ops_per_sec =
      static_cast<double>(total_ops) / (result.wall_ms / 1000.0);
  result.reps = total_ops;
  kernels::ResetIsaForTest();
  return result;
}

}  // namespace

int main() {
  Rng rng(777);
  const Table table = MakeTable(rng);
  // Sinks defeat dead-code elimination; printed at the end.
  double fp64_sink = 0.0;
  int64_t i8_sink = 0;

  const bool have_avx2 = kernels::Avx2Compiled() && kernels::Avx2Supported();
  std::printf("kernel bench: dim %u, %u rows, best isa %s%s\n\n", kDim, kRows,
              kernels::IsaName(kernels::BestIsa()),
              have_avx2 ? "" : " (AVX2 arms skipped)");

  const auto run_dot = [&](kernels::Isa isa) {
    return TimeArm(isa, static_cast<uint64_t>(kDotReps) * kRows, [&] {
      for (uint32_t rep = 0; rep < kDotReps; ++rep) {
        for (uint32_t r = 0; r < kRows; ++r) {
          const double* a = table.rows.data() + r * table.stride;
          const double* b =
              table.rows.data() + ((r * 17 + 5) % kRows) * table.stride;
          fp64_sink += kernels::Dot(a, b, kDim);
        }
      }
    });
  };

  std::vector<double> scan_out(kRows);
  const auto run_scan = [&](kernels::Isa isa) {
    return TimeArm(isa, static_cast<uint64_t>(kScanReps) * kRows, [&] {
      for (uint32_t rep = 0; rep < kScanReps; ++rep) {
        // One SeedScan per target, kSeedsPerScan seeds each: the exact
        // shape InfluenceService::TopK drives per candidate.
        for (uint32_t r = 0; r < kRows; ++r) {
          kernels::SeedScan(table.rows.data(), kSeedsPerScan, table.stride,
                            table.rows.data() + r * table.stride, kDim,
                            scan_out.data());
          fp64_sink += scan_out[0];
        }
      }
    });
  };

  kernels::AlignedVector<double> grad(table.stride, 0.0);
  kernels::AlignedVector<double> target(table.rows.begin(),
                                        table.rows.begin() + table.stride);
  const auto run_grad = [&](kernels::Isa isa) {
    return TimeArm(isa, static_cast<uint64_t>(kGradReps) * kRows, [&] {
      for (uint32_t rep = 0; rep < kGradReps; ++rep) {
        for (uint32_t r = 0; r < kRows; ++r) {
          kernels::GradStep(0.5, 1e-9, table.rows.data() + r * table.stride,
                            target.data(), grad.data(), kDim);
        }
      }
      fp64_sink += grad[0] + target[0];
    });
  };

  const auto run_dot_i8 = [&](kernels::Isa isa) {
    return TimeArm(isa, static_cast<uint64_t>(kDotI8Reps) * kRows, [&] {
      for (uint32_t rep = 0; rep < kDotI8Reps; ++rep) {
        for (uint32_t r = 0; r < kRows; ++r) {
          const int8_t* a = table.q_rows.data() + r * table.q_stride;
          const int8_t* b =
              table.q_rows.data() + ((r * 17 + 5) % kRows) * table.q_stride;
          i8_sink += kernels::DotI8(a, b, kDim);
        }
      }
    });
  };

  struct Arm {
    const char* name;
    ArmResult scalar;
    ArmResult avx2;
  };
  std::vector<Arm> arms;
  arms.push_back({"dot", run_dot(kernels::Isa::kScalar), {}});
  arms.push_back({"seed_scan", run_scan(kernels::Isa::kScalar), {}});
  arms.push_back({"grad_step", run_grad(kernels::Isa::kScalar), {}});
  arms.push_back({"dot_i8", run_dot_i8(kernels::Isa::kScalar), {}});
  if (have_avx2) {
    arms[0].avx2 = run_dot(kernels::Isa::kAvx2);
    arms[1].avx2 = run_scan(kernels::Isa::kAvx2);
    arms[2].avx2 = run_grad(kernels::Isa::kAvx2);
    arms[3].avx2 = run_dot_i8(kernels::Isa::kAvx2);
  }

  std::printf("%-12s %14s %14s %10s\n", "arm", "scalar ops/s", "avx2 ops/s",
              "speedup");
  BenchReport report("kernels");
  report.SetConfig("dim", static_cast<int64_t>(kDim));
  report.SetConfig("rows", static_cast<int64_t>(kRows));
  report.SetConfig("seeds_per_scan", static_cast<int64_t>(kSeedsPerScan));
  report.SetConfig("avx2", have_avx2);
  for (const Arm& arm : arms) {
    const double speedup =
        have_avx2 ? arm.avx2.ops_per_sec / arm.scalar.ops_per_sec : 1.0;
    std::printf("%-12s %14.0f %14.0f %9.2fx\n", arm.name,
                arm.scalar.ops_per_sec,
                have_avx2 ? arm.avx2.ops_per_sec : 0.0, speedup);
    report.AddResult(std::string(arm.name) + "_scalar", arm.scalar.wall_ms,
                     arm.scalar.ops_per_sec, arm.scalar.reps);
    if (have_avx2) {
      report.AddResult(std::string(arm.name) + "_avx2", arm.avx2.wall_ms,
                       arm.avx2.ops_per_sec, arm.avx2.reps);
      report.SetSummary(std::string(arm.name) + "_avx2_speedup", speedup);
    }
  }
  report.Write();

  std::printf("\n(sinks: %f %" PRId64 ")\n", fp64_sink, i8_sink);
  return 0;
}
