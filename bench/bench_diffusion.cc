// Table III reproduction: diffusion prediction on both datasets.
//
// Seeds = first 5% of each test episode; IC-based methods are scored by
// Monte-Carlo simulation (the paper uses 5,000 runs; the count used here
// is printed), representation methods by direct Eq. 7 aggregation.
// Expected shape: Inf2vec best; MF strong on AUC (global similarity helps
// this task); DE and Node2vec weak. Also reproduces the paper's runtime
// remark: representation scoring is orders of magnitude faster than
// Monte-Carlo.

#include <cstdio>

#include "bench_common.h"
#include "eval/diffusion_task.h"
#include "eval/harness.h"
#include "util/timer.h"

int main() {
  using namespace inf2vec;         // NOLINT
  using namespace inf2vec::bench;  // NOLINT

  BenchReport report("diffusion");
  for (DatasetKind kind :
       {DatasetKind::kDiggLike, DatasetKind::kFlickrLike}) {
    const Dataset d = MakeDataset(kind);
    PrintBanner("Table III: diffusion prediction", d);

    ZooOptions options;
    const ModelZoo zoo(d, options);
    report.SetConfig("mc_simulations", options.mc_simulations);
    std::printf("Monte-Carlo simulations per IC-model query: %u\n\n",
                options.mc_simulations);

    DiffusionTaskOptions task;
    ResultTable table("Diffusion prediction on " + d.name);
    double ic_seconds = 0.0;
    double rep_seconds = 0.0;
    for (const auto& [name, model] : zoo.All()) {
      Rng rng(99);
      WallTimer timer;
      const RankingMetrics metrics = EvaluateDiffusion(
          *model, d.world.graph.num_users(), d.split.test, task, rng);
      const double elapsed = timer.ElapsedSeconds();
      const bool is_ic = name == "DE" || name == "ST" || name == "EM" ||
                         name == "Emb-IC";
      (is_ic ? ic_seconds : rep_seconds) += elapsed;
      table.AddRow(name, metrics);
      obs::JsonValue& row =
          report.AddResult(d.name + "/" + name, elapsed * 1000.0);
      row.Set("auc", metrics.auc);
      row.Set("map", metrics.map);
      row.Set("monte_carlo", is_ic);
    }
    table.Print();
    std::printf(
        "\nprediction wall time: IC-based (Monte-Carlo) %.1fs vs "
        "representation models %.2fs — the paper's 9,246s-vs-41s gap in "
        "miniature.\n\n",
        ic_seconds, rep_seconds);
  }
  report.Write();
  return 0;
}
