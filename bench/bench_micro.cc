// Microbenchmarks (google-benchmark) for the hot paths: SGD pair update,
// negative sampling, random walk with restart, influence-context
// generation, cascade simulation, and embedding scoring. These are the
// constants behind Fig. 9's slopes.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "diffusion/context_generator.h"
#include "diffusion/ic_model.h"
#include "diffusion/propagation_network.h"
#include "embedding/sgd_trainer.h"
#include "util/alias_sampler.h"
#include "util/logging.h"

namespace {

using namespace inf2vec;         // NOLINT
using namespace inf2vec::bench;  // NOLINT

const Dataset& SharedDataset() {
  static const Dataset& dataset =
      *new Dataset(MakeDataset(DatasetKind::kDiggLike, /*scale=*/0.5));
  return dataset;
}

void BM_SgdTrainPair(benchmark::State& state) {
  const uint32_t dim = static_cast<uint32_t>(state.range(0));
  EmbeddingStore store(2000, dim);
  Rng rng(1);
  store.InitPaperDefault(rng);
  const NegativeSampler sampler = NegativeSampler::CreateUniform(2000);
  SgdOptions options;
  SgdTrainer trainer(&store, &sampler, options);
  UserId u = 0;
  for (auto _ : state) {
    trainer.TrainPair(u, (u + 7) % 2000, rng);
    u = (u + 13) % 2000;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SgdTrainPair)->Arg(10)->Arg(50)->Arg(100);

void BM_EmbeddingScore(benchmark::State& state) {
  const uint32_t dim = static_cast<uint32_t>(state.range(0));
  EmbeddingStore store(1000, dim);
  Rng rng(2);
  store.InitPaperDefault(rng);
  UserId u = 0;
  double sink = 0.0;
  for (auto _ : state) {
    sink += store.Score(u, (u + 31) % 1000);
    u = (u + 17) % 1000;
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EmbeddingScore)->Arg(10)->Arg(50)->Arg(100);

void BM_AliasSample(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<double> weights(n);
  Rng rng(3);
  for (double& w : weights) w = rng.UniformDouble(0.1, 10.0);
  AliasSampler sampler;
  INF2VEC_CHECK_OK(sampler.Build(weights));
  uint64_t sink = 0;
  for (auto _ : state) sink += sampler.Sample(rng);
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AliasSample)->Arg(1000)->Arg(100000);

void BM_RandomWalkContext(benchmark::State& state) {
  const Dataset& d = SharedDataset();
  const DiffusionEpisode& episode = d.split.train.episodes()[0];
  const PropagationNetwork network(d.world.graph, episode);
  Rng rng(4);
  ContextOptions options;
  options.length = static_cast<uint32_t>(state.range(0));
  size_t cursor = 0;
  for (auto _ : state) {
    const UserId u = network.users()[cursor % network.num_users()];
    ++cursor;
    benchmark::DoNotOptimize(
        GenerateInfluenceContext(network, u, options, rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RandomWalkContext)->Arg(10)->Arg(50)->Arg(100);

void BM_PropagationNetworkBuild(benchmark::State& state) {
  const Dataset& d = SharedDataset();
  size_t cursor = 0;
  for (auto _ : state) {
    const DiffusionEpisode& episode =
        d.split.train.episodes()[cursor % d.split.train.num_episodes()];
    ++cursor;
    benchmark::DoNotOptimize(PropagationNetwork(d.world.graph, episode));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PropagationNetworkBuild);

void BM_CascadeSimulation(benchmark::State& state) {
  const Dataset& d = SharedDataset();
  Rng rng(5);
  const std::vector<UserId> seeds = {0, 1, 2};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SimulateCascade(d.world.graph, d.world.true_probs, seeds, rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CascadeSimulation);

}  // namespace
