// Ablations for the paper's two future-work directions, implemented in
// this library:
//  1. topic-aware influence (TopicInf2vecModel: audience-clustered topic
//     models interpolated with the global model);
//  2. alternative local-context generation (forward-BFS influence cone vs
//     the random walk with restart of Algorithm 1).
// Both are compared against plain Inf2vec on the activation task.

#include <cstdio>

#include "bench_common.h"
#include "core/topic_inf2vec.h"
#include "eval/activation_task.h"
#include "eval/harness.h"
#include "eval/topic_eval.h"
#include "util/logging.h"
#include "util/timer.h"

namespace {

void AddExtensionRow(inf2vec::bench::BenchReport& report,
                     const std::string& name, double wall_ms,
                     const inf2vec::RankingMetrics& m) {
  inf2vec::obs::JsonValue& row = report.AddResult(name, wall_ms);
  row.Set("auc", m.auc);
  row.Set("map", m.map);
}

}  // namespace

int main() {
  using namespace inf2vec;         // NOLINT
  using namespace inf2vec::bench;  // NOLINT

  BenchReport report("extensions");
  for (DatasetKind kind :
       {DatasetKind::kDiggLike, DatasetKind::kFlickrLike}) {
    const Dataset d = MakeDataset(kind);
    PrintBanner("Extensions: topic-aware + BFS context", d);

    ZooOptions options;
    ResultTable table("Extension ablation on " + d.name);

    // Plain Inf2vec (Algorithm 1 / random walk).
    WallTimer base_timer;
    Result<Inf2vecModel> base = Inf2vecModel::Train(
        d.world.graph, d.split.train, MakeInf2vecConfig(options));
    INF2VEC_CHECK(base.ok()) << base.status().ToString();
    const RankingMetrics base_m = EvaluateActivation(
        base.value().Predictor(), d.world.graph, d.split.test);
    table.AddRow("Inf2vec", base_m);
    AddExtensionRow(report, d.name + "/Inf2vec",
                    base_timer.ElapsedSeconds() * 1000.0, base_m);

    // Forward-BFS local context.
    Inf2vecConfig bfs_config = MakeInf2vecConfig(options);
    bfs_config.context.strategy = LocalContextStrategy::kForwardBfs;
    WallTimer bfs_timer;
    Result<Inf2vecModel> bfs =
        Inf2vecModel::Train(d.world.graph, d.split.train, bfs_config);
    INF2VEC_CHECK(bfs.ok()) << bfs.status().ToString();
    const RankingMetrics bfs_m = EvaluateActivation(
        bfs.value().Predictor(), d.world.graph, d.split.test);
    table.AddRow("Inf2vec-BFS", bfs_m);
    AddExtensionRow(report, d.name + "/Inf2vec-BFS",
                    bfs_timer.ElapsedSeconds() * 1000.0, bfs_m);

    // Topic-aware interpolation.
    TopicInf2vecConfig topic_config;
    topic_config.base = MakeInf2vecConfig(options);
    topic_config.clustering.num_clusters = 8;
    topic_config.topic_weight = 0.4;
    WallTimer topic_timer;
    Result<TopicInf2vecModel> topic =
        TopicInf2vecModel::Train(d.world.graph, d.split.train, topic_config);
    INF2VEC_CHECK(topic.ok()) << topic.status().ToString();
    const RankingMetrics topic_m = EvaluateActivationTopicAware(
        topic.value(), d.world.graph, d.split.test);
    table.AddRow("Topic-Inf2vec", topic_m);
    AddExtensionRow(report, d.name + "/Topic-Inf2vec",
                    topic_timer.ElapsedSeconds() * 1000.0, topic_m);

    table.Print();
    int trained_topics = 0;
    for (uint32_t c = 0; c < topic.value().num_topics(); ++c) {
      trained_topics += topic.value().topic_model(c) != nullptr ? 1 : 0;
    }
    std::printf("topic models trained: %d of %u clusters\n\n",
                trained_topics, topic.value().num_topics());
  }
  report.Write();
  std::printf(
      "reading: the extensions are exploratory (the paper only sketches "
      "them); parity with plain Inf2vec already validates the plumbing, "
      "gains depend on how topical the dataset is.\n");
  return 0;
}
