// Table I reproduction: statistics of the two (synthetic) datasets.
//
// Paper (full scale):        this repo (laptop scale):
//   Digg   68,634 users / 823,656 edges / 3,553 items / 2.5M actions
//   Flickr 162,663 users / 10.2M edges / 14,002 items / 2.4M actions
// The absolute counts are scaled down ~30x; the relationships the paper
// highlights (Flickr denser than Digg, action data extremely sparse
// relative to the user-item grid) must hold.

#include <cstdio>

#include "bench_common.h"
#include "diffusion/influence_pairs.h"
#include "util/timer.h"

int main() {
  using namespace inf2vec;         // NOLINT
  using namespace inf2vec::bench;  // NOLINT

  std::printf("##### Table I: dataset statistics #####\n\n");
  std::printf("%-12s %8s %10s %7s %9s %12s %14s\n", "Dataset", "#User",
              "#Edge", "#Item", "#Action", "#InflPairs",
              "density(e/u)");
  BenchReport report("datasets");
  for (DatasetKind kind :
       {DatasetKind::kDiggLike, DatasetKind::kFlickrLike}) {
    WallTimer timer;
    const Dataset d = MakeDataset(kind);
    const PairFrequencyTable pairs(d.world.graph, d.world.log);
    std::printf("%-12s %8u %10llu %7zu %9llu %12llu %14.1f\n",
                d.name.c_str(), d.world.graph.num_users(),
                static_cast<unsigned long long>(d.world.graph.num_edges()),
                d.world.log.num_episodes(),
                static_cast<unsigned long long>(d.world.log.num_actions()),
                static_cast<unsigned long long>(pairs.total_pairs()),
                static_cast<double>(d.world.graph.num_edges()) /
                    d.world.graph.num_users());
    obs::JsonValue& row =
        report.AddResult(d.name, timer.ElapsedSeconds() * 1000.0);
    row.Set("users", d.world.graph.num_users());
    row.Set("edges", d.world.graph.num_edges());
    row.Set("items", static_cast<int64_t>(d.world.log.num_episodes()));
    row.Set("actions", d.world.log.num_actions());
    row.Set("influence_pairs", pairs.total_pairs());
    row.Set("density", static_cast<double>(d.world.graph.num_edges()) /
                           d.world.graph.num_users());
  }
  report.Write();
  std::printf(
      "\npaper reference: Digg 7.9M influence pairs, Flickr 5.3M; shape to "
      "check: flickr-like graph is denser per user, digg-like log yields "
      "more influence pairs per action.\n");
  return 0;
}
