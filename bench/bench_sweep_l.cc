// Figure 8 reproduction: MAP (activation task) as a function of the
// context length threshold L, on both datasets. Expected shape: MAP grows
// with L (more training instances) and saturates; the paper sees a slight
// dip at L = 100 on Flickr.

#include <cstdio>

#include "bench_common.h"
#include "util/logging.h"
#include "util/timer.h"
#include "eval/activation_task.h"

int main() {
  using namespace inf2vec;         // NOLINT
  using namespace inf2vec::bench;  // NOLINT

  const uint32_t kLengths[] = {5, 10, 25, 50, 75, 100};
  constexpr int kRuns = 2;  // Seeds averaged to de-noise the curve.

  BenchReport report("sweep_l");
  report.SetConfig("runs_per_point", kRuns);
  report.SetConfig("dataset_scale", 0.7);
  for (DatasetKind kind :
       {DatasetKind::kDiggLike, DatasetKind::kFlickrLike}) {
    const Dataset d = MakeDataset(kind, /*scale=*/0.7);
    PrintBanner("Figure 8: MAP vs context length L", d);
    std::printf("%-8s %-8s %-8s\n", "L", "MAP", "AUC");
    for (uint32_t length : kLengths) {
      std::vector<RankingMetrics> runs;
      WallTimer timer;
      for (int run = 0; run < kRuns; ++run) {
        ZooOptions options;
        options.context_length = length;
        options.seed = 100 + run;
        Result<Inf2vecModel> model = Inf2vecModel::Train(
            d.world.graph, d.split.train, MakeInf2vecConfig(options));
        INF2VEC_CHECK(model.ok()) << model.status().ToString();
        const EmbeddingPredictor pred = model.value().Predictor();
        runs.push_back(
            EvaluateActivation(pred, d.world.graph, d.split.test));
      }
      const MetricsSummary s = SummarizeRuns(runs);
      std::printf("%-8u %-8.4f %-8.4f\n", length, s.mean.map, s.mean.auc);
      std::fflush(stdout);
      obs::JsonValue& row =
          report.AddResult(d.name + "/L=" + std::to_string(length),
                           timer.ElapsedSeconds() * 1000.0,
                           /*throughput=*/0.0, kRuns);
      row.Set("map", s.mean.map);
      row.Set("auc", s.mean.auc);
    }
    std::printf("\n");
  }
  report.Write();
  std::printf("shape check vs paper Fig. 8: MAP grows with L and "
              "saturates; larger L costs proportionally more time.\n");
  return 0;
}
