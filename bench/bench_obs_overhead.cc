// Observability overhead bench: the acceptance gate for the metrics layer
// is that fully-enabled recording (metrics + thread-pool observer) adds
// < 2% to an SGD training epoch. Hot-path sites are all written as
// `if (obs::MetricsEnabled()) ...` with pair counting at epoch
// granularity, so the expected overhead is a handful of striped atomic
// adds per epoch plus one relaxed load per negative-sampling batch.
//
// Measures median epoch time over repeated TrainFromCorpus runs with
// metrics disabled vs enabled and emits BENCH_obs_overhead.json with the
// relative overhead for the driver to check.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "obs/metrics.h"
#include "util/logging.h"
#include "util/timer.h"

namespace {

using namespace inf2vec;         // NOLINT
using namespace inf2vec::bench;  // NOLINT

/// Seconds per SGD run (config.epochs epochs) on the pre-built corpus.
/// Median over `repeats` runs to shed scheduler noise on small machines.
double MedianTrainSeconds(const InfluenceCorpus& corpus, uint32_t num_users,
                          const Inf2vecConfig& config, int repeats) {
  std::vector<double> seconds;
  seconds.reserve(static_cast<size_t>(repeats));
  for (int r = 0; r < repeats; ++r) {
    WallTimer timer;
    Result<Inf2vecModel> model =
        Inf2vecModel::TrainFromCorpus(corpus, num_users, config, nullptr);
    INF2VEC_CHECK(model.ok()) << model.status().ToString();
    seconds.push_back(timer.ElapsedSeconds());
  }
  std::sort(seconds.begin(), seconds.end());
  return seconds[seconds.size() / 2];
}

}  // namespace

int main() {
  const Dataset d = MakeDataset(DatasetKind::kDiggLike);
  PrintBanner("Observability overhead: metrics on vs off", d);

  ZooOptions zoo;
  Inf2vecConfig config = MakeInf2vecConfig(zoo);
  config.epochs = 6;

  Rng rng(config.seed);
  const InfluenceCorpus corpus =
      BuildInfluenceCorpus(d.world.graph, d.split.train, config.context,
                           d.world.graph.num_users(), rng);
  INF2VEC_CHECK(!corpus.pairs.empty());
  std::printf("corpus: %zu pairs, %u epochs per run\n\n",
              corpus.pairs.size(), config.epochs);

  constexpr int kRepeats = 7;

  // Warm-up run (page in embeddings, sigmoid table, allocator arenas).
  obs::EnableMetrics(false);
  MedianTrainSeconds(corpus, d.world.graph.num_users(), config, 1);

  const double off_seconds = MedianTrainSeconds(
      corpus, d.world.graph.num_users(), config, kRepeats);

  obs::MetricsRegistry::Default().Reset();
  obs::EnableMetrics(true);
  obs::InstallThreadPoolMetrics();
  const double on_seconds = MedianTrainSeconds(
      corpus, d.world.graph.num_users(), config, kRepeats);
  obs::EnableMetrics(false);
  obs::UninstallThreadPoolMetrics();

  const double overhead = off_seconds > 0.0
                              ? (on_seconds - off_seconds) / off_seconds
                              : 0.0;
  const uint64_t pairs_counted =
      obs::MetricsRegistry::Default().GetCounter("sgd.pairs_trained")->Value();
  const uint64_t expected_pairs =
      static_cast<uint64_t>(corpus.pairs.size()) * config.epochs * kRepeats;
  INF2VEC_CHECK(pairs_counted == expected_pairs)
      << "metrics lost updates: counted " << pairs_counted << ", expected "
      << expected_pairs;

  std::printf("%-18s %12s %12s\n", "metrics", "median(s)", "pairs/sec");
  const double pairs_per_run = static_cast<double>(corpus.pairs.size()) *
                               static_cast<double>(config.epochs);
  std::printf("%-18s %12.4f %12.0f\n", "disabled", off_seconds,
              pairs_per_run / off_seconds);
  std::printf("%-18s %12.4f %12.0f\n", "enabled", on_seconds,
              pairs_per_run / on_seconds);
  std::printf("\noverhead: %+.2f%% (acceptance gate: < 2%%)\n",
              100.0 * overhead);

  const char* path = "BENCH_obs_overhead.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"obs_overhead\",\n");
  std::fprintf(f, "  \"world\": \"%s\",\n", d.name.c_str());
  std::fprintf(f, "  \"corpus_pairs\": %zu,\n", corpus.pairs.size());
  std::fprintf(f, "  \"epochs\": %u,\n", config.epochs);
  std::fprintf(f, "  \"repeats\": %d,\n", kRepeats);
  std::fprintf(f, "  \"disabled_seconds\": %.6f,\n", off_seconds);
  std::fprintf(f, "  \"enabled_seconds\": %.6f,\n", on_seconds);
  std::fprintf(f, "  \"relative_overhead\": %.6f,\n", overhead);
  std::fprintf(f, "  \"gate\": 0.02,\n");
  std::fprintf(f, "  \"pass\": %s\n", overhead < 0.02 ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
  return 0;
}
