// Observability overhead bench: the acceptance gate for the metrics layer
// is that fully-enabled recording (metrics + thread-pool observer) adds
// < 2% to an SGD training epoch. Hot-path sites are all written as
// `if (obs::MetricsEnabled()) ...` with pair counting at epoch
// granularity, so the expected overhead is a handful of striped atomic
// adds per epoch plus one relaxed load per negative-sampling batch.
//
// Resolving a 2% signal on a shared box needs a careful design — on this
// class of machine, back-to-back *identical* serial runs differ by 10-30%
// in CPU time (frequency scaling, hypervisor steal). So the bench
// interleaves the two arms at *epoch* granularity inside one training
// run: `EnableMetrics` is toggled between epochs through the epoch
// callback, adjacent epochs do bit-identical SGD work and share the
// machine's clock state, and the overhead estimate is the median of the
// per-adjacent-pair (enabled/disabled) CPU-time ratios. Emits
// BENCH_obs_overhead.json with the relative overhead for the driver to
// check.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "obs/metrics.h"
#include "util/logging.h"
#include "util/timer.h"

namespace {

using namespace inf2vec;         // NOLINT
using namespace inf2vec::bench;  // NOLINT

double Median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

}  // namespace

int main() {
  // Half-scale dataset: epochs short enough to afford ~40 measured pairs,
  // which is what the median needs to push its standard error below the
  // gate on a machine with ~10% per-epoch timing noise.
  const Dataset d = MakeDataset(DatasetKind::kDiggLike, 0.5);
  PrintBanner("Observability overhead: metrics on vs off", d);

  // Epochs 0..kWarmup-1 page in embeddings, allocator arenas, and the
  // first-touch cost of both arms; each following (even, odd) epoch pair
  // is one disabled/enabled measurement.
  constexpr uint32_t kWarmupEpochs = 2;
  constexpr int kMeasuredPairs = 40;

  ZooOptions zoo;
  Inf2vecConfig config = MakeInf2vecConfig(zoo);
  config.epochs = kWarmupEpochs + 2 * kMeasuredPairs;

  const InfluenceCorpus corpus =
      BuildInfluenceCorpus(d.world.graph, d.split.train, config.context,
                           d.world.graph.num_users(),
                           CorpusBuildOptions{.seed = config.seed});
  INF2VEC_CHECK(!corpus.pairs.empty());
  std::printf("corpus: %zu pairs, %u epochs (%d measured pairs)\n\n",
              corpus.pairs.size(), config.epochs, kMeasuredPairs);

  // Per-epoch CPU time, measured callback-to-callback on the training
  // thread. Odd epochs run with metrics enabled (epoch 0 starts disabled;
  // the callback flips the switch for the next epoch — counters for a
  // finished epoch are recorded before the callback fires, so the toggle
  // cleanly brackets whole epochs).
  std::vector<double> epoch_seconds;
  CpuTimer epoch_timer;
  config.epoch_callback = [&](const EpochStats& stats) {
    epoch_seconds.push_back(epoch_timer.ElapsedSeconds());
    obs::EnableMetrics((stats.epoch + 1) % 2 == 1);
    epoch_timer.Restart();
  };

  obs::MetricsRegistry::Default().Reset();
  obs::InstallThreadPoolMetrics();
  obs::EnableMetrics(false);
  epoch_timer.Restart();
  Result<Inf2vecModel> model = Inf2vecModel::TrainFromCorpus(
      corpus, d.world.graph.num_users(), config, nullptr);
  obs::EnableMetrics(false);
  obs::UninstallThreadPoolMetrics();
  INF2VEC_CHECK(model.ok()) << model.status().ToString();
  INF2VEC_CHECK(epoch_seconds.size() == config.epochs);

  std::vector<double> off_epochs, on_epochs, ratios;
  for (uint32_t k = kWarmupEpochs; k + 1 < config.epochs; k += 2) {
    const double off = epoch_seconds[k];      // Even epoch: disabled.
    const double on = epoch_seconds[k + 1];   // Odd epoch: enabled.
    off_epochs.push_back(off);
    on_epochs.push_back(on);
    ratios.push_back(off > 0.0 ? on / off : 1.0);
    std::printf("  pair %2u: off %.4fs  on %.4fs  ratio %.4f\n",
                (k - kWarmupEpochs) / 2, off, on, ratios.back());
  }
  const double overhead = Median(ratios) - 1.0;
  const double off_seconds = Median(off_epochs);
  const double on_seconds = Median(on_epochs);

  // Exactness cross-check: exactly the odd epochs were counted.
  const uint64_t enabled_epochs = config.epochs / 2;
  const uint64_t pairs_counted =
      obs::MetricsRegistry::Default().GetCounter("sgd.pairs_trained")->Value();
  const uint64_t expected_pairs =
      static_cast<uint64_t>(corpus.pairs.size()) * enabled_epochs;
  INF2VEC_CHECK(pairs_counted == expected_pairs)
      << "metrics lost updates: counted " << pairs_counted << ", expected "
      << expected_pairs;

  std::printf("\n%-18s %16s %12s\n", "metrics", "median cpu(s)/ep",
              "pairs/sec");
  const double pairs_per_epoch = static_cast<double>(corpus.pairs.size());
  std::printf("%-18s %16.4f %12.0f\n", "disabled", off_seconds,
              pairs_per_epoch / off_seconds);
  std::printf("%-18s %16.4f %12.0f\n", "enabled", on_seconds,
              pairs_per_epoch / on_seconds);
  std::printf("\noverhead: %+.2f%% (acceptance gate: < 2%%)\n",
              100.0 * overhead);

  BenchReport report("obs_overhead");
  report.SetConfig("world", d.name);
  report.SetConfig("corpus_pairs",
                   static_cast<int64_t>(corpus.pairs.size()));
  report.SetConfig("epochs", config.epochs);
  report.SetConfig("measured_pairs", kMeasuredPairs);
  report.SetSummary("disabled_seconds", off_seconds);
  report.SetSummary("enabled_seconds", on_seconds);
  report.SetSummary("relative_overhead", overhead);
  report.SetSummary("gate", 0.02);
  report.SetSummary("pass", overhead < 0.02);
  report
      .AddResult("metrics_disabled", off_seconds * 1000.0,
                 pairs_per_epoch / off_seconds, kMeasuredPairs)
      .Set("median_epoch_seconds", off_seconds);
  report
      .AddResult("metrics_enabled", on_seconds * 1000.0,
                 pairs_per_epoch / on_seconds, kMeasuredPairs)
      .Set("median_epoch_seconds", on_seconds);
  report.Write();
  return 0;
}
