// Table V reproduction: effect of the aggregation function F() in Eq. 7
// (Ave / Sum / Max / Latest) on the activation task, plus the DESIGN.md
// ablation of the negative-sampling distribution (unigram^0.75 vs
// uniform). Expected shape: Ave best overall, Sum clearly worst, Max and
// Latest close behind Ave.

#include <cstdio>

#include "bench_common.h"
#include "util/logging.h"
#include "util/timer.h"
#include "eval/activation_task.h"
#include "eval/harness.h"

int main() {
  using namespace inf2vec;         // NOLINT
  using namespace inf2vec::bench;  // NOLINT

  BenchReport report("aggregation");
  for (DatasetKind kind :
       {DatasetKind::kDiggLike, DatasetKind::kFlickrLike}) {
    const Dataset d = MakeDataset(kind);
    PrintBanner("Table V: aggregation functions", d);

    ZooOptions options;
    Result<Inf2vecModel> model = Inf2vecModel::Train(
        d.world.graph, d.split.train, MakeInf2vecConfig(options));
    INF2VEC_CHECK(model.ok()) << model.status().ToString();

    ResultTable table("Aggregation comparison on " + d.name);
    for (Aggregation kind_f : {Aggregation::kAve, Aggregation::kSum,
                               Aggregation::kMax, Aggregation::kLatest}) {
      EmbeddingPredictor pred = model.value().Predictor();
      pred.set_aggregation(kind_f);
      WallTimer timer;
      const RankingMetrics m =
          EvaluateActivation(pred, d.world.graph, d.split.test);
      table.AddRow(AggregationName(kind_f), m);
      obs::JsonValue& row =
          report.AddResult(d.name + "/" + AggregationName(kind_f),
                           timer.ElapsedSeconds() * 1000.0);
      row.Set("auc", m.auc);
      row.Set("map", m.map);
    }
    table.Print();
    std::printf("\n");
  }

  // Ablation: negative-sampling distribution (digg-like only).
  {
    const Dataset d = MakeDataset(DatasetKind::kDiggLike);
    ZooOptions options;
    ResultTable table("Negative-sampling ablation on " + d.name);
    for (NegativeSamplerKind neg : {NegativeSamplerKind::kUnigram075,
                                    NegativeSamplerKind::kUniform}) {
      Inf2vecConfig config = MakeInf2vecConfig(options);
      config.negative_kind = neg;
      WallTimer timer;
      Result<Inf2vecModel> model =
          Inf2vecModel::Train(d.world.graph, d.split.train, config);
      INF2VEC_CHECK(model.ok()) << model.status().ToString();
      const EmbeddingPredictor pred = model.value().Predictor();
      const RankingMetrics m =
          EvaluateActivation(pred, d.world.graph, d.split.test);
      const char* label = neg == NegativeSamplerKind::kUniform
                              ? "neg-uniform"
                              : "neg-unigram";
      table.AddRow(label, m);
      obs::JsonValue& row = report.AddResult(
          d.name + "/" + label, timer.ElapsedSeconds() * 1000.0);
      row.Set("auc", m.auc);
      row.Set("map", m.map);
    }
    table.Print();
  }
  report.Write();
  std::printf("\nshape check vs paper Table V: Ave best, Sum worst.\n");
  return 0;
}
