// Table V reproduction: effect of the aggregation function F() in Eq. 7
// (Ave / Sum / Max / Latest) on the activation task, plus the DESIGN.md
// ablation of the negative-sampling distribution (unigram^0.75 vs
// uniform). Expected shape: Ave best overall, Sum clearly worst, Max and
// Latest close behind Ave.

#include <cstdio>

#include "bench_common.h"
#include "util/logging.h"
#include "eval/activation_task.h"
#include "eval/harness.h"

int main() {
  using namespace inf2vec;         // NOLINT
  using namespace inf2vec::bench;  // NOLINT

  for (DatasetKind kind :
       {DatasetKind::kDiggLike, DatasetKind::kFlickrLike}) {
    const Dataset d = MakeDataset(kind);
    PrintBanner("Table V: aggregation functions", d);

    ZooOptions options;
    Result<Inf2vecModel> model = Inf2vecModel::Train(
        d.world.graph, d.split.train, MakeInf2vecConfig(options));
    INF2VEC_CHECK(model.ok()) << model.status().ToString();

    ResultTable table("Aggregation comparison on " + d.name);
    for (Aggregation kind_f : {Aggregation::kAve, Aggregation::kSum,
                               Aggregation::kMax, Aggregation::kLatest}) {
      EmbeddingPredictor pred = model.value().Predictor();
      pred.set_aggregation(kind_f);
      table.AddRow(AggregationName(kind_f),
                   EvaluateActivation(pred, d.world.graph, d.split.test));
    }
    table.Print();
    std::printf("\n");
  }

  // Ablation: negative-sampling distribution (digg-like only).
  {
    const Dataset d = MakeDataset(DatasetKind::kDiggLike);
    ZooOptions options;
    ResultTable table("Negative-sampling ablation on " + d.name);
    for (NegativeSamplerKind neg : {NegativeSamplerKind::kUnigram075,
                                    NegativeSamplerKind::kUniform}) {
      Inf2vecConfig config = MakeInf2vecConfig(options);
      config.negative_kind = neg;
      Result<Inf2vecModel> model =
          Inf2vecModel::Train(d.world.graph, d.split.train, config);
      INF2VEC_CHECK(model.ok()) << model.status().ToString();
      const EmbeddingPredictor pred = model.value().Predictor();
      table.AddRow(neg == NegativeSamplerKind::kUniform ? "neg-uniform"
                                                        : "neg-unigram",
                   EvaluateActivation(pred, d.world.graph, d.split.test));
    }
    table.Print();
  }
  std::printf("\nshape check vs paper Table V: Ave best, Sum worst.\n");
  return 0;
}
