// Closed-loop load bench for the online influence-query service. Drives
// InfluenceService directly (no HTTP, no socket noise) so the numbers
// isolate the serving kernel: seed gather + Eq. 7 scoring for single
// queries, the cache-blocked heap scan for top-k, and thread-pool
// sharding for batches. Each arm records per-request latency and reports
// p50/p99 plus sustained QPS through BENCH_serve.json.
//
// Four arms:
//   score_cold    rotating seed sets sized past the LRU, every gather a miss
//   score_cached  one hot seed set, every gather a hit
//   topk          k=10 full-table scan (throughput row: queries/sec)
//   topk_int8     same scan against the int8-quantized table
//   batch         1024-item ScoreBatch calls (throughput row: items/sec)
//
// plus four arms that go through the real epoll HTTP server (loopback
// sockets, the production serve_endpoints handlers, int8 table):
//   http_serial      connection-per-request GET /score, one at a time —
//                    the thread-per-request cost model the epoll core
//                    replaced
//   http_concurrent  8 keep-alive clients pipelining GET /score bursts,
//                    closed loop; the headline gate is this arm's QPS
//                    over http_serial at p99 < 10 ms
//                    (summary.http_speedup_pass). The full 10x target
//                    assumes the 8-core serving deployment shape (the
//                    speedup = syscall amortization x worker
//                    parallelism, and the parallelism term is capped by
//                    the machine); hosts with fewer cores gate on the
//                    proportional slice, like the mem-coverage gate only
//                    applies when /proc is readable.
//   http_open_loop   paced arrivals at a fixed rate; latency is measured
//                    from the scheduled arrival time, so queueing delay
//                    counts, and 429 sheds are tallied instead of fatal
//   topk_coalesce    8 clients hammer GET /topk with the SAME seed set;
//                    the single-flight batcher shares one scan per
//                    coalition, so aggregate QPS beats the serial
//                    topk_int8 rate without running more scans
//
// plus the request-observability overhead gate: the same topk workload
// run twice per iteration — bare, and wrapped in the full per-request
// RequestScope (rpcz + tracez + access log) the HTTP server installs —
// interleaved so both arms share the machine's clock state. The median
// per-pair ratio must stay under the 2% acceptance gate
// (summary.request_obs_pass in BENCH_serve.json).
//
// Metrics recording is enabled, matching the production `serve` command,
// so latencies include the striped-counter cost the real server pays.
// The memory plane is live too: byte accounting plus the sampling heap
// profiler run for the whole bench, and the report carries a coverage
// gate (summary.mem_coverage_pass) checking that the accounted gauges
// explain >= 80% of sampled RSS at peak table residency.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "embedding/model_io.h"
#include "obs/access_log.h"
#include "obs/heap_profiler.h"
#include "obs/http_client.h"
#include "obs/http_server.h"
#include "obs/memory.h"
#include "obs/metrics.h"
#include "obs/request_obs.h"
#include "serve/influence_service.h"
#include "serve/serve_endpoints.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

using namespace inf2vec;         // NOLINT
using namespace inf2vec::bench;  // NOLINT
using serve::InfluenceService;

// Million-user scale, the ROADMAP's serving stress scenario: the fp64
// target table (~512 MB) streams from RAM while the int8 table (~64 MB)
// stays cache-resident — the memory-footprint contrast the quantized
// store exists for. Smaller tables fit entirely in L3 on server parts
// and hide exactly the effect the topk arms measure.
constexpr uint32_t kNumUsers = 1000000;
constexpr uint32_t kDim = 64;
constexpr uint32_t kNumSeedSets = 1024;  // > LRU capacity: cold arm misses.
constexpr uint32_t kSeedsPerSet = 4;
constexpr uint32_t kColdQueries = 4000;
constexpr uint32_t kCachedQueries = 20000;
constexpr uint32_t kTopKQueries = 24;
constexpr uint32_t kBatchSize = 1024;
constexpr uint32_t kBatchCalls = 8;
constexpr uint32_t kObsPairs = 12;  // Interleaved (bare, traced) pairs.

// HTTP arms. The serial arm pays a fresh TCP connection per request (the
// old thread-per-request server's cost model); the concurrent arm runs
// kHttpClients keep-alive connections each pipelining kPipelineDepth
// requests per burst. Request counts are sized so each arm finishes in
// well under a second on loopback.
constexpr uint32_t kHttpSerialRequests = 1500;
constexpr uint32_t kHttpClients = 8;
constexpr uint32_t kPipelineDepth = 16;
constexpr uint32_t kBurstsPerClient = 40;
constexpr uint32_t kOpenLoopThreads = 4;
constexpr uint32_t kOpenLoopPerThread = 400;
constexpr double kOpenLoopRateQps = 4000.0;  // Total across all threads.
constexpr uint32_t kCoalesceClients = 8;
constexpr uint32_t kCoalesceRounds = 5;
// Full-target speedup on the 8-core serving deployment shape; the
// effective gate scales with the cores actually present (floored so the
// architectural win — keep-alive + pipelined syscall amortization —
// is still demanded even on a 1-core CI host).
constexpr double kHttpSpeedupFullGate = 10.0;
constexpr double kHttpSpeedupGateCores = 8.0;
constexpr double kHttpSpeedupGateFloor = 1.5;
constexpr double kHttpP99GateUs = 10000.0;

uint64_t NowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

double PercentileUs(std::vector<uint64_t>& latencies, double q) {
  INF2VEC_CHECK(!latencies.empty());
  std::sort(latencies.begin(), latencies.end());
  const double rank = q * static_cast<double>(latencies.size() - 1);
  return static_cast<double>(latencies[static_cast<size_t>(rank + 0.5)]);
}

struct ArmStats {
  double wall_ms = 0.0;
  double qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

/// Pipelining adapter over the shared obs::HttpClient raw-wire surface:
/// callers send several prebuilt requests, then read the responses back
/// in order. Response bodies are scanned only for the "coalesced" flag;
/// everything else is discarded. Deadline 0 == blocking, matching the
/// closed-loop arms' assumption that the server always answers.
class BenchConn {
 public:
  explicit BenchConn(uint16_t port) : client_(port) { client_.Connect(); }
  BenchConn(const BenchConn&) = delete;
  BenchConn& operator=(const BenchConn&) = delete;

  bool ok() const { return client_.connected(); }

  bool Send(const std::string& raw) { return client_.SendRaw(raw); }

  /// Reads exactly one framed response; returns its status code, or -1 on
  /// a transport/framing error. Sets *coalesced when the body carries the
  /// /topk single-flight marker.
  int ReadResponse(bool* coalesced = nullptr) {
    obs::HttpClientResponse response;
    if (!client_.ReadResponse(&response)) return -1;
    if (coalesced != nullptr) {
      *coalesced =
          response.body.find("\"coalesced\":true") != std::string::npos;
    }
    return response.status;
  }

 private:
  obs::HttpClient client_;
};

/// Runs `n` iterations of `fn`, timing each; returns wall/QPS/percentiles.
template <typename Fn>
ArmStats RunArm(uint32_t n, Fn&& fn) {
  std::vector<uint64_t> latencies;
  latencies.reserve(n);
  const WallTimer wall;
  for (uint32_t i = 0; i < n; ++i) {
    const uint64_t start = NowUs();
    fn(i);
    latencies.push_back(NowUs() - start);
  }
  ArmStats stats;
  stats.wall_ms = wall.ElapsedMillis();
  stats.qps = static_cast<double>(n) / (stats.wall_ms / 1000.0);
  stats.p50_us = PercentileUs(latencies, 0.50);
  stats.p99_us = PercentileUs(latencies, 0.99);
  return stats;
}

}  // namespace

int main() {
  obs::MetricsRegistry::Default().Reset();
  obs::EnableMetrics(true);

  // The memory plane runs for the whole bench: byte accounting is always
  // on (it is in production too), and the sampling heap profiler starts
  // here at its default 512 KB period so the request-obs overhead gate
  // below measures the full `serve --heap-profile-out` configuration, not
  // a stripped-down one.
  obs::MemoryRegistry::Default().Reset();
  INF2VEC_CHECK(obs::HeapProfiler::Default().Start().ok());

  // Synthetic fixed-seed model: serving cost depends only on table shape,
  // not on learned values, so training here would add minutes for nothing.
  Rng rng(4242);
  EmbeddingStore store(kNumUsers, kDim);
  store.InitUniform(-0.5, 0.5, rng);
  for (UserId u = 0; u < kNumUsers; ++u) {
    store.mutable_source_bias(u) = rng.UniformDouble(-0.1, 0.1);
    store.mutable_target_bias(u) = rng.UniformDouble(-0.1, 0.1);
  }
  // fp64 table footprint, for the int8 compression-ratio summary below.
  const double fp64_table_bytes = static_cast<double>(
      2ull * kNumUsers * store.row_stride() * sizeof(double) +
      2ull * kNumUsers * sizeof(double));

  ModelArtifact artifact;
  artifact.store = store;
  artifact.metadata.dim = kDim;

  serve::ServiceOptions options;
  options.num_threads = 0;  // All hardware threads for the batch arm.
  auto service_or =
      InfluenceService::FromArtifact(std::move(artifact), options);
  INF2VEC_CHECK(service_or.ok()) << service_or.status().ToString();
  const InfluenceService service = std::move(service_or).value();
  service.Warm();

  // Same table, int8-quantized serving mode (the `serve --quantize int8`
  // path); only the topk arm runs against it.
  ModelArtifact int8_artifact;
  int8_artifact.store = std::move(store);
  int8_artifact.metadata.dim = kDim;
  serve::ServiceOptions int8_options = options;
  int8_options.quantize = serve::QuantMode::kInt8;
  auto int8_service_or =
      InfluenceService::FromArtifact(std::move(int8_artifact), int8_options);
  INF2VEC_CHECK(int8_service_or.ok()) << int8_service_or.status().ToString();
  const InfluenceService int8_service = std::move(int8_service_or).value();
  int8_service.Warm();

  // Distinct seed sets; kNumSeedSets exceeds the LRU capacity, so
  // round-robin rotation through them defeats the cache (cold arm) while
  // reusing set 0 alone always hits (cached arm).
  std::vector<std::vector<UserId>> seed_sets(kNumSeedSets);
  for (auto& seeds : seed_sets) {
    seeds.reserve(kSeedsPerSet);
    for (uint32_t i = 0; i < kSeedsPerSet; ++i) {
      seeds.push_back(static_cast<UserId>(rng.UniformU64(kNumUsers)));
    }
  }

  // Coverage checkpoint at peak residency: both serving tables (fp64 and
  // fp64+int8) are resident and the arms only allocate request-sized
  // transients, so this is where the accounted gauges either explain the
  // kernel's RSS figure or don't (acceptance: >= 80%).
  const obs::MemoryRegistry::Snapshot mem_snap =
      obs::MemoryRegistry::Default().Scrape();
  const obs::MemorySample mem_sample = obs::SampleProcessMemory();
  const double mem_coverage =
      mem_sample.rss_bytes > 0
          ? static_cast<double>(mem_snap.total_bytes) /
                static_cast<double>(mem_sample.rss_bytes)
          : 0.0;

  std::printf("serve bench: %u users, dim %u, %u seed sets x %u seeds\n\n",
              kNumUsers, kDim, kNumSeedSets, kSeedsPerSet);

  const ArmStats cold = RunArm(kColdQueries, [&](uint32_t i) {
    serve::ScoreRequest request;
    request.candidate = (i * 7) % kNumUsers;
    request.seeds = seed_sets[i % kNumSeedSets];
    const auto result = service.ScoreActivation(request);
    INF2VEC_CHECK(result.ok()) << result.status().ToString();
  });

  const ArmStats cached = RunArm(kCachedQueries, [&](uint32_t i) {
    serve::ScoreRequest request;
    request.candidate = (i * 13) % kNumUsers;
    request.seeds = seed_sets[0];
    const auto result = service.ScoreActivation(request);
    INF2VEC_CHECK(result.ok()) << result.status().ToString();
  });

  const ArmStats topk = RunArm(kTopKQueries, [&](uint32_t i) {
    serve::TopKRequest request;
    request.seeds = seed_sets[i % kNumSeedSets];
    request.k = 10;
    const auto result = service.TopK(request);
    INF2VEC_CHECK(result.ok()) << result.status().ToString();
    INF2VEC_CHECK(result.value().entries.size() == 10u);
  });

  const ArmStats topk_int8 = RunArm(kTopKQueries, [&](uint32_t i) {
    serve::TopKRequest request;
    request.seeds = seed_sets[i % kNumSeedSets];
    request.k = 10;
    const auto result = int8_service.TopK(request);
    INF2VEC_CHECK(result.ok()) << result.status().ToString();
    INF2VEC_CHECK(result.value().entries.size() == 10u);
  });

  const ArmStats batch = RunArm(kBatchCalls, [&](uint32_t call) {
    serve::BatchScoreRequest request;
    request.items.reserve(kBatchSize);
    for (uint32_t i = 0; i < kBatchSize; ++i) {
      serve::BatchItem item;
      item.candidate = (call * kBatchSize + i * 3) % kNumUsers;
      item.seeds = seed_sets[(call * kBatchSize + i) % kNumSeedSets];
      request.items.push_back(std::move(item));
    }
    const auto result = service.ScoreBatch(request);
    INF2VEC_CHECK(result.ok()) << result.status().ToString();
  });
  // The batch row's throughput is items/sec, not calls/sec.
  const double batch_items_per_sec =
      static_cast<double>(kBatchCalls) * kBatchSize / (batch.wall_ms / 1000.0);

  // Request-observability overhead gate. Each iteration runs the SAME
  // hot-cache topk query bare and then inside a full RequestScope
  // (rpcz + tracez + access log — everything `serve --access-log` turns
  // on, including the scope teardown that serializes the wide event);
  // adjacent runs share clock state, so the median per-pair ratio
  // resolves a 2% signal that back-to-back whole-arm runs cannot.
  obs::RpczRegistry rpcz;
  obs::TracezBuffer tracez(32, 32, /*slow_threshold_us=*/0);
  obs::AccessLog access_log;
  const char* access_log_path = "BENCH_access_log.jsonl";
  INF2VEC_CHECK(access_log.Open(access_log_path).ok());
  obs::RequestObservability request_obs{&rpcz, &tracez, &access_log};

  const auto run_topk = [&](uint32_t i) {
    serve::TopKRequest request;
    request.seeds = seed_sets[0];  // Hot cache: gather noise excluded.
    request.k = 10;
    const auto result = service.TopK(request);
    INF2VEC_CHECK(result.ok()) << result.status().ToString();
    (void)i;
  };
  run_topk(0);  // Warm the seed cache before either arm is timed.

  std::vector<uint64_t> bare_us, traced_us;
  std::vector<double> obs_ratios;
  for (uint32_t i = 0; i < kObsPairs; ++i) {
    const uint64_t bare_start = NowUs();
    run_topk(i);
    bare_us.push_back(NowUs() - bare_start);

    const uint64_t traced_start = NowUs();
    {
      obs::RequestScope scope(request_obs, "GET", "/topk", "");
      run_topk(i);
      scope.set_status(200);
    }  // Scope teardown (record assembly + log append) is on the clock.
    traced_us.push_back(NowUs() - traced_start);
    obs_ratios.push_back(static_cast<double>(traced_us.back()) /
                         static_cast<double>(bare_us.back()));
  }
  std::sort(obs_ratios.begin(), obs_ratios.end());
  const double obs_overhead = obs_ratios[obs_ratios.size() / 2] - 1.0;
  const double bare_p50 = PercentileUs(bare_us, 0.50);
  const double traced_p50 = PercentileUs(traced_us, 0.50);
  INF2VEC_CHECK(access_log.lines_written() == kObsPairs);
  access_log.Close();
  std::remove(access_log_path);

  // ---- HTTP arms: the epoll server end to end over loopback. ----
  // The server fronts the int8 service (the ROADMAP's serving deployment
  // shape). Worker count matches the client count so a full /topk
  // coalition can park its followers while the leader scans.
  obs::StatsServerOptions http_options;
  http_options.num_workers = kHttpClients;
  obs::StatsServer http_server(http_options,
                               &obs::MetricsRegistry::Default());
  serve::RegisterServeEndpoints(&http_server, &int8_service);
  INF2VEC_CHECK(http_server.Start().ok());
  const uint16_t http_port = http_server.port();

  std::string hot_seeds_csv;
  for (size_t i = 0; i < seed_sets[0].size(); ++i) {
    if (i > 0) hot_seeds_csv += ',';
    hot_seeds_csv += std::to_string(seed_sets[0][i]);
  }
  const auto score_request = [&](uint32_t i, bool keep_alive) {
    return "GET /score?candidate=" + std::to_string((i * 13) % kNumUsers) +
           "&seeds=" + hot_seeds_csv + " HTTP/1.1\r\nHost: bench\r\n" +
           (keep_alive ? std::string()
                       : std::string("Connection: close\r\n")) +
           "\r\n";
  };

  // Serial baseline: a fresh TCP connection per request, one in flight —
  // what every request paid before keep-alive.
  const ArmStats http_serial = RunArm(kHttpSerialRequests, [&](uint32_t i) {
    BenchConn conn(http_port);
    INF2VEC_CHECK(conn.ok());
    INF2VEC_CHECK(conn.Send(score_request(i, /*keep_alive=*/false)));
    INF2VEC_CHECK(conn.ReadResponse() == 200);
  });

  // Closed-loop concurrent arm: keep-alive clients sending pipelined
  // bursts. Each response's latency is measured from its burst's send
  // time, so head-of-line waits inside a burst are on the clock. Bursts
  // are prebuilt outside the timed region — client-side string assembly
  // is not server capacity, and on a small host it would steal the very
  // cores being measured.
  std::vector<std::vector<std::string>> bursts(kHttpClients);
  for (uint32_t c = 0; c < kHttpClients; ++c) {
    bursts[c].reserve(kBurstsPerClient);
    for (uint32_t b = 0; b < kBurstsPerClient; ++b) {
      std::string burst;
      for (uint32_t d = 0; d < kPipelineDepth; ++d) {
        burst += score_request(c * 7919 + b * kPipelineDepth + d, true);
      }
      bursts[c].push_back(std::move(burst));
    }
  }
  std::vector<uint64_t> concurrent_us;
  std::mutex concurrent_mu;
  const WallTimer concurrent_wall;
  {
    std::vector<std::thread> clients;
    for (uint32_t c = 0; c < kHttpClients; ++c) {
      clients.emplace_back([&, c] {
        BenchConn conn(http_port);
        INF2VEC_CHECK(conn.ok());
        std::vector<uint64_t> local;
        local.reserve(kBurstsPerClient * kPipelineDepth);
        for (uint32_t b = 0; b < kBurstsPerClient; ++b) {
          const uint64_t start = NowUs();
          INF2VEC_CHECK(conn.Send(bursts[c][b]));
          for (uint32_t d = 0; d < kPipelineDepth; ++d) {
            INF2VEC_CHECK(conn.ReadResponse() == 200);
            local.push_back(NowUs() - start);
          }
        }
        std::lock_guard<std::mutex> lock(concurrent_mu);
        concurrent_us.insert(concurrent_us.end(), local.begin(),
                             local.end());
      });
    }
    for (std::thread& t : clients) t.join();
  }
  ArmStats http_concurrent;
  http_concurrent.wall_ms = concurrent_wall.ElapsedMillis();
  http_concurrent.qps = static_cast<double>(concurrent_us.size()) /
                        (http_concurrent.wall_ms / 1000.0);
  http_concurrent.p50_us = PercentileUs(concurrent_us, 0.50);
  http_concurrent.p99_us = PercentileUs(concurrent_us, 0.99);

  // Open-loop arm: paced arrivals at a fixed rate. Latency is measured
  // from each request's SCHEDULED arrival time, so a sender that falls
  // behind charges the queueing delay to the requests it delayed (the
  // coordinated-omission correction). 429 sheds are tallied, not fatal —
  // that is the admission queue doing its job.
  std::vector<uint64_t> open_loop_us;
  std::mutex open_loop_mu;
  std::atomic<uint64_t> open_loop_shed{0};
  const double arrival_interval_us =
      1e6 * kOpenLoopThreads / kOpenLoopRateQps;
  const WallTimer open_loop_wall;
  {
    std::vector<std::thread> clients;
    for (uint32_t c = 0; c < kOpenLoopThreads; ++c) {
      clients.emplace_back([&, c] {
        BenchConn conn(http_port);
        INF2VEC_CHECK(conn.ok());
        std::vector<uint64_t> local;
        local.reserve(kOpenLoopPerThread);
        const uint64_t t0 = NowUs();
        for (uint32_t i = 0; i < kOpenLoopPerThread; ++i) {
          const uint64_t due =
              t0 + static_cast<uint64_t>(i * arrival_interval_us);
          const uint64_t now = NowUs();
          if (now < due) {
            std::this_thread::sleep_for(
                std::chrono::microseconds(due - now));
          }
          INF2VEC_CHECK(conn.Send(score_request(c * 104729u + i, true)));
          const int status = conn.ReadResponse();
          if (status == 429) {
            open_loop_shed.fetch_add(1);
          } else {
            INF2VEC_CHECK(status == 200) << "status " << status;
          }
          local.push_back(NowUs() - due);
        }
        std::lock_guard<std::mutex> lock(open_loop_mu);
        open_loop_us.insert(open_loop_us.end(), local.begin(), local.end());
      });
    }
    for (std::thread& t : clients) t.join();
  }
  ArmStats http_open_loop;
  http_open_loop.wall_ms = open_loop_wall.ElapsedMillis();
  http_open_loop.qps = static_cast<double>(open_loop_us.size()) /
                       (http_open_loop.wall_ms / 1000.0);
  http_open_loop.p50_us = PercentileUs(open_loop_us, 0.50);
  http_open_loop.p99_us = PercentileUs(open_loop_us, 0.99);

  // Coalescing arm: every client asks for the SAME generation, seed set,
  // and k, so concurrent arrivals join the in-flight leader's scan.
  // Aggregate QPS beats the serial topk_int8 rate by roughly the
  // coalition size — the table is not scanned any faster, it is scanned
  // once per coalition.
  const std::string topk_target = "GET /topk?seeds=" + hot_seeds_csv +
                                  "&k=10 HTTP/1.1\r\nHost: bench\r\n\r\n";
  std::vector<uint64_t> coalesce_us;
  std::mutex coalesce_mu;
  std::atomic<uint64_t> coalesced_responses{0};
  const WallTimer coalesce_wall;
  {
    std::vector<std::thread> clients;
    for (uint32_t c = 0; c < kCoalesceClients; ++c) {
      clients.emplace_back([&] {
        BenchConn conn(http_port);
        INF2VEC_CHECK(conn.ok());
        std::vector<uint64_t> local;
        local.reserve(kCoalesceRounds);
        for (uint32_t r = 0; r < kCoalesceRounds; ++r) {
          const uint64_t start = NowUs();
          INF2VEC_CHECK(conn.Send(topk_target));
          bool coalesced = false;
          INF2VEC_CHECK(conn.ReadResponse(&coalesced) == 200);
          if (coalesced) coalesced_responses.fetch_add(1);
          local.push_back(NowUs() - start);
        }
        std::lock_guard<std::mutex> lock(coalesce_mu);
        coalesce_us.insert(coalesce_us.end(), local.begin(), local.end());
      });
    }
    for (std::thread& t : clients) t.join();
  }
  ArmStats topk_coalesce;
  topk_coalesce.wall_ms = coalesce_wall.ElapsedMillis();
  topk_coalesce.qps = static_cast<double>(coalesce_us.size()) /
                      (topk_coalesce.wall_ms / 1000.0);
  topk_coalesce.p50_us = PercentileUs(coalesce_us, 0.50);
  topk_coalesce.p99_us = PercentileUs(coalesce_us, 0.99);
  http_server.Stop();

  const double http_speedup = http_concurrent.qps / http_serial.qps;
  const double http_cores =
      static_cast<double>(std::thread::hardware_concurrency());
  const double http_speedup_gate =
      std::max(kHttpSpeedupGateFloor,
               kHttpSpeedupFullGate *
                   std::min(1.0, http_cores / kHttpSpeedupGateCores));
  const bool http_speedup_pass = http_speedup >= http_speedup_gate &&
                                 http_concurrent.p99_us < kHttpP99GateUs;
  const double coalesce_rate =
      static_cast<double>(coalesced_responses.load()) /
      static_cast<double>(coalesce_us.size());
  const double coalesce_speedup = topk_coalesce.qps / topk_int8.qps;

  std::printf("%-14s %10s %12s %12s %12s\n", "arm", "wall ms", "qps",
              "p50 us", "p99 us");
  const auto print_arm = [](const char* name, const ArmStats& s, double qps) {
    std::printf("%-14s %10.1f %12.0f %12.0f %12.0f\n", name, s.wall_ms, qps,
                s.p50_us, s.p99_us);
  };
  print_arm("score_cold", cold, cold.qps);
  print_arm("score_cached", cached, cached.qps);
  print_arm("topk", topk, topk.qps);
  print_arm("topk_int8", topk_int8, topk_int8.qps);
  print_arm("batch", batch, batch_items_per_sec);
  print_arm("http_serial", http_serial, http_serial.qps);
  print_arm("http_concurrent", http_concurrent, http_concurrent.qps);
  print_arm("http_open_loop", http_open_loop, http_open_loop.qps);
  print_arm("topk_coalesce", topk_coalesce, topk_coalesce.qps);

  std::printf(
      "\nhttp serving: %.1fx concurrent speedup over conn-per-request "
      "(gate: >= %.1fx, the %.0fx full target scaled to %.0f/%.0f cores), "
      "concurrent p99 %.0fus (gate: < %.0fus) -> %s\n",
      http_speedup, http_speedup_gate, kHttpSpeedupFullGate, http_cores,
      kHttpSpeedupGateCores, http_concurrent.p99_us, kHttpP99GateUs,
      http_speedup_pass ? "pass" : "FAIL");
  std::printf(
      "open loop @ %.0f qps: p99 %.0fus, %llu shed (429)\n",
      kOpenLoopRateQps, http_open_loop.p99_us,
      static_cast<unsigned long long>(open_loop_shed.load()));
  std::printf(
      "topk coalescing: %.0f%% of concurrent same-seed requests shared a "
      "scan, %.2fx the serial topk_int8 rate\n",
      100.0 * coalesce_rate, coalesce_speedup);

  std::printf(
      "\nrequest obs (rpcz+tracez+access-log): bare p50 %.0fus, traced "
      "p50 %.0fus, overhead %+.2f%% (gate: < 2%%)\n",
      bare_p50, traced_p50, 100.0 * obs_overhead);

  const double int8_table_bytes =
      static_cast<double>(int8_service.quantized_store()->TableBytes());
  std::printf(
      "\nint8 topk: %.2fx qps, table %.0f -> %.0f bytes (%.2fx smaller)\n",
      topk_int8.qps / topk.qps, fp64_table_bytes, int8_table_bytes,
      fp64_table_bytes / int8_table_bytes);

  const auto& cache = service.seed_cache();
  std::printf("\nseed cache: %zu entries, %llu hits, %llu misses\n",
              cache.size(), static_cast<unsigned long long>(cache.hits()),
              static_cast<unsigned long long>(cache.misses()));

  obs::HeapProfiler& heap = obs::HeapProfiler::Default();
  std::printf(
      "\nmemory: accounted %.0f MB / rss %.0f MB = %.2f coverage "
      "(gate: >= 0.80); heap profiler %llu samples, %.0f MB sampled\n",
      static_cast<double>(mem_snap.total_bytes) / (1024.0 * 1024.0),
      static_cast<double>(mem_sample.rss_bytes) / (1024.0 * 1024.0),
      mem_coverage,
      static_cast<unsigned long long>(heap.total_samples()),
      static_cast<double>(heap.sampled_alloc_bytes()) / (1024.0 * 1024.0));

  BenchReport report("serve");
  report.SetConfig("num_users", static_cast<int64_t>(kNumUsers));
  report.SetConfig("dim", static_cast<int64_t>(kDim));
  report.SetConfig("seeds_per_set", static_cast<int64_t>(kSeedsPerSet));
  report.SetConfig("seed_sets", static_cast<int64_t>(kNumSeedSets));
  report.SetConfig("batch_size", static_cast<int64_t>(kBatchSize));
  report.SetConfig("http_clients", static_cast<int64_t>(kHttpClients));
  report.SetConfig("http_pipeline_depth",
                   static_cast<int64_t>(kPipelineDepth));
  report.SetConfig("http_open_loop_rate_qps", kOpenLoopRateQps);
  report.SetSummary("score_cached_p50_us", cached.p50_us);
  report.SetSummary("score_cached_p99_us", cached.p99_us);
  report.SetSummary("batch_items_per_sec", batch_items_per_sec);
  report.SetSummary("int8_topk_speedup", topk_int8.qps / topk.qps);
  report.SetSummary("int8_table_ratio", fp64_table_bytes / int8_table_bytes);
  report.SetSummary("request_obs_relative_overhead", obs_overhead);
  report.SetSummary("request_obs_gate", 0.02);
  report.SetSummary("request_obs_pass", obs_overhead < 0.02);
  report.SetSummary("http_speedup", http_speedup);
  report.SetSummary("http_speedup_gate", http_speedup_gate);
  report.SetSummary("http_speedup_full_gate", kHttpSpeedupFullGate);
  report.SetSummary("http_cores", http_cores);
  report.SetSummary("http_concurrent_p99_us", http_concurrent.p99_us);
  report.SetSummary("http_p99_gate_us", kHttpP99GateUs);
  report.SetSummary("http_speedup_pass", http_speedup_pass);
  report.SetSummary("http_open_loop_rate_qps", kOpenLoopRateQps);
  report.SetSummary("http_open_loop_p99_us", http_open_loop.p99_us);
  report.SetSummary("http_open_loop_shed", open_loop_shed.load());
  report.SetSummary("topk_coalesce_rate", coalesce_rate);
  report.SetSummary("topk_coalesce_speedup", coalesce_speedup);
  report.SetSummary("mem_accounted_bytes", mem_snap.total_bytes);
  report.SetSummary("mem_rss_bytes", mem_sample.rss_bytes);
  report.SetSummary("mem_coverage", mem_coverage);
  report.SetSummary("mem_coverage_gate", 0.80);
  // Only gate when /proc was readable; accounting itself never depends
  // on it.
  report.SetSummary("mem_coverage_pass",
                    mem_sample.sampled && mem_coverage >= 0.80);
  report.SetSummary("heap_profiler_samples", heap.total_samples());
  report.SetSummary("heap_profiler_sampled_alloc_bytes",
                    heap.sampled_alloc_bytes());

  const auto add_row = [&report](const char* name, const ArmStats& s,
                                 double qps, uint64_t reps) {
    obs::JsonValue& row = report.AddResult(name, s.wall_ms, qps, reps);
    row.Set("p50_us", s.p50_us);
    row.Set("p99_us", s.p99_us);
  };
  add_row("score_cold", cold, cold.qps, kColdQueries);
  add_row("score_cached", cached, cached.qps, kCachedQueries);
  add_row("topk", topk, topk.qps, kTopKQueries);
  add_row("topk_int8", topk_int8, topk_int8.qps, kTopKQueries);
  add_row("batch", batch, batch_items_per_sec,
          static_cast<uint64_t>(kBatchCalls) * kBatchSize);
  add_row("http_serial", http_serial, http_serial.qps, kHttpSerialRequests);
  add_row("http_concurrent", http_concurrent, http_concurrent.qps,
          concurrent_us.size());
  add_row("http_open_loop", http_open_loop, http_open_loop.qps,
          open_loop_us.size());
  add_row("topk_coalesce", topk_coalesce, topk_coalesce.qps,
          coalesce_us.size());
  {
    obs::JsonValue& bare_row = report.AddResult(
        "topk_bare", bare_p50 * kObsPairs / 1000.0,
        1e6 / bare_p50, kObsPairs);
    bare_row.Set("p50_us", bare_p50);
    obs::JsonValue& traced_row = report.AddResult(
        "topk_request_obs", traced_p50 * kObsPairs / 1000.0,
        1e6 / traced_p50, kObsPairs);
    traced_row.Set("p50_us", traced_p50);
  }
  report.Write();

  INF2VEC_CHECK(heap.Stop().ok());
  heap.Reset();
  obs::EnableMetrics(false);
  obs::MetricsRegistry::Default().Reset();
  return 0;
}
