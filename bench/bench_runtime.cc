// Figure 9 reproduction: running time of ONE training iteration vs the
// embedding dimension K, Inf2vec vs Emb-IC, on both datasets.
//
// "One iteration" means: for Inf2vec, one SGD epoch over the pre-built
// influence corpus (context generation is excluded, as in the paper's
// complexity split); for Emb-IC, one EM iteration (E-step + M-step) over
// its precomputed statistics. Expected shape: both grow linearly in K and
// Inf2vec is several times faster; the paper reports 6x (Digg) and 12x
// (Flickr) at K = 50.
//
// Also reproduces the footnote: trained on first-order pairs only
// (Emb-IC's own corpus, skipping Algorithm 1), Inf2vec's iteration is
// another ~L times faster.

#include <cstdio>

#include "bench_common.h"
#include "util/logging.h"
#include "baselines/emb_ic.h"
#include "diffusion/influence_pairs.h"
#include "util/timer.h"

namespace {

using namespace inf2vec;         // NOLINT
using namespace inf2vec::bench;  // NOLINT

/// Seconds for one SGD epoch over `corpus` at dimension `dim`.
double TimeInf2vecIteration(const InfluenceCorpus& corpus, uint32_t users,
                            uint32_t dim) {
  ZooOptions options;
  options.dim = dim;
  Inf2vecConfig config = MakeInf2vecConfig(options);
  config.epochs = 1;
  WallTimer timer;
  Result<Inf2vecModel> model =
      Inf2vecModel::TrainFromCorpus(corpus, users, config, nullptr);
  INF2VEC_CHECK(model.ok()) << model.status().ToString();
  return timer.ElapsedSeconds();
}

/// Seconds for one EM iteration of the faithful-complexity Emb-IC replica
/// (co-occurrence links + per-cascade terms, as published) at `dim`.
double TimeNaiveEmbIcIteration(uint32_t num_users, const ActionLog& train,
                               uint32_t dim, uint64_t* terms) {
  EmbIcOptions options;
  options.dim = dim;
  NaiveEmbIcReplica replica(num_users, train, options);
  *terms = replica.num_trial_terms();
  WallTimer timer;
  replica.RunEmIteration();
  return timer.ElapsedSeconds();
}

/// Seconds for one EM iteration of THIS library's per-edge-aggregated
/// Emb-IC (an optimization the original does not describe; reported for
/// context, not used in the headline ratio).
double TimeOptimizedEmbIcIteration(const SocialGraph& graph,
                                   const ActionLog& train, uint32_t dim) {
  EmbIcOptions options;
  options.dim = dim;
  EmbIcTrainer trainer(graph, train, options);
  trainer.RunEmIteration();  // Warm-up (first touch of buffers).
  WallTimer timer;
  trainer.RunEmIteration();
  return timer.ElapsedSeconds();
}

}  // namespace

int main() {
  const uint32_t kDims[] = {10, 25, 50, 100};

  BenchReport report("runtime");
  for (DatasetKind kind :
       {DatasetKind::kDiggLike, DatasetKind::kFlickrLike}) {
    const Dataset d = MakeDataset(kind);
    PrintBanner("Figure 9: per-iteration runtime vs K", d);

    // Inf2vec corpus via Algorithm 1 (L = 50) and the first-order-pairs
    // corpus for the footnote comparison.
    ZooOptions zoo;
    const InfluenceCorpus corpus =
        BuildInfluenceCorpus(d.world.graph, d.split.train,
                             MakeInf2vecConfig(zoo).context,
                             d.world.graph.num_users(),
                             CorpusBuildOptions{.seed = 3});
    InfluenceCorpus pairs_only;
    pairs_only.target_frequencies.assign(d.world.graph.num_users(), 0);
    for (const DiffusionEpisode& episode : d.split.train.episodes()) {
      for (const InfluencePair& p :
           ExtractInfluencePairs(d.world.graph, episode)) {
        pairs_only.pairs.push_back({p.source, p.target});
        ++pairs_only.target_frequencies[p.target];
      }
    }
    pairs_only.num_tuples = pairs_only.pairs.size();
    std::printf("training instances: Inf2vec corpus %zu pairs, first-order "
                "pairs %zu\n\n",
                corpus.pairs.size(), pairs_only.pairs.size());

    std::printf("%-6s %12s %14s %16s %18s %9s\n", "K", "Inf2vec(s)",
                "Emb-IC(s)", "Emb-IC-aggr(s)", "Inf2vec-pairs(s)",
                "speedup");
    uint64_t terms = 0;
    for (uint32_t dim : kDims) {
      const double inf_s =
          TimeInf2vecIteration(corpus, d.world.graph.num_users(), dim);
      const double emb_s = TimeNaiveEmbIcIteration(
          d.world.graph.num_users(), d.split.train, dim, &terms);
      const double emb_aggr_s =
          TimeOptimizedEmbIcIteration(d.world.graph, d.split.train, dim);
      const double pairs_s = TimeInf2vecIteration(
          pairs_only, d.world.graph.num_users(), dim);
      std::printf("%-6u %12.3f %14.3f %16.3f %18.3f %8.1fx\n", dim, inf_s,
                  emb_s, emb_aggr_s, pairs_s, emb_s / inf_s);
      std::fflush(stdout);
      obs::JsonValue& row = report.AddResult(
          d.name + "/K=" + std::to_string(dim), inf_s * 1000.0,
          static_cast<double>(corpus.pairs.size()) / inf_s);
      row.Set("inf2vec_seconds", inf_s);
      row.Set("emb_ic_seconds", emb_s);
      row.Set("emb_ic_aggr_seconds", emb_aggr_s);
      row.Set("inf2vec_pairs_seconds", pairs_s);
      row.Set("speedup", emb_s / inf_s);
    }
    std::printf("(Emb-IC = faithful per-cascade replica over %llu "
                "co-occurrence trial terms, as published; Emb-IC-aggr = "
                "this library's per-edge-aggregated reformulation)\n\n",
                static_cast<unsigned long long>(terms));
  }
  // The headline 6x/12x of the paper's Fig. 9 depends on episode
  // geometry: Emb-IC's per-iteration cost is quadratic in episode size
  // (co-occurrence links), Inf2vec's is linear (|P| * L). The paper's
  // episodes average ~700 adopters; the standard bench worlds average
  // ~65, which deflates Emb-IC's quadratic term. This section rebuilds a
  // world with paper-like episode geometry (few items, huge episodes) and
  // shows the paper's regime emerge.
  {
    synth::WorldProfile profile = synth::WorldProfile::DiggLike();
    profile.num_items = 40;
    profile.spontaneous_rate = 0.15;
    Rng world_rng(20180416);
    Result<synth::World> world = synth::GenerateWorld(profile, world_rng);
    INF2VEC_CHECK(world.ok()) << world.status().ToString();
    double mean_episode = 0.0;
    for (const DiffusionEpisode& e : world.value().log.episodes()) {
      mean_episode += static_cast<double>(e.size());
    }
    mean_episode /= world.value().log.num_episodes();
    std::printf("##### Fig. 9 addendum: paper-like episode geometry "
                "(%zu episodes, mean size %.0f) #####\n",
                world.value().log.num_episodes(), mean_episode);

    ZooOptions zoo;
    zoo.num_negatives = 5;  // The paper's lower |N| bound, as in its Fig. 9.
    const InfluenceCorpus corpus = BuildInfluenceCorpus(
        world.value().graph, world.value().log,
        MakeInf2vecConfig(zoo).context, world.value().graph.num_users(),
        CorpusBuildOptions{.seed = 3});
    std::printf("Inf2vec corpus: %zu pairs\n", corpus.pairs.size());

    std::printf("%-6s %12s %14s %9s\n", "K", "Inf2vec(s)", "Emb-IC(s)",
                "speedup");
    for (uint32_t dim : {10u, 50u}) {
      Inf2vecConfig config = MakeInf2vecConfig(zoo);
      config.dim = dim;
      config.epochs = 1;
      WallTimer inf_timer;
      Result<Inf2vecModel> model = Inf2vecModel::TrainFromCorpus(
          corpus, world.value().graph.num_users(), config, nullptr);
      INF2VEC_CHECK(model.ok()) << model.status().ToString();
      const double inf_s = inf_timer.ElapsedSeconds();

      EmbIcOptions emb_options;
      emb_options.dim = dim;
      NaiveEmbIcReplica replica(world.value().graph.num_users(),
                                world.value().log, emb_options);
      WallTimer emb_timer;
      replica.RunEmIteration();
      const double emb_s = emb_timer.ElapsedSeconds();
      std::printf("%-6u %12.3f %14.3f %8.1fx\n", dim, inf_s, emb_s,
                  emb_s / inf_s);
      std::fflush(stdout);
      obs::JsonValue& row = report.AddResult(
          "paper-geometry/K=" + std::to_string(dim), inf_s * 1000.0,
          static_cast<double>(corpus.pairs.size()) / inf_s);
      row.Set("inf2vec_seconds", inf_s);
      row.Set("emb_ic_seconds", emb_s);
      row.Set("speedup", emb_s / inf_s);
    }
  }
  report.Write();

  std::printf(
      "\nshape check vs paper Fig. 9: runtime linear in K for both methods;"
      " at paper-like episode geometry Inf2vec is several times faster per"
      " iteration (paper: 6x Digg / 12x Flickr at K=50), and 30x+ faster on"
      " the first-order-pairs corpus (paper: 32x / 120x).\n");
  return 0;
}
