// Figure 7 reproduction: MAP (activation task) as a function of the
// embedding dimension K, on both datasets. Expected shape: MAP rises with
// K, then flattens or dips once the parameter count outgrows the data
// (the paper sees the best values around K = 50-100).

#include <cstdio>

#include "bench_common.h"
#include "util/logging.h"
#include "util/timer.h"
#include "eval/activation_task.h"

int main() {
  using namespace inf2vec;         // NOLINT
  using namespace inf2vec::bench;  // NOLINT

  const uint32_t kDims[] = {2, 5, 10, 25, 50, 100, 150};
  constexpr int kRuns = 2;  // Seeds averaged to de-noise the curve.

  BenchReport report("sweep_k");
  report.SetConfig("runs_per_point", kRuns);
  for (DatasetKind kind :
       {DatasetKind::kDiggLike, DatasetKind::kFlickrLike}) {
    const Dataset d = MakeDataset(kind);
    PrintBanner("Figure 7: MAP vs dimension K", d);
    std::printf("%-8s %-8s %-8s\n", "K", "MAP", "AUC");
    for (uint32_t dim : kDims) {
      std::vector<RankingMetrics> runs;
      WallTimer timer;
      for (int run = 0; run < kRuns; ++run) {
        ZooOptions options;
        options.dim = dim;
        options.seed = 100 + run;
        Result<Inf2vecModel> model = Inf2vecModel::Train(
            d.world.graph, d.split.train, MakeInf2vecConfig(options));
        INF2VEC_CHECK(model.ok()) << model.status().ToString();
        const EmbeddingPredictor pred = model.value().Predictor();
        runs.push_back(
            EvaluateActivation(pred, d.world.graph, d.split.test));
      }
      const MetricsSummary s = SummarizeRuns(runs);
      std::printf("%-8u %-8.4f %-8.4f\n", dim, s.mean.map, s.mean.auc);
      std::fflush(stdout);
      obs::JsonValue& row =
          report.AddResult(d.name + "/K=" + std::to_string(dim),
                           timer.ElapsedSeconds() * 1000.0,
                           /*throughput=*/0.0, kRuns);
      row.Set("map", s.mean.map);
      row.Set("auc", s.mean.auc);
    }
    std::printf("\n");
  }
  report.Write();
  std::printf("shape check vs paper Fig. 7: rising then saturating/dipping "
              "MAP; peak in the K = 50-100 region.\n");
  return 0;
}
