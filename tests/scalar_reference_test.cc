// Pins the scalar kernel backend to the exact bits the pre-kernel-layer
// implementation produced. The golden constants below were captured from
// the historical plain-loop code (EmbeddingStore::Score + SgdTrainer
// inner loops) BEFORE the kernel layer existed; any change to the scalar
// backend's accumulation order, to the padded-row RNG draw sequence, or
// to the trainer's kernel wiring shows up here as a bit mismatch.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "embedding/embedding_store.h"
#include "embedding/negative_sampler.h"
#include "embedding/sgd_trainer.h"
#include "kernels/kernels.h"
#include "util/crc32.h"
#include "util/rng.h"

namespace inf2vec {
namespace {

// dim 13 is deliberately not a multiple of the AVX2 width: the scalar
// pin must hold for remainder-lane shapes too.
constexpr uint32_t kUsers = 24;
constexpr uint32_t kDim = 13;

// Captured from the pre-kernel-layer scalar implementation (see file
// comment). Do not regenerate casually: a change here means the scalar
// path is no longer bit-identical to every previously trained model.
constexpr uint32_t kGoldenCrc = 0x3ed9a533u;
constexpr uint64_t kGoldenObjectiveBits = 0xc094e5e92d52b28cull;
constexpr uint64_t kGoldenScore311Bits = 0xbfc158413870429aull;
constexpr uint64_t kGoldenS50Bits = 0x3fb19680325bd461ull;
constexpr uint64_t kGoldenT1712Bits = 0xbf7b0e8065489d38ull;

uint64_t Bits(double x) {
  uint64_t b;
  std::memcpy(&b, &x, sizeof(b));
  return b;
}

class ScalarReferenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(kernels::SetActiveIsa(kernels::Isa::kScalar));
  }
  void TearDown() override { kernels::ResetIsaForTest(); }
};

/// The frozen training recipe: 500 deterministic TrainPair steps over a
/// 24-user, dim-13 store with unigram^0.75 negatives.
double RunGoldenRecipe(EmbeddingStore* store) {
  Rng init_rng(7);
  store->InitPaperDefault(init_rng);

  std::vector<uint64_t> freqs(kUsers);
  for (uint32_t u = 0; u < kUsers; ++u) freqs[u] = 1 + (u % 5);
  Result<NegativeSampler> sampler = NegativeSampler::Create(
      NegativeSamplerKind::kUnigram075, kUsers, freqs);
  EXPECT_TRUE(sampler.ok());
  SgdOptions options;
  options.num_negatives = 3;
  SgdTrainer trainer(store, &sampler.value(), options);

  Rng train_rng(13);
  double objective = 0.0;
  for (uint32_t step = 0; step < 500; ++step) {
    const UserId u = static_cast<UserId>(step % kUsers);
    const UserId v = static_cast<UserId>((step * 7 + 3) % kUsers);
    if (u == v) continue;
    objective += trainer.TrainPair(u, v, train_rng);
  }
  return objective;
}

/// CRC over every parameter byte in a fixed traversal order (S rows, T
/// rows, then per-user source/target bias pairs).
uint32_t StoreCrc(const EmbeddingStore& store) {
  uint32_t crc = 0;
  for (UserId u = 0; u < store.num_users(); ++u) {
    crc = Crc32(store.Source(u).data(), sizeof(double) * store.dim(), crc);
  }
  for (UserId u = 0; u < store.num_users(); ++u) {
    crc = Crc32(store.Target(u).data(), sizeof(double) * store.dim(), crc);
  }
  for (UserId u = 0; u < store.num_users(); ++u) {
    const double b = store.source_bias(u);
    crc = Crc32(&b, sizeof(b), crc);
    const double t = store.target_bias(u);
    crc = Crc32(&t, sizeof(t), crc);
  }
  return crc;
}

TEST_F(ScalarReferenceTest, TrainingReproducesPreKernelBitsExactly) {
  EmbeddingStore store(kUsers, kDim);
  const double objective = RunGoldenRecipe(&store);

  EXPECT_EQ(StoreCrc(store), kGoldenCrc);
  EXPECT_EQ(Bits(objective), kGoldenObjectiveBits);
  EXPECT_EQ(Bits(store.Score(3, 11)), kGoldenScore311Bits);
  EXPECT_EQ(Bits(store.Source(5)[0]), kGoldenS50Bits);
  EXPECT_EQ(Bits(store.Target(17)[12]), kGoldenT1712Bits);
}

TEST_F(ScalarReferenceTest, PaddedStorageDoesNotChangeRngDrawOrder) {
  // Two stores with different padding amounts (dim 13 pads 3 lanes,
  // dim 8 pads none) must both consume exactly dim draws per row: the
  // draw consumed after init is position-identical to a store with no
  // padding at all.
  EmbeddingStore padded(4, 13);
  Rng rng_a(99);
  padded.InitPaperDefault(rng_a);
  Rng rng_b(99);
  std::vector<double> expected;
  const double bound = 1.0 / 13.0;
  for (size_t i = 0; i < 2 * 4 * 13; ++i) {
    expected.push_back(rng_b.UniformDouble(-bound, bound));
  }
  size_t idx = 0;
  for (UserId u = 0; u < 4; ++u) {
    for (double x : padded.Source(u)) EXPECT_EQ(Bits(x), Bits(expected[idx++]));
  }
  for (UserId u = 0; u < 4; ++u) {
    for (double x : padded.Target(u)) EXPECT_EQ(Bits(x), Bits(expected[idx++]));
  }
  // Both generators are now in the same state.
  EXPECT_EQ(rng_a.UniformDouble(), rng_b.UniformDouble());
}

TEST_F(ScalarReferenceTest, GrowToPreservesBitsAndDrawOrderWithPadding) {
  EmbeddingStore store(3, 13);
  Rng init(5);
  store.InitPaperDefault(init);
  const EmbeddingStore before = store;
  Rng grow(17);
  store.GrowTo(6, grow);
  for (UserId u = 0; u < 3; ++u) {
    for (uint32_t k = 0; k < 13; ++k) {
      EXPECT_EQ(Bits(store.Source(u)[k]), Bits(before.Source(u)[k]));
      EXPECT_EQ(Bits(store.Target(u)[k]), Bits(before.Target(u)[k]));
    }
  }
  // New rows draw in user-id order, all S rows then all T rows, dim
  // draws per row — independent of the padded stride.
  Rng expected_rng(17);
  const double bound = 1.0 / 13.0;
  for (UserId u = 3; u < 6; ++u) {
    for (uint32_t k = 0; k < 13; ++k) {
      EXPECT_EQ(Bits(store.Source(u)[k]),
                Bits(expected_rng.UniformDouble(-bound, bound)));
    }
  }
  for (UserId u = 3; u < 6; ++u) {
    for (uint32_t k = 0; k < 13; ++k) {
      EXPECT_EQ(Bits(store.Target(u)[k]),
                Bits(expected_rng.UniformDouble(-bound, bound)));
    }
  }
}

}  // namespace
}  // namespace inf2vec
