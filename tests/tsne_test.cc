#include "viz/tsne.h"

#include <cmath>

#include <gtest/gtest.h>

namespace inf2vec {
namespace {

TEST(TsneTest, RejectsBadInput) {
  TsneOptions opts;
  EXPECT_FALSE(RunTsne({}, 0, 5, opts).ok());
  EXPECT_FALSE(RunTsne({1.0, 2.0}, 2, 2, opts).ok());  // Size mismatch.
  EXPECT_FALSE(RunTsne({1, 2, 3, 4, 5, 6}, 3, 2, opts).ok());  // n < 4.
  opts.output_dim = 0;
  EXPECT_FALSE(RunTsne(std::vector<double>(20, 0.0), 10, 2, opts).ok());
}

TEST(TsneTest, OutputHasRequestedShape) {
  Rng rng(1);
  std::vector<double> data(20 * 5);
  for (double& x : data) x = rng.Gaussian();
  TsneOptions opts;
  opts.iterations = 50;
  auto result = RunTsne(data, 20, 5, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().size(), 20u * 2);
  for (double x : result.value()) EXPECT_TRUE(std::isfinite(x));
}

TEST(TsneTest, SeparatesTwoGaussianClusters) {
  // 30 points at (0,...,0) + noise, 30 at (10,...,10) + noise.
  Rng rng(2);
  const size_t n = 60;
  const size_t d = 6;
  std::vector<double> data(n * d);
  for (size_t i = 0; i < n; ++i) {
    const double center = i < 30 ? 0.0 : 10.0;
    for (size_t k = 0; k < d; ++k) {
      data[i * d + k] = center + 0.3 * rng.Gaussian();
    }
  }
  TsneOptions opts;
  opts.iterations = 300;
  opts.perplexity = 10.0;
  auto result = RunTsne(data, n, d, opts);
  ASSERT_TRUE(result.ok());
  const std::vector<double>& y = result.value();

  auto dist = [&](size_t a, size_t b) {
    const double dx = y[a * 2] - y[b * 2];
    const double dy = y[a * 2 + 1] - y[b * 2 + 1];
    return std::sqrt(dx * dx + dy * dy);
  };
  double intra = 0.0;
  double inter = 0.0;
  int intra_n = 0;
  int inter_n = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if ((i < 30) == (j < 30)) {
        intra += dist(i, j);
        ++intra_n;
      } else {
        inter += dist(i, j);
        ++inter_n;
      }
    }
  }
  EXPECT_GT(inter / inter_n, 2.0 * (intra / intra_n))
      << "clusters not separated in the embedding";
}

TEST(TsneTest, DeterministicGivenSeed) {
  Rng rng(3);
  std::vector<double> data(10 * 3);
  for (double& x : data) x = rng.Gaussian();
  TsneOptions opts;
  opts.iterations = 40;
  auto a = RunTsne(data, 10, 3, opts);
  auto b = RunTsne(data, 10, 3, opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value(), b.value());
}

TEST(MeanPairDistanceRatioTest, TightPairsScoreBelowOne) {
  // 4 points: two coincident pairs far apart.
  const std::vector<double> coords = {0.0, 0.0, 0.1, 0.0,
                                      10.0, 0.0, 10.1, 0.0};
  const double ratio =
      MeanPairDistanceRatio(coords, 4, 2, {{0, 1}, {2, 3}});
  EXPECT_LT(ratio, 0.1);
}

TEST(MeanPairDistanceRatioTest, RandomPairsScoreNearOne) {
  const std::vector<double> coords = {0.0, 0.0, 0.1, 0.0,
                                      10.0, 0.0, 10.1, 0.0};
  // Pair the far-apart points.
  const double ratio =
      MeanPairDistanceRatio(coords, 4, 2, {{0, 2}, {1, 3}});
  EXPECT_GT(ratio, 0.9);
}

TEST(MeanPairDistanceRatioTest, EmptyPairsReturnOne) {
  EXPECT_DOUBLE_EQ(MeanPairDistanceRatio({0, 0, 1, 1}, 2, 2, {}), 1.0);
}

}  // namespace
}  // namespace inf2vec
