// End-to-end integration test: generates a small Digg-like world, trains
// Inf2vec and the full baseline roster on the same 80/10/10 split, and
// checks the qualitative orderings the paper reports. Thresholds are
// deliberately loose — exact values live in the benches — but the *shape*
// (Inf2vec beats the structure-only and naive baselines) must hold.

#include <memory>

#include <gtest/gtest.h>

#include "baselines/em_ic.h"
#include "baselines/emb_ic.h"
#include "baselines/ic_baseline.h"
#include "baselines/mf_bpr.h"
#include "baselines/node2vec.h"
#include "core/inf2vec_model.h"
#include "embedding/model_io.h"
#include "eval/activation_task.h"
#include "eval/diffusion_task.h"
#include "synth/world_generator.h"

namespace inf2vec {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    synth::WorldProfile profile = synth::WorldProfile::DiggLike();
    profile.num_users = 500;
    profile.num_items = 120;
    Rng rng(4242);
    world_ = new synth::World(
        std::move(synth::GenerateWorld(profile, rng)).value());
    Rng split_rng(17);
    split_ = new LogSplit(SplitLog(world_->log, 0.8, 0.1, split_rng));
  }
  static void TearDownTestSuite() {
    delete world_;
    delete split_;
    world_ = nullptr;
    split_ = nullptr;
  }

  static synth::World* world_;
  static LogSplit* split_;
};

synth::World* IntegrationTest::world_ = nullptr;
LogSplit* IntegrationTest::split_ = nullptr;

Inf2vecConfig FastConfig() {
  Inf2vecConfig config;
  config.dim = 24;
  config.epochs = 4;
  config.context.length = 16;
  return config;
}

TEST_F(IntegrationTest, Inf2vecBeatsDegreeAndNode2vecOnActivation) {
  auto model = Inf2vecModel::Train(world_->graph, split_->train, FastConfig());
  ASSERT_TRUE(model.ok());
  const EmbeddingPredictor inf2vec = model.value().Predictor();
  const RankingMetrics m_inf =
      EvaluateActivation(inf2vec, world_->graph, split_->test);

  const IcBaselineModel de = CreateDegreeModel(world_->graph, 100);
  const RankingMetrics m_de =
      EvaluateActivation(de, world_->graph, split_->test);

  Node2vecOptions n2v_opts;
  n2v_opts.dim = 24;
  n2v_opts.walks_per_node = 3;
  n2v_opts.walk_length = 12;
  n2v_opts.epochs = 1;
  auto n2v = Node2vecModel::Train(world_->graph, n2v_opts);
  ASSERT_TRUE(n2v.ok());
  const RankingMetrics m_n2v = EvaluateActivation(
      n2v.value().Predictor(), world_->graph, split_->test);

  EXPECT_GT(m_inf.auc, m_de.auc);
  EXPECT_GT(m_inf.auc, m_n2v.auc);
  EXPECT_GT(m_inf.map, m_de.map);
}

TEST_F(IntegrationTest, Inf2vecBeatsLocalOnlyAblation) {
  auto full = Inf2vecModel::Train(world_->graph, split_->train, FastConfig());
  ASSERT_TRUE(full.ok());
  Inf2vecConfig local_config = FastConfig();
  local_config.context.alpha = 1.0;
  auto local =
      Inf2vecModel::Train(world_->graph, split_->train, local_config);
  ASSERT_TRUE(local.ok());

  const RankingMetrics m_full = EvaluateActivation(
      full.value().Predictor(), world_->graph, split_->test);
  const RankingMetrics m_local = EvaluateActivation(
      local.value().Predictor("Inf2vec-L"), world_->graph, split_->test);
  // Table IV: global user-similarity context helps.
  EXPECT_GT(m_full.auc + 0.02, m_local.auc);
  EXPECT_GT(m_full.map, m_local.map * 0.8);
}

TEST_F(IntegrationTest, StBeatsDegreeBaseline) {
  const IcBaselineModel st =
      CreateStaticModel(world_->graph, split_->train, 100);
  const IcBaselineModel de = CreateDegreeModel(world_->graph, 100);
  const RankingMetrics m_st =
      EvaluateActivation(st, world_->graph, split_->test);
  const RankingMetrics m_de =
      EvaluateActivation(de, world_->graph, split_->test);
  EXPECT_GT(m_st.auc, m_de.auc);
}

TEST_F(IntegrationTest, AllModelsProduceFiniteDiffusionScores) {
  auto model = Inf2vecModel::Train(world_->graph, split_->train, FastConfig());
  ASSERT_TRUE(model.ok());
  const EmbeddingPredictor inf2vec = model.value().Predictor();

  const IcBaselineModel st =
      CreateStaticModel(world_->graph, split_->train, 50);

  DiffusionTaskOptions opts;
  Rng rng(5);
  const RankingMetrics m_inf = EvaluateDiffusion(
      inf2vec, world_->graph.num_users(), split_->test, opts, rng);
  const RankingMetrics m_st = EvaluateDiffusion(
      st, world_->graph.num_users(), split_->test, opts, rng);
  EXPECT_GT(m_inf.num_queries, 0u);
  EXPECT_GT(m_st.num_queries, 0u);
  EXPECT_GT(m_inf.auc, 0.5);
}

TEST_F(IntegrationTest, EmRefinesStProbabilities) {
  EmOptions options;
  options.iterations = 8;
  options.mc_simulations = 50;
  EmDiagnostics diag;
  const IcBaselineModel em =
      CreateEmModel(world_->graph, split_->train, options, &diag);
  ASSERT_EQ(diag.log_likelihood.size(), 8u);
  // EM monotonicity on the real training data.
  for (size_t i = 1; i < diag.log_likelihood.size(); ++i) {
    EXPECT_GE(diag.log_likelihood[i], diag.log_likelihood[i - 1] - 1e-6);
  }
  const RankingMetrics m_em =
      EvaluateActivation(em, world_->graph, split_->test);
  EXPECT_GT(m_em.auc, 0.5);
}

TEST_F(IntegrationTest, MfCapturesInterestSimilarity) {
  MfOptions options;
  options.dim = 16;
  options.epochs = 6;
  auto mf = MfBprModel::Train(world_->graph.num_users(), split_->train,
                              options);
  ASSERT_TRUE(mf.ok());
  const RankingMetrics m_mf = EvaluateActivation(
      mf.value().Predictor(), world_->graph, split_->test);
  // MF uses no network structure yet must still beat chance on this data
  // because interest drives much of the adoption.
  EXPECT_GT(m_mf.auc, 0.55);
}

TEST_F(IntegrationTest, SavedModelScoresIdentically) {
  auto model = Inf2vecModel::Train(world_->graph, split_->train, FastConfig());
  ASSERT_TRUE(model.ok());
  const std::string path = ::testing::TempDir() + "/inf2vec_integration.bin";
  ASSERT_TRUE(SaveEmbeddings(model.value().embeddings(), path).ok());
  auto loaded = LoadEmbeddings(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value(), model.value().embeddings());
}

}  // namespace
}  // namespace inf2vec
