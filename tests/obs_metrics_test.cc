#include "obs/metrics.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/inf2vec_model.h"
#include "obs/json.h"
#include "obs/run_report.h"
#include "synth/world_generator.h"
#include "util/thread_pool.h"

namespace inf2vec {
namespace obs {
namespace {

/// Every test runs against the (process-wide) default registry with
/// recording enabled, and leaves it disabled and zeroed afterwards.
class ObsMetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::Default().Reset();
    EnableMetrics(true);
  }
  void TearDown() override {
    EnableMetrics(false);
    MetricsRegistry::Default().Reset();
  }
};

TEST_F(ObsMetricsTest, MetricsAreDisabledByDefaultElsewhere) {
  EnableMetrics(false);
  EXPECT_FALSE(MetricsEnabled());
  EnableMetrics(true);
  EXPECT_TRUE(MetricsEnabled());
}

TEST_F(ObsMetricsTest, CounterAccumulatesAndSupportsDeltas) {
  Counter* c = MetricsRegistry::Default().GetCounter("test.counter");
  EXPECT_EQ(c->Value(), 0u);
  c->Increment();
  c->Increment(41);
  EXPECT_EQ(c->Value(), 42u);
}

TEST_F(ObsMetricsTest, SameNameReturnsSameHandle) {
  MetricsRegistry& registry = MetricsRegistry::Default();
  EXPECT_EQ(registry.GetCounter("test.same"), registry.GetCounter("test.same"));
  EXPECT_EQ(registry.GetGauge("test.same_g"),
            registry.GetGauge("test.same_g"));
  EXPECT_EQ(registry.GetHistogram("test.same_h"),
            registry.GetHistogram("test.same_h"));
}

TEST_F(ObsMetricsTest, CounterSumsStripesExactlyAcrossThreads) {
  Counter* c = MetricsRegistry::Default().GetCounter("test.threaded");
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 10000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([c] {
      for (uint64_t i = 0; i < kPerThread; ++i) c->Increment();
    });
  }
  for (std::thread& w : workers) w.join();
  // Striped relaxed adds lose nothing: the total is exact.
  EXPECT_EQ(c->Value(), kThreads * kPerThread);
}

TEST_F(ObsMetricsTest, GaugeIsLastWriteWins) {
  Gauge* g = MetricsRegistry::Default().GetGauge("test.gauge");
  g->Set(1.5);
  g->Set(-2.25);
  EXPECT_DOUBLE_EQ(g->Value(), -2.25);
}

TEST_F(ObsMetricsTest, HistogramShardMergeMatchesSerialReference) {
  HistogramMetric* metric = MetricsRegistry::Default().GetHistogram(
      "test.hist", DurationBoundariesUs());
  // Reference: the same observations recorded into one plain histogram.
  Histogram reference(DurationBoundariesUs());
  std::vector<uint64_t> values;
  for (uint64_t i = 1; i <= 2000; ++i) values.push_back(i * 37 % 100000 + 1);
  for (uint64_t v : values) reference.Add(v);

  // Record from many threads (hitting different stripes).
  constexpr int kThreads = 6;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([metric, &values, t] {
      for (size_t i = static_cast<size_t>(t); i < values.size();
           i += kThreads) {
        metric->Record(values[i]);
      }
    });
  }
  for (std::thread& w : workers) w.join();

  // The merged snapshot is identical to the serial reference — fixed
  // boundaries make the merge deterministic regardless of which thread
  // recorded which value.
  const Histogram merged = metric->Snapshot();
  EXPECT_EQ(merged.total_count(), reference.total_count());
  EXPECT_EQ(merged.Items(), reference.Items());
}

TEST_F(ObsMetricsTest, ResetZeroesButKeepsHandles) {
  MetricsRegistry& registry = MetricsRegistry::Default();
  Counter* c = registry.GetCounter("test.reset");
  c->Increment(7);
  registry.Reset();
  EXPECT_EQ(c->Value(), 0u);
  EXPECT_EQ(registry.GetCounter("test.reset"), c);
}

TEST_F(ObsMetricsTest, ScrapeJsonRoundTripsThroughParser) {
  MetricsRegistry& registry = MetricsRegistry::Default();
  registry.GetCounter("roundtrip.counter")->Increment(123);
  registry.GetGauge("roundtrip.gauge")->Set(0.125);
  HistogramMetric* h =
      registry.GetHistogram("roundtrip.hist", DurationBoundariesUs());
  for (uint64_t v = 1; v <= 100; ++v) h->Record(v);

  const std::string dumped = registry.ScrapeJson().Dump();
  Result<JsonValue> parsed = ParseJson(dumped);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue& root = parsed.value();

  const JsonValue* counters = root.Find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(counters->Find("roundtrip.counter"), nullptr);
  EXPECT_EQ(counters->Find("roundtrip.counter")->AsInt(), 123);

  const JsonValue* gauges = root.Find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_DOUBLE_EQ(gauges->Find("roundtrip.gauge")->AsDouble(), 0.125);

  const JsonValue* hists = root.Find("histograms");
  ASSERT_NE(hists, nullptr);
  const JsonValue* hist = hists->Find("roundtrip.hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->Find("count")->AsInt(), 100);
  EXPECT_GT(hist->Find("mean")->AsDouble(), 0.0);
}

TEST_F(ObsMetricsTest, RunReportRoundTripsWithDerivedSections) {
  MetricsRegistry& registry = MetricsRegistry::Default();
  registry.GetCounter("context.generated")->Increment(10);
  registry.GetCounter("context.local_nodes")->Increment(30);
  registry.GetCounter("context.global_nodes")->Increment(70);
  registry.GetCounter("negative_sampler.draws")->Increment(500);
  registry.GetCounter("negative_sampler.rejected")->Increment(25);

  RunReport report("train");
  report.SetConfig("dim", 50);
  report.AddPhase("corpus", 0.5);
  report.AddEpoch({0, -2.5, 0.005, 1000, 0.1, 10000.0});
  report.FinalizeFromRegistry(registry);

  Result<JsonValue> parsed = ParseJson(report.ToJson().Dump());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue& root = parsed.value();
  EXPECT_EQ(root.Find("schema_version")->AsInt(), 1);
  EXPECT_EQ(root.Find("command")->AsString(), "train");
  EXPECT_EQ(root.Find("config")->Find("dim")->AsInt(), 50);
  ASSERT_EQ(root.Find("epochs")->size(), 1u);
  EXPECT_EQ(root.Find("epochs")->items()[0].Find("pairs")->AsInt(), 1000);

  const JsonValue* context = root.Find("context");
  ASSERT_NE(context, nullptr);
  EXPECT_EQ(context->Find("local_nodes")->AsInt(), 30);
  EXPECT_DOUBLE_EQ(context->Find("local_fraction")->AsDouble(), 0.3);
  const JsonValue* sampler = root.Find("negative_sampler");
  ASSERT_NE(sampler, nullptr);
  EXPECT_EQ(sampler->Find("draws")->AsInt(), 500);
  ASSERT_NE(root.Find("metrics"), nullptr);
}

/// Tiny world for the pipeline-determinism checks.
synth::World TinyWorld(uint64_t seed) {
  synth::WorldProfile profile = synth::WorldProfile::DiggLike();
  profile.num_users = 200;
  profile.num_items = 30;
  profile.mean_out_degree = 5.0;
  Rng rng(seed);
  auto world = synth::GenerateWorld(profile, rng);
  EXPECT_TRUE(world.ok());
  return std::move(world).value();
}

TEST_F(ObsMetricsTest, CorpusCountersMatchBetweenSerialAndPooledBuilds) {
  const synth::World world = TinyWorld(11);
  ContextOptions opts;
  opts.length = 10;
  MetricsRegistry& registry = MetricsRegistry::Default();

  BuildInfluenceCorpus(world.graph, world.log, opts,
                       world.graph.num_users(), CorpusBuildOptions{.seed = 5});
  const uint64_t serial_contexts =
      registry.GetCounter("context.generated")->Value();
  const uint64_t serial_pairs = registry.GetCounter("corpus.pairs")->Value();
  EXPECT_GT(serial_contexts, 0u);

  registry.Reset();
  ThreadPool pool(3);
  BuildInfluenceCorpus(world.graph, world.log, opts, world.graph.num_users(),
                       CorpusBuildOptions{.seed = 5, .pool = &pool});
  // Deterministic counts: the pooled build visits the same episodes and
  // participants, so context/episode totals are identical to serial (pair
  // totals differ only through RNG-stream-dependent walk lengths).
  EXPECT_EQ(registry.GetCounter("context.generated")->Value(),
            serial_contexts);
  EXPECT_EQ(registry.GetCounter("corpus.episodes")->Value(),
            world.log.num_episodes());
  EXPECT_GT(registry.GetCounter("corpus.pairs")->Value(), 0u);
  (void)serial_pairs;
}

TEST_F(ObsMetricsTest, PairsTrainedIdenticalAcrossThreadCounts) {
  const synth::World world = TinyWorld(13);
  ContextOptions opts;
  opts.length = 8;
  const InfluenceCorpus corpus = BuildInfluenceCorpus(
      world.graph, world.log, opts, world.graph.num_users(),
      CorpusBuildOptions{.seed = 7});
  ASSERT_GT(corpus.pairs.size(), 0u);

  MetricsRegistry& registry = MetricsRegistry::Default();
  auto train = [&](uint32_t threads) {
    registry.Reset();
    Inf2vecConfig config;
    config.epochs = 2;
    config.num_threads = threads;
    auto model = Inf2vecModel::TrainFromCorpus(
        corpus, world.graph.num_users(), config, nullptr);
    EXPECT_TRUE(model.ok());
    return registry.GetCounter("sgd.pairs_trained")->Value();
  };

  const uint64_t serial = train(1);
  const uint64_t threaded = train(3);
  // Epoch-granularity counting is deterministic: every pair trains exactly
  // once per epoch regardless of sharding.
  EXPECT_EQ(serial, corpus.pairs.size() * 2);
  EXPECT_EQ(threaded, serial);
}

TEST_F(ObsMetricsTest, ThreadPoolObserverRecordsShardActivity) {
  InstallThreadPoolMetrics();
  MetricsRegistry& registry = MetricsRegistry::Default();
  registry.Reset();
  ThreadPool pool(3);
  std::atomic<uint64_t> sum{0};
  pool.ParallelFor(0, 1000, [&](uint32_t, size_t begin, size_t end) {
    sum.fetch_add(end - begin, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 1000u);
  EXPECT_EQ(registry.GetCounter("threadpool.jobs")->Value(), 1u);
  EXPECT_EQ(registry.GetCounter("threadpool.job_items")->Value(), 1000u);
  EXPECT_GT(registry.GetCounter("threadpool.shards")->Value(), 0u);
  UninstallThreadPoolMetrics();
}

}  // namespace
}  // namespace obs
}  // namespace inf2vec
