#include "embedding/sgd_trainer.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "util/sigmoid_table.h"

namespace inf2vec {
namespace {

/// Numerical gradient of the positive-only objective log sigma(Score(u,v))
/// with respect to one scalar parameter accessed through `get`/`set`.
double NumericalGradient(EmbeddingStore* store, UserId u, UserId v,
                         double* param) {
  constexpr double kH = 1e-6;
  const double saved = *param;
  *param = saved + kH;
  const double hi = std::log(SigmoidTable::Exact(store->Score(u, v)));
  *param = saved - kH;
  const double lo = std::log(SigmoidTable::Exact(store->Score(u, v)));
  *param = saved;
  return (hi - lo) / (2.0 * kH);
}

class SgdGradientTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store_ = std::make_unique<EmbeddingStore>(4, 3);
    Rng rng(11);
    store_->InitUniform(-0.5, 0.5, rng);
    store_->mutable_source_bias(0) = 0.3;
    store_->mutable_target_bias(1) = -0.2;
    sampler_ = std::make_unique<NegativeSampler>(
        NegativeSampler::CreateUniform(4));
  }

  std::unique_ptr<EmbeddingStore> store_;
  std::unique_ptr<NegativeSampler> sampler_;
};

TEST_F(SgdGradientTest, PositiveTermMatchesNumericalGradient) {
  SgdOptions opts;
  opts.learning_rate = 1e-4;  // Small enough that update ~ lr * gradient.
  opts.num_negatives = 0;     // Positive term only: deterministic.
  opts.use_sigmoid_table = false;
  SgdTrainer trainer(store_.get(), sampler_.get(), opts);

  const UserId u = 0;
  const UserId v = 1;
  EmbeddingStore before = *store_;

  // Numerical gradients at the pre-update point.
  std::vector<double> num_grad_s(3), num_grad_t(3);
  for (uint32_t k = 0; k < 3; ++k) {
    num_grad_s[k] =
        NumericalGradient(&before, u, v, &before.Source(u)[k]);
    num_grad_t[k] =
        NumericalGradient(&before, u, v, &before.Target(v)[k]);
  }
  const double num_grad_bu =
      NumericalGradient(&before, u, v, &before.mutable_source_bias(u));
  const double num_grad_bv =
      NumericalGradient(&before, u, v, &before.mutable_target_bias(v));

  Rng rng(1);
  trainer.TrainPair(u, v, rng);

  for (uint32_t k = 0; k < 3; ++k) {
    const double applied_s =
        (store_->Source(u)[k] - before.Source(u)[k]) / opts.learning_rate;
    EXPECT_NEAR(applied_s, num_grad_s[k], 1e-3) << "S_u[" << k << "]";
    const double applied_t =
        (store_->Target(v)[k] - before.Target(v)[k]) / opts.learning_rate;
    EXPECT_NEAR(applied_t, num_grad_t[k], 1e-3) << "T_v[" << k << "]";
  }
  EXPECT_NEAR(
      (store_->source_bias(u) - before.source_bias(u)) / opts.learning_rate,
      num_grad_bu, 1e-3);
  EXPECT_NEAR(
      (store_->target_bias(v) - before.target_bias(v)) / opts.learning_rate,
      num_grad_bv, 1e-3);
}

TEST_F(SgdGradientTest, NegativeUpdatePushesScoreDown) {
  SgdOptions opts;
  opts.learning_rate = 0.05;
  opts.num_negatives = 3;
  SgdTrainer trainer(store_.get(), sampler_.get(), opts);
  Rng rng(2);

  // Train (0 -> 1) heavily; scores of (0 -> other) should not blow up.
  const double before_01 = store_->Score(0, 1);
  for (int i = 0; i < 300; ++i) trainer.TrainPair(0, 1, rng);
  EXPECT_GT(store_->Score(0, 1), before_01);
}

TEST_F(SgdGradientTest, ObjectiveImprovesWithTraining) {
  SgdOptions opts;
  opts.learning_rate = 0.05;
  opts.num_negatives = 2;
  SgdTrainer trainer(store_.get(), sampler_.get(), opts);
  Rng rng(3);

  // Fixed evaluation set.
  const std::vector<UserId> negs = {2, 3};
  const double before = trainer.PairObjective(0, 1, negs);
  for (int i = 0; i < 200; ++i) trainer.TrainPair(0, 1, rng);
  const double after = trainer.PairObjective(0, 1, negs);
  EXPECT_GT(after, before);
}

TEST_F(SgdGradientTest, BiasesFrozenWhenDisabled) {
  SgdOptions opts;
  opts.learning_rate = 0.1;
  opts.num_negatives = 2;
  opts.use_biases = false;
  SgdTrainer trainer(store_.get(), sampler_.get(), opts);
  Rng rng(4);
  const double bu = store_->source_bias(0);
  const double bv = store_->target_bias(1);
  for (int i = 0; i < 50; ++i) trainer.TrainPair(0, 1, rng);
  EXPECT_DOUBLE_EQ(store_->source_bias(0), bu);
  EXPECT_DOUBLE_EQ(store_->target_bias(1), bv);
}

TEST_F(SgdGradientTest, TrainPairReturnsPreUpdateObjective) {
  SgdOptions opts;
  opts.learning_rate = 0.0;  // No movement: returned value is reproducible.
  opts.num_negatives = 0;
  opts.use_sigmoid_table = false;
  SgdTrainer trainer(store_.get(), sampler_.get(), opts);
  Rng rng(5);
  const double expected =
      std::log(SigmoidTable::Exact(store_->Score(0, 1)));
  EXPECT_NEAR(trainer.TrainPair(0, 1, rng), expected, 1e-12);
}

TEST_F(SgdGradientTest, SelfPairDoesNotCrash) {
  SgdOptions opts;
  SgdTrainer trainer(store_.get(), sampler_.get(), opts);
  Rng rng(6);
  trainer.TrainPair(2, 2, rng);  // Degenerate but must be safe.
  SUCCEED();
}

}  // namespace
}  // namespace inf2vec
