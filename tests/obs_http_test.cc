// Embedded stats-server tests, driven by the shared obs::HttpClient
// one-shot Fetch (no curl dependency): endpoint routing, the
// /metrics-equals-Scrape() exactness contract, opt-in isolation via a
// private registry, concurrent scrapes under writer load (the TSan
// target), and deterministic shutdown with port release.

#include "obs/http_server.h"

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/http_client.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "obs/run_status.h"

namespace inf2vec {
namespace obs {
namespace {

using ClientResponse = HttpClientResponse;

/// One request with Connection: close, read to EOF.
ClientResponse Fetch(uint16_t port, const std::string& target) {
  return HttpClient::Fetch(port, target, /*deadline_ms=*/5000);
}

TEST(StatsServerTest, ServesHealthzAndIndex) {
  MetricsRegistry registry;
  StatsServer server(StatsServerOptions{}, &registry);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);

  const ClientResponse health = Fetch(server.port(), "/healthz");
  EXPECT_EQ(health.status, 200);
  EXPECT_EQ(health.body, "ok\n");

  const ClientResponse index = Fetch(server.port(), "/");
  EXPECT_EQ(index.status, 200);
  EXPECT_NE(index.body.find("/metrics"), std::string::npos);

  server.Stop();
}

TEST(StatsServerTest, MetricsBodyEqualsScrapeExactly) {
  MetricsRegistry registry;
  registry.GetCounter("sgd.pairs_trained")->Increment(12345);
  registry.GetCounter("corpus.contexts")->Increment(7);
  registry.GetGauge("train.objective")->Set(-0.6931);
  registry.GetHistogram("walk.length", {1, 10, 100})->Record(42);

  StatsServer server(StatsServerOptions{}, &registry);
  ASSERT_TRUE(server.Start().ok());

  const ClientResponse metrics = Fetch(server.port(), "/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.headers.find("text/plain; version=0.0.4"),
            std::string::npos)
      << metrics.headers;
  // No writers are active, so the body must equal a render of Scrape()
  // byte for byte — the server's own transport counters (http.*) exist
  // in the registry but stay frozen at 0 here (metrics are disabled by
  // default), so both renders agree.
  EXPECT_EQ(metrics.body, RenderPrometheus(registry.Scrape()));

  server.Stop();
}

TEST(StatsServerTest, StatuszReflectsRunStatus) {
  RunStatus::Default().StartCommand("http-test");
  RunStatus::Default().SetPhase("sgd");
  RunStatus::Default().UpdateEpoch(/*epoch=*/2, /*total_epochs=*/10,
                                   /*objective=*/-0.5,
                                   /*pairs_per_second=*/1e6,
                                   /*seconds=*/0.25);

  MetricsRegistry registry;
  StatsServer server(StatsServerOptions{}, &registry);
  ASSERT_TRUE(server.Start().ok());
  const ClientResponse statusz = Fetch(server.port(), "/statusz");
  server.Stop();

  EXPECT_EQ(statusz.status, 200);
  Result<JsonValue> doc = ParseJson(statusz.body);
  ASSERT_TRUE(doc.ok()) << statusz.body;
  EXPECT_EQ(doc.value().Find("command")->AsString(), "http-test");
  EXPECT_EQ(doc.value().Find("phase")->AsString(), "sgd");
  EXPECT_EQ(doc.value().Find("epoch")->AsInt(), 3);  // 1-based done count.
  EXPECT_EQ(doc.value().Find("total_epochs")->AsInt(), 10);
}

TEST(StatsServerTest, VarzCarriesBuildProvenance) {
  MetricsRegistry registry;
  StatsServer server(StatsServerOptions{}, &registry);
  ASSERT_TRUE(server.Start().ok());
  const ClientResponse varz = Fetch(server.port(), "/varz");
  server.Stop();

  EXPECT_EQ(varz.status, 200);
  Result<JsonValue> doc = ParseJson(varz.body);
  ASSERT_TRUE(doc.ok()) << varz.body;
  ASSERT_NE(doc.value().Find("build"), nullptr);
  EXPECT_FALSE(doc.value().Find("build")->Find("git_sha")->AsString()
                   .empty());
  EXPECT_GT(doc.value().Find("peak_rss_bytes")->AsInt(), 0);
}

TEST(StatsServerTest, UnknownPathIs404) {
  MetricsRegistry registry;
  StatsServer server(StatsServerOptions{}, &registry);
  ASSERT_TRUE(server.Start().ok());

  EXPECT_EQ(Fetch(server.port(), "/does-not-exist").status, 404);
  EXPECT_EQ(Fetch(server.port(), "/metrics/deeper").status, 404);

  server.Stop();
}

TEST(StatsServerTest, ConcurrentScrapesUnderWriterLoadStayExact) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("load.increments");
  StatsServer server(StatsServerOptions{}, &registry);
  ASSERT_TRUE(server.Start().ok());

  constexpr uint64_t kIncrements = 20000;
  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (uint64_t i = 0; i < kIncrements; ++i) counter->Increment();
    done.store(true, std::memory_order_release);
  });

  // Scrape over HTTP while the writer hammers the counter; collect the
  // responses and assert only after the writer is joined (an ASSERT while
  // the thread is joinable would terminate the process).
  std::vector<ClientResponse> scrapes;
  int fetches = 0;
  while (!done.load(std::memory_order_acquire) || fetches < 3) {
    scrapes.push_back(Fetch(server.port(), "/metrics"));
    ++fetches;
  }
  writer.join();

  uint64_t last = 0;
  // Newline-anchored so the "# TYPE ... counter" line does not match.
  const std::string needle = "\ninf2vec_load_increments_total ";
  for (const ClientResponse& metrics : scrapes) {
    ASSERT_EQ(metrics.status, 200) << metrics.headers;
    const size_t pos = metrics.body.find(needle);
    ASSERT_NE(pos, std::string::npos) << metrics.body;
    const uint64_t value =
        std::stoull(metrics.body.substr(pos + needle.size()));
    // Every observed value is a plausible point in a monotone series.
    EXPECT_GE(value, last);
    EXPECT_LE(value, kIncrements);
    last = value;
  }

  // Quiescent again: exact equality with a direct Scrape.
  const ClientResponse final_metrics = Fetch(server.port(), "/metrics");
  EXPECT_EQ(final_metrics.body, RenderPrometheus(registry.Scrape()));
  EXPECT_NE(final_metrics.body.find("inf2vec_load_increments_total 20000"),
            std::string::npos);

  server.Stop();
}

TEST(StatsServerTest, StopJoinsThreadAndReleasesPort) {
  MetricsRegistry registry;
  StatsServer server(StatsServerOptions{}, &registry);
  ASSERT_TRUE(server.Start().ok());
  const uint16_t port = server.port();
  ASSERT_GT(port, 0);
  server.Stop();
  EXPECT_FALSE(server.running());
  server.Stop();  // Idempotent.

  // The strongest portable proof the port was released: bind it again.
  StatsServer second(StatsServerOptions{port, "127.0.0.1"}, &registry);
  ASSERT_TRUE(second.Start().ok());
  EXPECT_EQ(second.port(), port);
  EXPECT_EQ(Fetch(second.port(), "/healthz").status, 200);
  second.Stop();
}

TEST(StatsServerTest, StartFailsCleanlyOnTakenPort) {
  MetricsRegistry registry;
  StatsServer first(StatsServerOptions{}, &registry);
  ASSERT_TRUE(first.Start().ok());

  StatsServer second(StatsServerOptions{first.port(), "127.0.0.1"},
                     &registry);
  EXPECT_FALSE(second.Start().ok());
  EXPECT_FALSE(second.running());

  // The failed server must not have disturbed the running one.
  EXPECT_EQ(Fetch(first.port(), "/healthz").status, 200);
  first.Stop();
}

TEST(StatsServerTest, DestructorStopsRunningServer) {
  MetricsRegistry registry;
  uint16_t port = 0;
  {
    StatsServer server(StatsServerOptions{}, &registry);
    ASSERT_TRUE(server.Start().ok());
    port = server.port();
  }
  // Out of scope: port must be free again.
  StatsServer next(StatsServerOptions{port, "127.0.0.1"}, &registry);
  EXPECT_TRUE(next.Start().ok());
  next.Stop();
}

// Regression: a query string must not break routing — /metrics?foo=1 is
// /metrics, not a 404.
TEST(StatsServerTest, QueryStringIsStrippedBeforeDispatch) {
  MetricsRegistry registry;
  registry.GetCounter("q.counter")->Increment(3);
  StatsServer server(StatsServerOptions{}, &registry);
  ASSERT_TRUE(server.Start().ok());

  const ClientResponse plain = Fetch(server.port(), "/metrics");
  const ClientResponse with_query = Fetch(server.port(), "/metrics?foo=1");
  EXPECT_EQ(with_query.status, 200);
  EXPECT_EQ(with_query.body, plain.body);
  EXPECT_EQ(Fetch(server.port(), "/healthz?probe=lb&x=%20y").status, 200);

  server.Stop();
}

TEST(StatsServerTest, CustomHandlerSeesDecodedQueryParameters) {
  MetricsRegistry registry;
  StatsServer server(StatsServerOptions{}, &registry);
  server.Route("GET", "/echo", [](const HttpRequest& request) {
    std::string body = request.path;
    for (const auto& [key, value] : request.query) {
      body += "|" + key + "=" + value;
    }
    return HttpResponse::Text(200, body);
  });
  ASSERT_TRUE(server.Start().ok());

  const ClientResponse got =
      Fetch(server.port(), "/echo?a=1&msg=hello%20world&flag");
  EXPECT_EQ(got.status, 200);
  EXPECT_EQ(got.body, "/echo|a=1|msg=hello world|flag=");

  // Registered handlers appear on the index page.
  const ClientResponse index = Fetch(server.port(), "/");
  EXPECT_NE(index.body.find("/echo"), std::string::npos);

  server.Stop();
}

TEST(StatsServerTest, HandlerStatusCodesPassThrough) {
  MetricsRegistry registry;
  StatsServer server(StatsServerOptions{}, &registry);
  server.Route("GET", "/teapot", [](const HttpRequest&) {
    return HttpResponse::Json(400, "{\"error\":\"bad\"}");
  });
  ASSERT_TRUE(server.Start().ok());
  const ClientResponse got = Fetch(server.port(), "/teapot");
  EXPECT_EQ(got.status, 400);
  EXPECT_EQ(got.body, "{\"error\":\"bad\"}");
  EXPECT_NE(got.headers.find("application/json"), std::string::npos);
  server.Stop();
}

TEST(UrlDecodeTest, DecodesPercentEscapesAndPlus) {
  EXPECT_EQ(UrlDecode("hello%20world"), "hello world");
  EXPECT_EQ(UrlDecode("a+b"), "a b");
  EXPECT_EQ(UrlDecode("%2Fpath%3Fx%3D1"), "/path?x=1");
  EXPECT_EQ(UrlDecode("plain"), "plain");
  // Malformed escapes pass through untouched.
  EXPECT_EQ(UrlDecode("bad%zz"), "bad%zz");
  EXPECT_EQ(UrlDecode("trunc%2"), "trunc%2");
}

TEST(ParseQueryStringTest, SplitsPairsAndDecodes) {
  const auto pairs = ParseQueryString("a=1&b=two%20words&c&=orphan&d=");
  ASSERT_EQ(pairs.size(), 5u);
  EXPECT_EQ(pairs[0], (std::pair<std::string, std::string>{"a", "1"}));
  EXPECT_EQ(pairs[1],
            (std::pair<std::string, std::string>{"b", "two words"}));
  EXPECT_EQ(pairs[2], (std::pair<std::string, std::string>{"c", ""}));
  EXPECT_EQ(pairs[3], (std::pair<std::string, std::string>{"", "orphan"}));
  EXPECT_EQ(pairs[4], (std::pair<std::string, std::string>{"d", ""}));
  EXPECT_TRUE(ParseQueryString("").empty());
}

TEST(HttpRequestTest, QueryAccessors) {
  HttpRequest request;
  request.query = {{"k", "10"}, {"k", "20"}, {"empty", ""}};
  EXPECT_TRUE(request.HasQuery("k"));
  EXPECT_FALSE(request.HasQuery("missing"));
  EXPECT_EQ(request.QueryOr("k", "0"), "10");  // First occurrence wins.
  EXPECT_EQ(request.QueryOr("missing", "fallback"), "fallback");
  EXPECT_EQ(request.QueryOr("empty", "fallback"), "");
}

}  // namespace
}  // namespace obs
}  // namespace inf2vec
