#include <algorithm>
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/embedding_predictor.h"
#include "embedding/model_io.h"
#include "obs/metrics.h"
#include "serve/influence_service.h"
#include "serve/seed_cache.h"
#include "serve/serve_endpoints.h"
#include "util/rng.h"

namespace inf2vec {
namespace serve {
namespace {

/// Fixed-seed random store; every test sees identical parameters.
EmbeddingStore MakeStore(uint32_t num_users, uint32_t dim, uint64_t seed) {
  EmbeddingStore store(num_users, dim);
  Rng rng(seed);
  store.InitUniform(-0.5, 0.5, rng);
  for (UserId u = 0; u < num_users; ++u) {
    store.mutable_source_bias(u) = rng.UniformDouble(-0.2, 0.2);
    store.mutable_target_bias(u) = rng.UniformDouble(-0.2, 0.2);
  }
  return store;
}

InfluenceService MakeService(uint32_t num_users, uint32_t dim,
                             ServiceOptions options = {}) {
  ModelArtifact artifact;
  artifact.store = MakeStore(num_users, dim, 17);
  artifact.metadata.aggregation = "Ave";
  artifact.metadata.dim = dim;
  Result<InfluenceService> service =
      InfluenceService::FromArtifact(std::move(artifact), std::move(options));
  EXPECT_TRUE(service.ok()) << service.status().ToString();
  return std::move(service).value();
}

TEST(InfluenceServiceTest, ScoreMatchesEmbeddingPredictorBitForBit) {
  const InfluenceService service = MakeService(64, 12);
  const EmbeddingPredictor predictor("ref", &service.store(),
                                     Aggregation::kAve);
  const std::vector<UserId> seeds = {3, 41, 7, 22};
  for (UserId candidate : {0u, 9u, 31u, 63u}) {
    ScoreRequest request;
    request.candidate = candidate;
    request.seeds = seeds;
    const Result<ScoreResult> got = service.ScoreActivation(request);
    ASSERT_TRUE(got.ok());
    // Bit-identical, not approximately equal: the serving path must do the
    // same in-order arithmetic as the evaluation path.
    EXPECT_EQ(got.value().score,
              predictor.ScoreActivation(candidate, seeds));
  }
}

TEST(InfluenceServiceTest, ScoreHonorsPerRequestAggregation) {
  const InfluenceService service = MakeService(32, 8);
  const std::vector<UserId> seeds = {1, 2, 3};
  for (Aggregation aggregation :
       {Aggregation::kAve, Aggregation::kSum, Aggregation::kMax,
        Aggregation::kLatest}) {
    const EmbeddingPredictor predictor("ref", &service.store(), aggregation);
    ScoreRequest request;
    request.candidate = 20;
    request.seeds = seeds;
    request.aggregation = aggregation;
    const Result<ScoreResult> got = service.ScoreActivation(request);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.value().score, predictor.ScoreActivation(20, seeds));
  }
}

TEST(InfluenceServiceTest, TopKMatchesBruteForceRankingExactly) {
  const InfluenceService service = MakeService(200, 10);
  const EmbeddingPredictor predictor("ref", &service.store(),
                                     Aggregation::kAve);
  const std::vector<UserId> seeds = {5, 99, 150};
  const uint32_t k = 17;

  // Brute force: score everyone, sort by (score desc, id asc).
  std::vector<TopKEntry> expected;
  for (UserId v = 0; v < service.store().num_users(); ++v) {
    if (std::find(seeds.begin(), seeds.end(), v) != seeds.end()) continue;
    expected.push_back({v, predictor.ScoreActivation(v, seeds)});
  }
  std::sort(expected.begin(), expected.end(),
            [](const TopKEntry& a, const TopKEntry& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.user < b.user;
            });
  expected.resize(k);

  TopKRequest request;
  request.seeds = seeds;
  request.k = k;
  const Result<TopKResult> got = service.TopK(request);
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got.value().entries.size(), k);
  EXPECT_EQ(got.value().scanned, service.store().num_users() - seeds.size());
  for (uint32_t i = 0; i < k; ++i) {
    EXPECT_EQ(got.value().entries[i].user, expected[i].user) << "rank " << i;
    // Bit-identical scores (same arithmetic as EmbeddingStore::Score).
    EXPECT_EQ(got.value().entries[i].score, expected[i].score);
  }
}

TEST(InfluenceServiceTest, TopKTieBreaksByAscendingUserId) {
  // All-zero store: every candidate scores identically, so the top-k must
  // be exactly the k lowest non-seed ids.
  ModelArtifact artifact;
  artifact.store = EmbeddingStore(20, 4);
  Result<InfluenceService> service =
      InfluenceService::FromArtifact(std::move(artifact), {});
  ASSERT_TRUE(service.ok());
  TopKRequest request;
  request.seeds = {0, 2};
  request.k = 5;
  const Result<TopKResult> got = service.value().TopK(request);
  ASSERT_TRUE(got.ok());
  const std::vector<UserId> want = {1, 3, 4, 5, 6};
  ASSERT_EQ(got.value().entries.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got.value().entries[i].user, want[i]);
  }
}

TEST(InfluenceServiceTest, TopKIncludeSeedsScansEveryone) {
  const InfluenceService service = MakeService(50, 6);
  TopKRequest request;
  request.seeds = {1, 2};
  request.k = 50;
  request.include_seeds = true;
  const Result<TopKResult> got = service.TopK(request);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().scanned, 50u);
  EXPECT_EQ(got.value().entries.size(), 50u);
}

TEST(InfluenceServiceTest, UnknownUsersReturnNotFound) {
  const InfluenceService service = MakeService(16, 4);
  ScoreRequest bad_candidate;
  bad_candidate.candidate = 16;  // One past the end.
  bad_candidate.seeds = {1};
  EXPECT_EQ(service.ScoreActivation(bad_candidate).status().code(),
            StatusCode::kNotFound);

  ScoreRequest bad_seed;
  bad_seed.candidate = 1;
  bad_seed.seeds = {2, 999};
  EXPECT_EQ(service.ScoreActivation(bad_seed).status().code(),
            StatusCode::kNotFound);

  TopKRequest bad_topk;
  bad_topk.seeds = {999};
  EXPECT_EQ(service.TopK(bad_topk).status().code(), StatusCode::kNotFound);
}

TEST(InfluenceServiceTest, EmptyAndOversizedRequestsAreInvalid) {
  ServiceOptions options;
  options.max_seeds = 4;
  options.max_k = 8;
  options.max_batch = 2;
  const InfluenceService service = MakeService(16, 4, std::move(options));

  ScoreRequest empty;
  empty.candidate = 1;
  EXPECT_EQ(service.ScoreActivation(empty).status().code(),
            StatusCode::kInvalidArgument);

  ScoreRequest oversized;
  oversized.candidate = 1;
  oversized.seeds = {1, 2, 3, 4, 5};
  EXPECT_EQ(service.ScoreActivation(oversized).status().code(),
            StatusCode::kInvalidArgument);

  TopKRequest big_k;
  big_k.seeds = {1};
  big_k.k = 9;
  EXPECT_EQ(service.TopK(big_k).status().code(),
            StatusCode::kInvalidArgument);

  TopKRequest zero_k;
  zero_k.seeds = {1};
  zero_k.k = 0;
  EXPECT_EQ(service.TopK(zero_k).status().code(),
            StatusCode::kInvalidArgument);

  BatchScoreRequest empty_batch;
  EXPECT_EQ(service.ScoreBatch(empty_batch).status().code(),
            StatusCode::kInvalidArgument);

  BatchScoreRequest big_batch;
  big_batch.items.resize(3, BatchItem{1, {2}});
  EXPECT_EQ(service.ScoreBatch(big_batch).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(InfluenceServiceTest, DeadlineExceededIsDeterministicWithFakeClock) {
  // The fake clock advances 1000us per reading, so a 500us budget is
  // always blown by the first post-gather deadline check.
  ServiceOptions options;
  auto now = std::make_shared<uint64_t>(0);
  options.clock_us = [now]() { return *now += 1000; };
  const InfluenceService service = MakeService(64, 4, std::move(options));

  ScoreRequest request;
  request.candidate = 1;
  request.seeds = {2, 3};
  request.deadline_us = 500;
  const Result<ScoreResult> score = service.ScoreActivation(request);
  EXPECT_EQ(score.status().code(), StatusCode::kDeadlineExceeded);

  TopKRequest topk;
  topk.seeds = {2, 3};
  topk.deadline_us = 500;
  EXPECT_EQ(service.TopK(topk).status().code(),
            StatusCode::kDeadlineExceeded);

  BatchScoreRequest batch;
  batch.items.push_back({1, {2}});
  batch.deadline_us = 500;
  EXPECT_EQ(service.ScoreBatch(batch).status().code(),
            StatusCode::kDeadlineExceeded);

  // A generous budget against the same clock succeeds.
  ScoreRequest relaxed = request;
  relaxed.deadline_us = 1000000;
  EXPECT_TRUE(service.ScoreActivation(relaxed).ok());
}

TEST(InfluenceServiceTest, SeedCacheHitsOnRepeatAndRespectsOrder) {
  const InfluenceService service = MakeService(32, 8);
  ScoreRequest request;
  request.candidate = 4;
  request.seeds = {1, 2, 3};

  const Result<ScoreResult> first = service.ScoreActivation(request);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first.value().cache_hit);
  const Result<ScoreResult> second = service.ScoreActivation(request);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.value().cache_hit);
  EXPECT_EQ(first.value().score, second.value().score);

  // A different ordering is a distinct key (Latest is order-sensitive).
  ScoreRequest reordered = request;
  reordered.seeds = {3, 2, 1};
  const Result<ScoreResult> third = service.ScoreActivation(reordered);
  ASSERT_TRUE(third.ok());
  EXPECT_FALSE(third.value().cache_hit);

  EXPECT_EQ(service.seed_cache().hits(), 1u);
  EXPECT_EQ(service.seed_cache().misses(), 2u);
}

TEST(InfluenceServiceTest, DisabledCacheNeverHits) {
  ServiceOptions options;
  options.seed_cache_capacity = 0;
  const InfluenceService service = MakeService(32, 8, std::move(options));
  ScoreRequest request;
  request.candidate = 4;
  request.seeds = {1, 2, 3};
  ASSERT_TRUE(service.ScoreActivation(request).ok());
  const Result<ScoreResult> again = service.ScoreActivation(request);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again.value().cache_hit);
  EXPECT_EQ(service.seed_cache().size(), 0u);
}

TEST(SeedBlockCacheTest, EvictsLeastRecentlyUsed) {
  const EmbeddingStore store = MakeStore(16, 4, 3);
  SeedBlockCache cache(2);
  cache.Get(store, {1}, nullptr);
  cache.Get(store, {2}, nullptr);
  cache.Get(store, {1}, nullptr);  // Refresh {1}; {2} is now LRU.
  cache.Get(store, {3}, nullptr);  // Evicts {2}.
  bool hit = false;
  cache.Get(store, {1}, &hit);
  EXPECT_TRUE(hit);
  cache.Get(store, {2}, &hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(SeedBlockCacheTest, GatheredRowsMatchStoreBitForBit) {
  const EmbeddingStore store = MakeStore(8, 4, 9);
  const SeedBlock block = GatherSeedBlock(store, {5, 1});
  ASSERT_EQ(block.num_seeds(), 2u);
  EXPECT_EQ(block.seeds, (std::vector<UserId>{5, 1}));
  for (uint32_t k = 0; k < 4; ++k) {
    EXPECT_EQ(block.source_row(0)[k], store.Source(5)[k]);
    EXPECT_EQ(block.source_row(1)[k], store.Source(1)[k]);
  }
  EXPECT_EQ(block.source_biases[0], store.source_bias(5));
  EXPECT_EQ(block.source_biases[1], store.source_bias(1));
}

TEST(InfluenceServiceTest, BatchMatchesSingleQueryScores) {
  for (uint32_t threads : {1u, 3u}) {
    ServiceOptions options;
    options.num_threads = threads;
    const InfluenceService service = MakeService(64, 8, std::move(options));

    BatchScoreRequest batch;
    for (UserId candidate = 0; candidate < 40; ++candidate) {
      batch.items.push_back(
          {candidate, {candidate % 7, 20 + candidate % 5}});
    }
    const Result<BatchScoreResult> got = service.ScoreBatch(batch);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_EQ(got.value().scores.size(), batch.items.size());

    for (size_t i = 0; i < batch.items.size(); ++i) {
      ScoreRequest single;
      single.candidate = batch.items[i].candidate;
      single.seeds = batch.items[i].seeds;
      const Result<ScoreResult> expected = service.ScoreActivation(single);
      ASSERT_TRUE(expected.ok());
      EXPECT_EQ(got.value().scores[i], expected.value().score)
          << "item " << i << " threads " << threads;
    }
  }
}

TEST(InfluenceServiceTest, ConcurrentReadersAgreeAndSurviveTsan) {
  ServiceOptions options;
  options.num_threads = 2;
  const InfluenceService service = MakeService(128, 8, std::move(options));

  ScoreRequest score_request;
  score_request.candidate = 7;
  score_request.seeds = {1, 2, 3};
  const Result<ScoreResult> score_ref =
      service.ScoreActivation(score_request);
  ASSERT_TRUE(score_ref.ok());

  TopKRequest topk_request;
  topk_request.seeds = {1, 2, 3};
  topk_request.k = 5;
  const Result<TopKResult> topk_ref = service.TopK(topk_request);
  ASSERT_TRUE(topk_ref.ok());

  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t]() {
      for (int i = 0; i < 50; ++i) {
        if (t % 2 == 0) {
          const Result<ScoreResult> got =
              service.ScoreActivation(score_request);
          if (!got.ok() || got.value().score != score_ref.value().score) {
            failures.fetch_add(1);
          }
        } else {
          const Result<TopKResult> got = service.TopK(topk_request);
          if (!got.ok() ||
              got.value().entries.size() !=
                  topk_ref.value().entries.size() ||
              got.value().entries[0].user !=
                  topk_ref.value().entries[0].user) {
            failures.fetch_add(1);
          }
        }
        // Interleave batch calls to exercise the pool serialization.
        if (i % 10 == 0) {
          BatchScoreRequest batch;
          batch.items.push_back({static_cast<UserId>(t), {1, 2}});
          batch.items.push_back({static_cast<UserId>(t + 10), {3}});
          if (!service.ScoreBatch(batch).ok()) failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& reader : readers) reader.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(InfluenceServiceTest, LoadRoundTripsArtifactMetadata) {
  const std::string path = ::testing::TempDir() + "/serve_roundtrip.bin";
  const EmbeddingStore store = MakeStore(24, 6, 5);
  ModelMetadata metadata;
  metadata.aggregation = "Max";
  metadata.dim = 6;
  metadata.seed = 5;
  metadata.git_sha = "abc123";
  ASSERT_TRUE(SaveModelArtifact(store, metadata, path).ok());

  Result<InfluenceService> service = InfluenceService::Load(path, {});
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  // The artifact's aggregation drives scoring unless options override it.
  EXPECT_EQ(service.value().default_aggregation(), Aggregation::kMax);
  EXPECT_EQ(service.value().metadata().git_sha, "abc123");
  EXPECT_EQ(service.value().store().num_users(), 24u);
  service.value().Warm();
  std::remove(path.c_str());
}

TEST(InfluenceServiceTest, DescribeJsonCarriesModelAndCacheSections) {
  const InfluenceService service = MakeService(16, 4);
  const obs::JsonValue json = service.DescribeJson();
  ASSERT_NE(json.Find("model"), nullptr);
  ASSERT_NE(json.Find("serving"), nullptr);
  ASSERT_NE(json.Find("seed_cache"), nullptr);
  EXPECT_EQ(json.Find("num_users")->AsInt(), 16);
  EXPECT_EQ(json.Find("aggregation")->AsString(), "Ave");
}

TEST(ServeEndpointsTest, HttpCodeMappingCoversTheStatusVocabulary) {
  EXPECT_EQ(HttpCodeFor(Status::OK()), 200);
  EXPECT_EQ(HttpCodeFor(Status::InvalidArgument("x")), 400);
  EXPECT_EQ(HttpCodeFor(Status::NotFound("x")), 404);
  EXPECT_EQ(HttpCodeFor(Status::DeadlineExceeded("x")), 504);
  EXPECT_EQ(HttpCodeFor(Status::Internal("x")), 500);
  EXPECT_EQ(HttpCodeFor(Status::IOError("x")), 500);
}

TEST(InfluenceServiceTest, ServeMetricsAreRecordedWhenEnabled) {
  obs::MetricsRegistry::Default().Reset();
  obs::EnableMetrics(true);
  const InfluenceService service = MakeService(32, 4);
  ScoreRequest request;
  request.candidate = 1;
  request.seeds = {2, 3};
  ASSERT_TRUE(service.ScoreActivation(request).ok());
  ASSERT_TRUE(service.ScoreActivation(request).ok());
  ScoreRequest bad = request;
  bad.candidate = 999;
  ASSERT_FALSE(service.ScoreActivation(bad).ok());

  const obs::MetricsRegistry::Snapshot snapshot =
      obs::MetricsRegistry::Default().Scrape();
  EXPECT_EQ(snapshot.CounterOr0("serve.score.requests"), 3u);
  EXPECT_EQ(snapshot.CounterOr0("serve.errors"), 1u);
  EXPECT_EQ(snapshot.CounterOr0("serve.seed_cache.hits"), 1u);
  EXPECT_EQ(snapshot.CounterOr0("serve.seed_cache.misses"), 1u);
  const Histogram* latency =
      snapshot.FindHistogram("serve.score.latency_us");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->total_count(), 2u);
  obs::EnableMetrics(false);
  obs::MetricsRegistry::Default().Reset();
}

}  // namespace
}  // namespace serve
}  // namespace inf2vec
