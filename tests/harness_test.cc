#include "eval/harness.h"

#include <gtest/gtest.h>

namespace inf2vec {
namespace {

RankingMetrics Metrics(double auc, double map) {
  RankingMetrics m;
  m.auc = auc;
  m.map = map;
  m.p10 = 0.1;
  m.p50 = 0.05;
  m.p100 = 0.025;
  return m;
}

TEST(ResultTableTest, RendersTitleHeaderAndRows) {
  ResultTable table("Activation prediction on digg-like");
  table.AddRow("DE", Metrics(0.41, 0.017));
  table.AddRow("Inf2vec", Metrics(0.89, 0.274));
  const std::string out = table.ToString();
  EXPECT_NE(out.find("Activation prediction on digg-like"), std::string::npos);
  EXPECT_NE(out.find("Method"), std::string::npos);
  EXPECT_NE(out.find("AUC"), std::string::npos);
  EXPECT_NE(out.find("P@100"), std::string::npos);
  EXPECT_NE(out.find("DE"), std::string::npos);
  EXPECT_NE(out.find("0.4100"), std::string::npos);
  EXPECT_NE(out.find("Inf2vec"), std::string::npos);
  EXPECT_NE(out.find("0.8900"), std::string::npos);
}

TEST(ResultTableTest, StdevRowsParenthesized) {
  ResultTable table("t");
  MetricsSummary summary;
  summary.mean = Metrics(0.8, 0.2);
  summary.stdev = Metrics(0.001, 0.002);
  summary.runs = 10;
  table.AddRowWithStdev("Inf2vec", summary);
  const std::string out = table.ToString();
  EXPECT_NE(out.find("(stdev)"), std::string::npos);
  EXPECT_NE(out.find("(0.0010)"), std::string::npos);
}

TEST(ResultTableTest, EmptyTableStillRendersHeader) {
  ResultTable table("empty");
  const std::string out = table.ToString();
  EXPECT_NE(out.find("Method"), std::string::npos);
}

}  // namespace
}  // namespace inf2vec
