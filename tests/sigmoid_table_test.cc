#include "util/sigmoid_table.h"

#include <cmath>

#include <gtest/gtest.h>

namespace inf2vec {
namespace {

TEST(SigmoidTableTest, ExactMatchesClosedForm) {
  EXPECT_DOUBLE_EQ(SigmoidTable::Exact(0.0), 0.5);
  EXPECT_NEAR(SigmoidTable::Exact(2.0), 1.0 / (1.0 + std::exp(-2.0)), 1e-15);
  EXPECT_NEAR(SigmoidTable::Exact(-2.0), 1.0 / (1.0 + std::exp(2.0)), 1e-15);
}

TEST(SigmoidTableTest, TableApproximatesExactWithinTolerance) {
  const SigmoidTable& table = GlobalSigmoidTable();
  for (double z = -7.9; z <= 7.9; z += 0.013) {
    EXPECT_NEAR(table.Sigmoid(z), SigmoidTable::Exact(z), 5e-3)
        << "at z=" << z;
  }
}

TEST(SigmoidTableTest, ClampsOutsideRange) {
  const SigmoidTable& table = GlobalSigmoidTable();
  EXPECT_GT(table.Sigmoid(100.0), 0.999);
  EXPECT_LT(table.Sigmoid(-100.0), 0.001);
  EXPECT_GT(table.Sigmoid(100.0), table.Sigmoid(7.9));
}

TEST(SigmoidTableTest, MonotoneNonDecreasing) {
  const SigmoidTable& table = GlobalSigmoidTable();
  double prev = 0.0;
  for (double z = -10.0; z <= 10.0; z += 0.05) {
    const double s = table.Sigmoid(z);
    EXPECT_GE(s, prev) << "at z=" << z;
    prev = s;
  }
}

TEST(SigmoidTableTest, SymmetryAroundZero) {
  const SigmoidTable& table = GlobalSigmoidTable();
  for (double z = 0.1; z < 8.0; z += 0.7) {
    EXPECT_NEAR(table.Sigmoid(z) + table.Sigmoid(-z), 1.0, 1e-2);
  }
}

TEST(SigmoidTableTest, GlobalInstanceIsStable) {
  const SigmoidTable& a = GlobalSigmoidTable();
  const SigmoidTable& b = GlobalSigmoidTable();
  EXPECT_EQ(&a, &b);
}

}  // namespace
}  // namespace inf2vec
