#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace inf2vec {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.NextU64() == b.NextU64() ? 1 : 0;
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformU64RespectsBound) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.UniformU64(bound), bound);
  }
}

TEST(RngTest, UniformU64CoversRange) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.UniformU64(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, UniformU64IsRoughlyUniform) {
  Rng rng(17);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.UniformU64(kBuckets)];
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (int c : counts) {
    EXPECT_NEAR(c, expected, 0.05 * expected);
  }
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(23);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 3000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(31);
  double min = 1.0;
  double max = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    min = std::min(min, v);
    max = std::max(max, v);
  }
  EXPECT_LT(min, 0.01);
  EXPECT_GT(max, 0.99);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(37);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-0.5));
    EXPECT_TRUE(rng.Bernoulli(1.5));
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(41);
  int hits = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(43);
  constexpr int kDraws = 60000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sum_sq += g * g;
  }
  const double mean = sum / kDraws;
  const double var = sum_sq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(47);
  std::vector<int> items(100);
  for (int i = 0; i < 100; ++i) items[i] = i;
  std::vector<int> shuffled = items;
  rng.Shuffle(shuffled);
  EXPECT_NE(shuffled, items);  // Overwhelmingly likely.
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

TEST(RngTest, SampleWithoutReplacementSizesAndUniqueness) {
  Rng rng(53);
  std::vector<int> items(50);
  for (int i = 0; i < 50; ++i) items[i] = i;

  const std::vector<int> sample = rng.SampleWithoutReplacement(items, 20);
  EXPECT_EQ(sample.size(), 20u);
  std::set<int> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);

  const std::vector<int> all = rng.SampleWithoutReplacement(items, 100);
  EXPECT_EQ(all.size(), 50u);
}

TEST(RngTest, SampleWithoutReplacementIsUnbiased) {
  // Every item should appear in a size-1 sample with roughly equal rate.
  Rng rng(59);
  std::vector<int> items = {0, 1, 2, 3, 4};
  std::vector<int> counts(5, 0);
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.SampleWithoutReplacement(items, 1)[0]];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / 5.0, 0.08 * kDraws / 5.0);
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(61);
  Rng child = parent.Fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += parent.NextU64() == child.NextU64() ? 1 : 0;
  }
  EXPECT_LT(same, 3);
}

}  // namespace
}  // namespace inf2vec
