#include "eval/topic_eval.h"

#include <gtest/gtest.h>

#include "eval/activation_task.h"
#include "synth/world_generator.h"

namespace inf2vec {
namespace {

struct Fixture {
  Fixture() {
    synth::WorldProfile profile = synth::WorldProfile::DiggLike();
    profile.num_users = 300;
    profile.num_items = 80;
    Rng rng(21);
    world = std::move(synth::GenerateWorld(profile, rng)).value();
    Rng split_rng(22);
    split = SplitLog(world.log, 0.8, 0.0, split_rng);

    TopicInf2vecConfig config;
    config.base.dim = 10;
    config.base.epochs = 2;
    config.base.context.length = 8;
    config.clustering.num_clusters = 4;
    model = std::make_unique<TopicInf2vecModel>(
        std::move(TopicInf2vecModel::Train(world.graph, split.train, config))
            .value());
  }
  synth::World world{};
  LogSplit split;
  std::unique_ptr<TopicInf2vecModel> model;
};

TEST(TopicEvalTest, EmptyTestLogYieldsNoQueries) {
  Fixture f;
  ActionLog empty;
  const RankingMetrics m =
      EvaluateActivationTopicAware(*f.model, f.world.graph, empty);
  EXPECT_EQ(m.num_queries, 0u);
}

TEST(TopicEvalTest, QueryCountMatchesPlainEvaluation) {
  Fixture f;
  const RankingMetrics topical =
      EvaluateActivationTopicAware(*f.model, f.world.graph, f.split.test);
  const RankingMetrics plain = EvaluateActivation(
      f.model->global_model().Predictor(), f.world.graph, f.split.test);
  // Same protocol -> same usable episodes.
  EXPECT_EQ(topical.num_queries, plain.num_queries);
}

TEST(TopicEvalTest, ZeroTopicWeightReproducesGlobalScores) {
  Fixture f;
  TopicInf2vecConfig config;
  config.base.dim = 10;
  config.base.epochs = 2;
  config.base.context.length = 8;
  config.clustering.num_clusters = 4;
  config.topic_weight = 0.0;
  auto zero = TopicInf2vecModel::Train(f.world.graph, f.split.train, config);
  ASSERT_TRUE(zero.ok());
  const RankingMetrics topical = EvaluateActivationTopicAware(
      zero.value(), f.world.graph, f.split.test);
  const RankingMetrics plain = EvaluateActivation(
      zero.value().global_model().Predictor(), f.world.graph, f.split.test);
  EXPECT_NEAR(topical.auc, plain.auc, 1e-12);
  EXPECT_NEAR(topical.map, plain.map, 1e-12);
}

}  // namespace
}  // namespace inf2vec
