// TopKBatcher single-flight semantics: one scan per coalition, followers
// share (truncated to their k), generations never mix, larger-k
// followers scan independently, and a failed leader fails its followers.

#include "serve/topk_batcher.h"

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace inf2vec {
namespace serve {
namespace {

TopKRequest MakeRequest(std::vector<UserId> seeds, uint32_t k) {
  TopKRequest request;
  request.seeds = std::move(seeds);
  request.k = k;
  return request;
}

/// A controllable fake scan: counts invocations and can hold the leader
/// inside the scan until the test has lined its followers up.
struct FakeScan {
  std::atomic<int> calls{0};
  std::mutex mu;
  std::condition_variable cv;
  bool hold = false;
  int waiting = 0;  // Followers the test wants parked before release.

  Result<TopKResult> operator()(const TopKRequest& request) {
    calls.fetch_add(1);
    if (hold) {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [this] { return waiting == 0; });
    }
    TopKResult result;
    for (uint32_t i = 0; i < request.k; ++i) {
      result.entries.push_back({i, static_cast<double>(request.k - i)});
    }
    result.scanned = 100;
    return result;
  }
};

TEST(TopKBatcherTest, LoneRequestScansAndIsNotCoalesced) {
  obs::MetricsRegistry registry;
  TopKBatcher batcher(&registry);
  FakeScan scan;
  const Result<TopKResult> got =
      batcher.Execute(1, MakeRequest({1, 2}, 5), std::ref(scan));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(scan.calls.load(), 1);
  EXPECT_FALSE(got.value().coalesced);
  EXPECT_EQ(got.value().entries.size(), 5u);
}

TEST(TopKBatcherTest, SequentialSameKeyRequestsDoNotShareStaleResults) {
  obs::MetricsRegistry registry;
  TopKBatcher batcher(&registry);
  FakeScan scan;
  for (int i = 0; i < 3; ++i) {
    const Result<TopKResult> got =
        batcher.Execute(1, MakeRequest({1, 2}, 5), std::ref(scan));
    ASSERT_TRUE(got.ok());
    EXPECT_FALSE(got.value().coalesced);
  }
  // No caching across completed scans — single-flight only.
  EXPECT_EQ(scan.calls.load(), 3);
}

TEST(TopKBatcherTest, ConcurrentSameSeedRequestsShareOneScan) {
  obs::MetricsRegistry registry;
  TopKBatcher batcher(&registry);
  FakeScan scan;
  scan.hold = true;
  constexpr int kFollowers = 4;
  scan.waiting = kFollowers;

  std::vector<Result<TopKResult>> results;
  results.reserve(kFollowers + 1);
  for (int i = 0; i <= kFollowers; ++i) {
    results.emplace_back(Status::Internal("unset"));
  }
  // The leader enters the scan and blocks until all followers arrive.
  std::thread leader([&] {
    results[0] = batcher.Execute(7, MakeRequest({5, 6, 7}, 10), std::ref(scan));
  });
  while (scan.calls.load() == 0) std::this_thread::yield();

  std::vector<std::thread> followers;
  for (int i = 1; i <= kFollowers; ++i) {
    followers.emplace_back([&, i] {
      // Smaller/equal k: all must share the leader's heap.
      const uint32_t k = static_cast<uint32_t>(3 + i);
      Result<TopKResult> got =
          batcher.Execute(7, MakeRequest({5, 6, 7}, k), std::ref(scan));
      std::lock_guard<std::mutex> lock(scan.mu);
      results[i] = std::move(got);
    });
  }
  // Give the followers time to park on the in-flight group, then release
  // the leader. A follower that arrives late simply runs its own scan —
  // the scan-or-coalesce accounting below holds either way.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  {
    std::lock_guard<std::mutex> lock(scan.mu);
    scan.waiting = 0;
  }
  scan.cv.notify_all();
  leader.join();
  for (std::thread& t : followers) t.join();

  ASSERT_TRUE(results[0].ok());
  EXPECT_FALSE(results[0].value().coalesced);
  EXPECT_EQ(results[0].value().entries.size(), 10u);
  int coalesced = 0;
  for (int i = 1; i <= kFollowers; ++i) {
    ASSERT_TRUE(results[i].ok()) << results[i].status().ToString();
    if (results[i].value().coalesced) {
      coalesced++;
      // Truncated to the follower's own k, same leading order.
      EXPECT_EQ(results[i].value().entries.size(),
                static_cast<size_t>(3 + i));
      EXPECT_EQ(results[i].value().entries[0].user,
                results[0].value().entries[0].user);
    }
  }
  // Every follower that arrived while the leader was in flight shared its
  // scan; total scans stayed well below one-per-request.
  EXPECT_EQ(scan.calls.load() + coalesced, kFollowers + 1);
  EXPECT_GE(coalesced, 1);
  EXPECT_EQ(batcher.coalesced_total(), 0u);  // Metrics disabled here.
}

TEST(TopKBatcherTest, DifferentGenerationsNeverShareAScan) {
  obs::MetricsRegistry registry;
  TopKBatcher batcher(&registry);
  FakeScan scan;
  scan.hold = true;
  scan.waiting = 1;

  std::thread leader([&] {
    const Result<TopKResult> got =
        batcher.Execute(1, MakeRequest({9}, 5), std::ref(scan));
    EXPECT_TRUE(got.ok());
  });
  while (scan.calls.load() == 0) std::this_thread::yield();

  // Same seeds, different generation: must start its own scan (the fake
  // releases both once the second call arrives).
  std::thread other([&] {
    const Result<TopKResult> got =
        batcher.Execute(2, MakeRequest({9}, 5), std::ref(scan));
    EXPECT_TRUE(got.ok());
    EXPECT_FALSE(got.value().coalesced);
  });
  while (scan.calls.load() < 2) std::this_thread::yield();
  {
    std::lock_guard<std::mutex> lock(scan.mu);
    scan.waiting = 0;
  }
  scan.cv.notify_all();
  leader.join();
  other.join();
  EXPECT_EQ(scan.calls.load(), 2);
}

TEST(TopKBatcherTest, LargerKFollowerRunsItsOwnScan) {
  obs::MetricsRegistry registry;
  TopKBatcher batcher(&registry);
  FakeScan scan;
  scan.hold = true;
  scan.waiting = 1;

  std::thread leader([&] {
    const Result<TopKResult> got =
        batcher.Execute(1, MakeRequest({4, 2}, 5), std::ref(scan));
    EXPECT_TRUE(got.ok());
  });
  while (scan.calls.load() == 0) std::this_thread::yield();

  std::thread bigger([&] {
    // Wants more rows than the in-flight heap kept — cannot share.
    const Result<TopKResult> got =
        batcher.Execute(1, MakeRequest({4, 2}, 50), std::ref(scan));
    EXPECT_TRUE(got.ok());
    EXPECT_FALSE(got.value().coalesced);
    EXPECT_EQ(got.value().entries.size(), 50u);
  });
  while (scan.calls.load() < 2) std::this_thread::yield();
  {
    std::lock_guard<std::mutex> lock(scan.mu);
    scan.waiting = 0;
  }
  scan.cv.notify_all();
  leader.join();
  bigger.join();
  EXPECT_EQ(scan.calls.load(), 2);
}

TEST(TopKBatcherTest, LeaderFailurePropagatesToFollowers) {
  obs::MetricsRegistry registry;
  TopKBatcher batcher(&registry);
  std::atomic<int> calls{0};
  std::atomic<bool> release{false};
  const TopKBatcher::ScanFn failing =
      [&](const TopKRequest&) -> Result<TopKResult> {
    calls.fetch_add(1);
    while (!release.load()) std::this_thread::yield();
    return Status::DeadlineExceeded("scan overran");
  };

  std::thread leader([&] {
    const Result<TopKResult> got =
        batcher.Execute(1, MakeRequest({1}, 5), failing);
    EXPECT_FALSE(got.ok());
  });
  while (calls.load() == 0) std::this_thread::yield();

  std::thread follower([&] {
    const Result<TopKResult> got =
        batcher.Execute(1, MakeRequest({1}, 5), failing);
    // Either it joined the doomed coalition (inherits the error) or it
    // arrived after the erase and ran its own failing scan — both fail.
    EXPECT_FALSE(got.ok());
    EXPECT_EQ(got.status().code(), StatusCode::kDeadlineExceeded);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  release.store(true);
  leader.join();
  follower.join();
}

}  // namespace
}  // namespace serve
}  // namespace inf2vec
