// Sampling CPU profiler tests: start/stop lifecycle and option
// validation, sample capture from a busy loop, the timed auto-stop
// session behind /pprofz?seconds=N, folded-stack output shape, and the
// attribution contract — on a top-k serving workload at least half of
// all samples must land in the kernel-scan call tree.

#include "obs/profiler.h"

#include <chrono>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "embedding/model_io.h"
#include "serve/influence_service.h"
#include "util/rng.h"

namespace inf2vec {
namespace obs {
namespace {

/// Burns CPU (not wall time) until `seconds` of work elapsed — ITIMER_PROF
/// only ticks on CPU time, so sleeping would starve the profiler.
uint64_t BurnCpu(double seconds) {
  const auto start = std::chrono::steady_clock::now();
  volatile uint64_t sink = 0;
  while (std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
             .count() < seconds) {
    for (int i = 0; i < 1000; ++i) sink += static_cast<uint64_t>(i) * i;
  }
  return sink;
}

TEST(CpuProfilerTest, StartStopLifecycle) {
  CpuProfiler profiler;
  EXPECT_FALSE(profiler.running());
  ASSERT_TRUE(profiler.Start().ok());
  EXPECT_TRUE(profiler.running());
  EXPECT_FALSE(profiler.Start().ok());  // Already running.
  ASSERT_TRUE(profiler.Stop().ok());
  EXPECT_FALSE(profiler.running());
  EXPECT_TRUE(profiler.Stop().ok());  // Idempotent.
}

TEST(CpuProfilerTest, RejectsBadOptions) {
  CpuProfiler profiler;
  CpuProfiler::Options options;
  options.hz = 0;
  EXPECT_FALSE(profiler.Start(options).ok());
  options.hz = 1000000;
  EXPECT_FALSE(profiler.Start(options).ok());
  options.hz = 100;
  options.max_samples = 0;
  EXPECT_FALSE(profiler.Start(options).ok());
  EXPECT_FALSE(profiler.StartForDuration(0.0).ok());
  EXPECT_FALSE(profiler.StartForDuration(-1.0).ok());
  EXPECT_FALSE(profiler.running());
}

TEST(CpuProfilerTest, CapturesSamplesFromBusyLoop) {
  CpuProfiler profiler;
  CpuProfiler::Options options;
  options.hz = 1000;
  ASSERT_TRUE(profiler.Start(options).ok());
  BurnCpu(0.4);
  ASSERT_TRUE(profiler.Stop().ok());

  EXPECT_GT(profiler.sample_count(), 0u);
  EXPECT_EQ(profiler.hz(), 1000);
  const std::string folded = profiler.FoldedStacks();
  ASSERT_FALSE(folded.empty());
  // Every line is "frame;frame;... count" with a positive trailing count.
  std::istringstream lines(folded);
  std::string line;
  uint64_t total = 0;
  while (std::getline(lines, line)) {
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const uint64_t count = std::stoull(line.substr(space + 1));
    EXPECT_GT(count, 0u) << line;
    total += count;
  }
  EXPECT_EQ(total, profiler.sample_count());

  const JsonValue describe = profiler.DescribeJson();
  EXPECT_FALSE(describe.Find("running")->AsBool());
  EXPECT_EQ(static_cast<uint64_t>(describe.Find("samples")->AsInt()),
            profiler.sample_count());
}

TEST(CpuProfilerTest, StartForDurationAutoStops) {
  CpuProfiler profiler;
  ASSERT_TRUE(profiler.StartForDuration(0.3).ok());
  EXPECT_TRUE(profiler.running());
  EXPECT_FALSE(profiler.StartForDuration(0.3).ok());  // One at a time.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (profiler.running() &&
         std::chrono::steady_clock::now() < deadline) {
    BurnCpu(0.05);
  }
  EXPECT_FALSE(profiler.running());
  EXPECT_GT(profiler.sample_count(), 0u);
  // A fresh session can start after the auto-stop.
  ASSERT_TRUE(profiler.Start().ok());
  ASSERT_TRUE(profiler.Stop().ok());
}

TEST(CpuProfilerTest, StopCancelsPendingAutoStop) {
  CpuProfiler profiler;
  ASSERT_TRUE(profiler.StartForDuration(3600.0).ok());
  BurnCpu(0.05);
  ASSERT_TRUE(profiler.Stop().ok());  // Must not wait the full hour.
  EXPECT_FALSE(profiler.running());
}

TEST(CpuProfilerTest, AttributesKernelScanFramesOnTopKWorkload) {
  // A serving table big enough that the blocked scan dominates each
  // query; the profile of a pure top-k loop must attribute at least half
  // of all samples to the scan call tree (InfluenceService::TopK and the
  // kernels below it).
  EmbeddingStore store(20000, 32);
  Rng rng(99);
  store.InitUniform(-0.5, 0.5, rng);
  ModelArtifact artifact;
  artifact.store = std::move(store);
  artifact.metadata.dim = 32;
  auto service_or = serve::InfluenceService::FromArtifact(
      std::move(artifact), serve::ServiceOptions{});
  ASSERT_TRUE(service_or.ok()) << service_or.status().ToString();
  const serve::InfluenceService service = std::move(service_or).value();
  service.Warm();

  CpuProfiler profiler;
  CpuProfiler::Options options;
  options.hz = 500;
  ASSERT_TRUE(profiler.Start(options).ok());
  const auto start = std::chrono::steady_clock::now();
  uint32_t queries = 0;
  while (std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
             .count() < 1.5) {
    serve::TopKRequest query;
    query.seeds = {static_cast<UserId>(queries % 20000),
                   static_cast<UserId>((queries * 7 + 3) % 20000)};
    query.k = 10;
    ASSERT_TRUE(service.TopK(query).ok());
    ++queries;
  }
  ASSERT_TRUE(profiler.Stop().ok());
  ASSERT_GE(profiler.sample_count(), 50u)
      << "profiler captured too few samples to attribute";

  const std::string folded = profiler.FoldedStacks();
  std::istringstream lines(folded);
  std::string line;
  uint64_t total = 0, scan = 0;
  const std::vector<std::string> scan_markers = {
      "TopK", "kernels", "SeedScan", "InfluenceService"};
  while (std::getline(lines, line)) {
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const uint64_t count = std::stoull(line.substr(space + 1));
    total += count;
    for (const std::string& marker : scan_markers) {
      if (line.find(marker) != std::string::npos) {
        scan += count;
        break;
      }
    }
  }
  ASSERT_GT(total, 0u);
  EXPECT_GE(static_cast<double>(scan) / static_cast<double>(total), 0.5)
      << "only " << scan << "/" << total
      << " samples in the scan tree:\n" << folded;
}

}  // namespace
}  // namespace obs
}  // namespace inf2vec
