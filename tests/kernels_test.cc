#include "kernels/kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "kernels/aligned.h"
#include "util/rng.h"

namespace inf2vec {
namespace kernels {
namespace {

/// Every test restores the CPUID-selected default so backend pinning
/// cannot leak across cases.
class KernelsTest : public ::testing::Test {
 protected:
  void TearDown() override { ResetIsaForTest(); }

  bool HaveAvx2() const { return Avx2Compiled() && Avx2Supported(); }
};

AlignedVector<double> RandomVector(size_t n, Rng& rng) {
  AlignedVector<double> v(n);
  for (double& x : v) x = rng.UniformDouble(-1.0, 1.0);
  return v;
}

uint64_t Bits(double x) {
  uint64_t b;
  std::memcpy(&b, &x, sizeof(b));
  return b;
}

/// ULP distance between two finite doubles of the same sign regime.
uint64_t UlpDistance(double a, double b) {
  int64_t ia, ib;
  std::memcpy(&ia, &a, sizeof(ia));
  std::memcpy(&ib, &b, sizeof(ib));
  if (ia < 0) ia = std::numeric_limits<int64_t>::min() - ia;
  if (ib < 0) ib = std::numeric_limits<int64_t>::min() - ib;
  return static_cast<uint64_t>(ia > ib ? ia - ib : ib - ia);
}

TEST_F(KernelsTest, AlignedAllocatorDelivers64ByteAlignment) {
  for (size_t n : {1u, 3u, 17u, 1000u}) {
    AlignedVector<double> v(n);
    EXPECT_TRUE(IsAligned(v.data())) << "n=" << n;
    AlignedVector<int8_t> b(n);
    EXPECT_TRUE(IsAligned(b.data())) << "n=" << n;
  }
}

TEST_F(KernelsTest, PaddedStrideRoundsUpToCacheLines) {
  EXPECT_EQ(PaddedStride(1, sizeof(double)), 8u);
  EXPECT_EQ(PaddedStride(8, sizeof(double)), 8u);
  EXPECT_EQ(PaddedStride(9, sizeof(double)), 16u);
  EXPECT_EQ(PaddedStride(50, sizeof(double)), 56u);
  EXPECT_EQ(PaddedStride(1, 1), 64u);
  EXPECT_EQ(PaddedStride(64, 1), 64u);
  EXPECT_EQ(PaddedStride(65, 1), 128u);
}

TEST_F(KernelsTest, ScalarDotMatchesPlainLoopBitForBit) {
  Rng rng(11);
  for (size_t n : {1u, 4u, 13u, 50u, 128u}) {
    const AlignedVector<double> a = RandomVector(n, rng);
    const AlignedVector<double> b = RandomVector(n, rng);
    double expected = 0.0;
    for (size_t k = 0; k < n; ++k) expected += a[k] * b[k];
    EXPECT_EQ(Bits(ScalarOps().dot(a.data(), b.data(), n)), Bits(expected))
        << "n=" << n;
  }
}

TEST_F(KernelsTest, Avx2DotWithinUlpsOfScalarAcrossRemainderLanes) {
  if (!HaveAvx2()) GTEST_SKIP() << "AVX2 backend unavailable";
  ASSERT_TRUE(SetActiveIsa(Isa::kAvx2));
  Rng rng(23);
  // Every dim in [1, 130] exercises each remainder-lane combination of
  // the unroll-16 / 4-wide / scalar-tail structure.
  for (size_t n = 1; n <= 130; ++n) {
    const AlignedVector<double> a = RandomVector(n, rng);
    const AlignedVector<double> b = RandomVector(n, rng);
    const double scalar = ScalarOps().dot(a.data(), b.data(), n);
    const double avx2 = Dot(a.data(), b.data(), n);
    double magnitude = 0.0;
    for (size_t k = 0; k < n; ++k) magnitude += std::abs(a[k] * b[k]);
    // Reassociation error is bounded by ~n*eps relative to the sum of
    // |terms|; 1e-13 * magnitude is orders looser than that bound but
    // still catches any real indexing/lane bug outright.
    EXPECT_LE(std::abs(avx2 - scalar),
              1e-13 * std::max(1.0, magnitude))
        << "n=" << n;
  }
}

TEST_F(KernelsTest, Avx2AxpyMatchesScalarWithinUlps) {
  if (!HaveAvx2()) GTEST_SKIP() << "AVX2 backend unavailable";
  Rng rng(37);
  for (size_t n = 1; n <= 70; ++n) {
    const AlignedVector<double> x = RandomVector(n, rng);
    AlignedVector<double> y_scalar = RandomVector(n, rng);
    AlignedVector<double> y_avx2 = y_scalar;
    ScalarOps().axpy(0.125, x.data(), y_scalar.data(), n);
    ASSERT_TRUE(SetActiveIsa(Isa::kAvx2));
    Axpy(0.125, x.data(), y_avx2.data(), n);
    ResetIsaForTest();
    for (size_t k = 0; k < n; ++k) {
      // Only FMA contraction separates the two: at most 1 ulp per lane.
      EXPECT_LE(UlpDistance(y_scalar[k], y_avx2[k]), 1u)
          << "n=" << n << " k=" << k;
    }
  }
}

TEST_F(KernelsTest, Avx2GradStepMatchesScalarWithinUlps) {
  if (!HaveAvx2()) GTEST_SKIP() << "AVX2 backend unavailable";
  Rng rng(41);
  for (size_t n = 1; n <= 70; ++n) {
    const AlignedVector<double> s = RandomVector(n, rng);
    const AlignedVector<double> t_before = RandomVector(n, rng);
    const AlignedVector<double> g_before = RandomVector(n, rng);
    AlignedVector<double> t_scalar = t_before;
    AlignedVector<double> t_avx2 = t_before;
    AlignedVector<double> g_scalar = g_before;
    AlignedVector<double> g_avx2 = g_before;
    ScalarOps().grad_step(0.75, -0.003, s.data(), t_scalar.data(),
                          g_scalar.data(), n);
    ASSERT_TRUE(SetActiveIsa(Isa::kAvx2));
    GradStep(0.75, -0.003, s.data(), t_avx2.data(), g_avx2.data(), n);
    ResetIsaForTest();
    for (size_t k = 0; k < n; ++k) {
      // Lanes can cancel (t + lr_coeff*s ~ 0, or g_old + coeff*t ~ 0), so
      // a fixed ulp bound on the result is meaningless; bound the
      // FMA-contraction error in units of the operand magnitude instead.
      // A backend reading t AFTER its own update would shift grad by
      // coeff*lr_coeff*s[k] (~1e-3) — twelve orders of magnitude beyond
      // this tolerance — so the bound still pins the read-before-write
      // ordering.
      const double t_scale = std::abs(t_before[k]) + 1.0;
      EXPECT_NEAR(t_scalar[k], t_avx2[k], 1e-15 * t_scale)
          << "t n=" << n << " k=" << k;
      const double g_scale =
          std::abs(g_before[k]) + std::abs(0.75 * t_before[k]) + 1.0;
      EXPECT_NEAR(g_scalar[k], g_avx2[k], 1e-15 * g_scale)
          << "grad n=" << n << " k=" << k;
    }
  }
}

TEST_F(KernelsTest, SigmoidDotAgreesAcrossBackends) {
  if (!HaveAvx2()) GTEST_SKIP() << "AVX2 backend unavailable";
  Rng rng(43);
  for (size_t n : {1u, 13u, 50u, 127u}) {
    const AlignedVector<double> a = RandomVector(n, rng);
    const AlignedVector<double> b = RandomVector(n, rng);
    const double scalar = ScalarOps().sigmoid_dot(a.data(), b.data(), n, 0.25);
    ASSERT_TRUE(SetActiveIsa(Isa::kAvx2));
    const double avx2 = SigmoidDot(a.data(), b.data(), n, 0.25);
    ResetIsaForTest();
    EXPECT_NEAR(scalar, avx2, 1e-14) << "n=" << n;
    EXPECT_GT(scalar, 0.0);
    EXPECT_LT(scalar, 1.0);
  }
}

TEST_F(KernelsTest, SeedScanBitIdenticalToPerSeedDotOnEveryBackend) {
  Rng rng(53);
  const size_t kSeeds = 7;
  for (size_t n : {1u, 13u, 50u, 64u, 101u}) {
    const size_t stride = PaddedStride(n, sizeof(double));
    AlignedVector<double> block(kSeeds * stride, 0.0);
    for (size_t i = 0; i < kSeeds; ++i) {
      for (size_t k = 0; k < n; ++k) {
        block[i * stride + k] = rng.UniformDouble(-1.0, 1.0);
      }
    }
    const AlignedVector<double> target = RandomVector(n, rng);
    std::vector<Isa> isas = {Isa::kScalar};
    if (HaveAvx2()) isas.push_back(Isa::kAvx2);
    for (Isa isa : isas) {
      ASSERT_TRUE(SetActiveIsa(isa));
      std::vector<double> out(kSeeds);
      SeedScan(block.data(), kSeeds, stride, target.data(), n, out.data());
      for (size_t i = 0; i < kSeeds; ++i) {
        EXPECT_EQ(Bits(out[i]),
                  Bits(Dot(block.data() + i * stride, target.data(), n)))
            << IsaName(isa) << " n=" << n << " seed=" << i;
      }
      ResetIsaForTest();
    }
  }
}

TEST_F(KernelsTest, Int8DotExactAcrossBackendsAndRemainders) {
  Rng rng(61);
  for (size_t n = 1; n <= 200; ++n) {
    AlignedVector<int8_t> a(PaddedStride(n, 1), 0);
    AlignedVector<int8_t> b(PaddedStride(n, 1), 0);
    for (size_t k = 0; k < n; ++k) {
      a[k] = static_cast<int8_t>(rng.UniformInt(-127, 127));
      b[k] = static_cast<int8_t>(rng.UniformInt(-127, 127));
    }
    int32_t expected = 0;
    for (size_t k = 0; k < n; ++k) {
      expected += static_cast<int32_t>(a[k]) * static_cast<int32_t>(b[k]);
    }
    EXPECT_EQ(ScalarOps().dot_i8(a.data(), b.data(), n), expected)
        << "scalar n=" << n;
    if (HaveAvx2()) {
      ASSERT_TRUE(SetActiveIsa(Isa::kAvx2));
      EXPECT_EQ(DotI8(a.data(), b.data(), n), expected) << "avx2 n=" << n;
      ResetIsaForTest();
    }
  }
}

TEST_F(KernelsTest, Int8DotSaturatedInputsStayExact) {
  // All-extreme codes maximize every intermediate: 512 * 127 * 127 still
  // fits int32, and the madd_epi16 pairing must not overflow int16.
  const size_t n = 512;
  AlignedVector<int8_t> a(n, int8_t{127});
  AlignedVector<int8_t> b(n, int8_t{-127});
  const int32_t expected = -127 * 127 * static_cast<int32_t>(n);
  EXPECT_EQ(ScalarOps().dot_i8(a.data(), b.data(), n), expected);
  if (HaveAvx2()) {
    ASSERT_TRUE(SetActiveIsa(Isa::kAvx2));
    EXPECT_EQ(DotI8(a.data(), b.data(), n), expected);
  }
}

TEST_F(KernelsTest, Int8SeedScanMatchesPerSeedDot) {
  Rng rng(67);
  const size_t kSeeds = 5;
  const size_t n = 50;
  const size_t stride = PaddedStride(n, 1);
  AlignedVector<int8_t> block(kSeeds * stride, 0);
  AlignedVector<int8_t> target(stride, 0);
  for (size_t i = 0; i < kSeeds; ++i) {
    for (size_t k = 0; k < n; ++k) {
      block[i * stride + k] = static_cast<int8_t>(rng.UniformInt(-127, 127));
    }
  }
  for (size_t k = 0; k < n; ++k) {
    target[k] = static_cast<int8_t>(rng.UniformInt(-127, 127));
  }
  std::vector<Isa> isas = {Isa::kScalar};
  if (HaveAvx2()) isas.push_back(Isa::kAvx2);
  for (Isa isa : isas) {
    ASSERT_TRUE(SetActiveIsa(isa));
    std::vector<int32_t> out(kSeeds);
    SeedScanI8(block.data(), kSeeds, stride, target.data(), n, out.data());
    for (size_t i = 0; i < kSeeds; ++i) {
      EXPECT_EQ(out[i], ScalarOps().dot_i8(block.data() + i * stride,
                                           target.data(), n))
          << IsaName(isa) << " seed=" << i;
    }
    ResetIsaForTest();
  }
}

TEST_F(KernelsTest, DispatchDefaultsToBestIsaUnforced) {
  ResetIsaForTest();
  EXPECT_EQ(ActiveIsa(), BestIsa());
  EXPECT_FALSE(IsaForced());
}

TEST_F(KernelsTest, SetActiveIsaPinsAndReports) {
  ASSERT_TRUE(SetActiveIsa(Isa::kScalar));
  EXPECT_EQ(ActiveIsa(), Isa::kScalar);
  EXPECT_TRUE(IsaForced());
  ResetIsaForTest();
  EXPECT_FALSE(IsaForced());
  if (HaveAvx2()) {
    EXPECT_TRUE(SetActiveIsa(Isa::kAvx2));
    EXPECT_EQ(ActiveIsa(), Isa::kAvx2);
  } else {
    EXPECT_FALSE(SetActiveIsa(Isa::kAvx2));
    EXPECT_EQ(ActiveIsa(), Isa::kScalar);
  }
}

TEST_F(KernelsTest, ParseIsaNameAcceptsCliSpellings) {
  Isa isa;
  ASSERT_TRUE(ParseIsaName("scalar", &isa));
  EXPECT_EQ(isa, Isa::kScalar);
  ASSERT_TRUE(ParseIsaName("avx2", &isa));
  EXPECT_EQ(isa, Isa::kAvx2);
  ASSERT_TRUE(ParseIsaName("auto", &isa));
  EXPECT_EQ(isa, BestIsa());
  EXPECT_FALSE(ParseIsaName("sse", &isa));
  EXPECT_FALSE(ParseIsaName("AVX2", &isa));
  EXPECT_FALSE(ParseIsaName("", &isa));
}

TEST_F(KernelsTest, IsaNamesRoundTrip) {
  EXPECT_STREQ(IsaName(Isa::kScalar), "scalar");
  EXPECT_STREQ(IsaName(Isa::kAvx2), "avx2");
}

}  // namespace
}  // namespace kernels
}  // namespace inf2vec
