#include "graph/graph_io.h"

#include <filesystem>
#include <unistd.h>

#include <gtest/gtest.h>

#include "util/io.h"

namespace inf2vec {
namespace {

class GraphIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("inf2vec_graph_io_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(GraphIoTest, SaveLoadRoundTrip) {
  GraphBuilder builder(5);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(4, 0);
  const SocialGraph g = std::move(builder.Build()).value();
  ASSERT_TRUE(SaveEdgeList(g, Path("g.tsv")).ok());

  auto loaded = LoadEdgeList(Path("g.tsv"), 5);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().num_edges(), 3u);
  EXPECT_TRUE(loaded.value().HasEdge(4, 0));
}

TEST_F(GraphIoTest, LoadIgnoresCommentsAndBlankLines) {
  ASSERT_TRUE(WriteLines(Path("g.tsv"),
                         {"# header", "", "0\t1", "  ", "# mid", "1\t2"})
                  .ok());
  auto loaded = LoadEdgeList(Path("g.tsv"), 3);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().num_edges(), 2u);
}

TEST_F(GraphIoTest, LoadAcceptsSpaceSeparation) {
  ASSERT_TRUE(WriteLines(Path("g.txt"), {"0 1", "2 0"}).ok());
  auto loaded = LoadEdgeList(Path("g.txt"), 3);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded.value().HasEdge(2, 0));
}

TEST_F(GraphIoTest, AutoSizeInfersUserCount) {
  ASSERT_TRUE(WriteLines(Path("g.tsv"), {"0\t7", "3\t2"}).ok());
  auto loaded = LoadEdgeListAutoSize(Path("g.tsv"));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().num_users(), 8u);
}

TEST_F(GraphIoTest, LoadRejectsMalformedLine) {
  ASSERT_TRUE(WriteLines(Path("bad.tsv"), {"0\t1", "justone"}).ok());
  EXPECT_FALSE(LoadEdgeList(Path("bad.tsv"), 3).ok());
}

TEST_F(GraphIoTest, LoadRejectsNonNumeric) {
  ASSERT_TRUE(WriteLines(Path("bad.tsv"), {"a\tb"}).ok());
  EXPECT_FALSE(LoadEdgeList(Path("bad.tsv"), 3).ok());
}

TEST_F(GraphIoTest, LoadMissingFileFails) {
  EXPECT_EQ(LoadEdgeList(Path("absent.tsv"), 3).status().code(),
            StatusCode::kIOError);
}

TEST_F(GraphIoTest, LoadRejectsIdsBeyondDeclaredUsers) {
  ASSERT_TRUE(WriteLines(Path("g.tsv"), {"0\t9"}).ok());
  EXPECT_FALSE(LoadEdgeList(Path("g.tsv"), 3).ok());
}

}  // namespace
}  // namespace inf2vec
