// RunStatus (/statusz state) and build_info (environment provenance)
// tests: command reset semantics, monotone epoch progress, the ETA
// extrapolation contract, and the provenance keys the run report and
// /varz both depend on.

#include "obs/run_status.h"

#include <string>

#include "gtest/gtest.h"
#include "obs/build_info.h"
#include "obs/json.h"

namespace inf2vec {
namespace obs {
namespace {

TEST(RunStatusTest, StartCommandResetsEverything) {
  RunStatus status;
  status.StartCommand("train");
  status.SetPhase("sgd");
  status.SetThreads(4);
  status.UpdateEpoch(0, 10, -0.7, 1e6, 0.5);

  status.StartCommand("evaluate");
  const JsonValue doc = status.ToJson();
  EXPECT_EQ(doc.Find("command")->AsString(), "evaluate");
  EXPECT_EQ(doc.Find("phase")->AsString(), "starting");
  EXPECT_EQ(doc.Find("epoch")->AsInt(), 0);
  EXPECT_EQ(doc.Find("total_epochs")->AsInt(), 0);
  EXPECT_EQ(doc.Find("threads")->AsInt(), 1);
  // No epoch has finished since the reset: ETA is the -1 sentinel.
  EXPECT_DOUBLE_EQ(doc.Find("eta_seconds")->AsDouble(), -1.0);
}

TEST(RunStatusTest, EpochProgressIsMonotoneAndOneBased) {
  RunStatus status;
  status.StartCommand("train");
  int64_t previous = 0;
  for (uint32_t epoch = 0; epoch < 5; ++epoch) {
    status.UpdateEpoch(epoch, 5, -0.5 + 0.01 * epoch, 2e6, 0.1);
    const JsonValue doc = status.ToJson();
    const int64_t done = doc.Find("epoch")->AsInt();
    // /statusz reports the 1-based count of *finished* epochs.
    EXPECT_EQ(done, static_cast<int64_t>(epoch) + 1);
    EXPECT_GT(done, previous) << "epoch must advance monotonically";
    previous = done;
  }
  EXPECT_EQ(status.ToJson().Find("total_epochs")->AsInt(), 5);
}

TEST(RunStatusTest, EtaExtrapolatesRemainingEpochs) {
  RunStatus status;
  status.StartCommand("train");
  // 3 of 10 epochs finished, the last one in 2s: 7 remain -> ETA 14s.
  status.UpdateEpoch(2, 10, -0.4, 1e6, 2.0);
  EXPECT_DOUBLE_EQ(status.ToJson().Find("eta_seconds")->AsDouble(), 14.0);
  // All epochs done: nothing remains.
  status.UpdateEpoch(9, 10, -0.3, 1e6, 2.0);
  EXPECT_DOUBLE_EQ(status.ToJson().Find("eta_seconds")->AsDouble(), 0.0);
}

TEST(RunStatusTest, ToJsonCarriesLiveTrainingFields) {
  RunStatus status;
  status.StartCommand("train");
  status.SetPhase("corpus");
  status.SetThreads(8);
  status.UpdateEpoch(0, 3, -0.6931, 1.5e6, 0.25);

  const JsonValue doc = status.ToJson();
  EXPECT_EQ(doc.Find("phase")->AsString(), "corpus");
  EXPECT_EQ(doc.Find("threads")->AsInt(), 8);
  EXPECT_DOUBLE_EQ(doc.Find("objective")->AsDouble(), -0.6931);
  EXPECT_DOUBLE_EQ(doc.Find("pairs_per_second")->AsDouble(), 1.5e6);
  EXPECT_GE(doc.Find("uptime_seconds")->AsDouble(), 0.0);
}

TEST(BuildInfoTest, ProvenanceFieldsAreNeverEmpty) {
  const BuildInfo& info = GetBuildInfo();
  EXPECT_FALSE(info.git_sha.empty());
  EXPECT_FALSE(info.compiler.empty());
  EXPECT_FALSE(info.build_type.empty());
  EXPECT_FALSE(info.cxx_standard.empty());
}

TEST(BuildInfoTest, RuntimeProbesReportThisProcess) {
  // getrusage-based peak RSS: a running test binary occupies memory.
  EXPECT_GT(PeakRssBytes(), 0u);
  // Hostname may be empty only if the syscall fails, which would itself be
  // a finding on any supported platform.
  EXPECT_FALSE(Hostname().empty());
}

TEST(BuildInfoTest, EnvironmentJsonHasFullProvenanceBlock) {
  const JsonValue env = EnvironmentJson();
  ASSERT_NE(env.Find("hostname"), nullptr);
  EXPECT_GT(env.Find("pid")->AsInt(), 0);
  EXPECT_GT(env.Find("hardware_concurrency")->AsInt(), 0);
  EXPECT_GT(env.Find("peak_rss_bytes")->AsInt(), 0);
  const JsonValue* build = env.Find("build");
  ASSERT_NE(build, nullptr);
  for (const char* key :
       {"git_sha", "compiler", "build_type", "build_flags", "cxx_standard"}) {
    ASSERT_NE(build->Find(key), nullptr) << key;
    EXPECT_FALSE(build->Find(key)->AsString().empty()) << key;
  }
}

}  // namespace
}  // namespace obs
}  // namespace inf2vec
