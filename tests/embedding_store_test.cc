#include "embedding/embedding_store.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

namespace inf2vec {
namespace {

TEST(EmbeddingStoreTest, InitialStateIsZero) {
  const EmbeddingStore store(4, 3);
  EXPECT_EQ(store.num_users(), 4u);
  EXPECT_EQ(store.dim(), 3u);
  for (UserId u = 0; u < 4; ++u) {
    for (double x : store.Source(u)) EXPECT_DOUBLE_EQ(x, 0.0);
    for (double x : store.Target(u)) EXPECT_DOUBLE_EQ(x, 0.0);
    EXPECT_DOUBLE_EQ(store.source_bias(u), 0.0);
    EXPECT_DOUBLE_EQ(store.target_bias(u), 0.0);
  }
}

TEST(EmbeddingStoreTest, PaperInitStaysInBound) {
  EmbeddingStore store(50, 25);
  Rng rng(1);
  store.InitPaperDefault(rng);
  const double bound = 1.0 / 25.0;
  double max_abs = 0.0;
  for (UserId u = 0; u < 50; ++u) {
    for (double x : store.Source(u)) {
      EXPECT_LT(std::abs(x), bound + 1e-12);
      max_abs = std::max(max_abs, std::abs(x));
    }
    for (double x : store.Target(u)) EXPECT_LT(std::abs(x), bound + 1e-12);
    EXPECT_DOUBLE_EQ(store.source_bias(u), 0.0);
    EXPECT_DOUBLE_EQ(store.target_bias(u), 0.0);
  }
  EXPECT_GT(max_abs, bound * 0.5);  // Actually uses the range.
}

TEST(EmbeddingStoreTest, InitUniformResetsBiases) {
  EmbeddingStore store(3, 2);
  store.mutable_source_bias(1) = 5.0;
  Rng rng(2);
  store.InitUniform(-0.1, 0.1, rng);
  EXPECT_DOUBLE_EQ(store.source_bias(1), 0.0);
}

TEST(EmbeddingStoreTest, ScoreIsDotPlusBiases) {
  EmbeddingStore store(2, 3);
  auto s = store.Source(0);
  s[0] = 1.0;
  s[1] = 2.0;
  s[2] = -1.0;
  auto t = store.Target(1);
  t[0] = 0.5;
  t[1] = 0.25;
  t[2] = 2.0;
  store.mutable_source_bias(0) = 0.125;
  store.mutable_target_bias(1) = -0.5;
  // 0.5 + 0.5 - 2 + 0.125 - 0.5 = -1.375.
  EXPECT_DOUBLE_EQ(store.Score(0, 1), -1.375);
}

TEST(EmbeddingStoreTest, ScoreIsDirectional) {
  EmbeddingStore store(2, 1);
  store.Source(0)[0] = 1.0;
  store.Target(1)[0] = 2.0;
  store.Source(1)[0] = -3.0;
  store.Target(0)[0] = 1.0;
  EXPECT_DOUBLE_EQ(store.Score(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(store.Score(1, 0), -3.0);
}

TEST(EmbeddingStoreTest, ConcatenatedVector) {
  EmbeddingStore store(1, 2);
  store.Source(0)[0] = 1.0;
  store.Source(0)[1] = 2.0;
  store.Target(0)[0] = 3.0;
  store.Target(0)[1] = 4.0;
  EXPECT_EQ(store.ConcatenatedVector(0),
            (std::vector<double>{1.0, 2.0, 3.0, 4.0}));
}

TEST(EmbeddingStoreTest, SpansAliasUnderlyingStorage) {
  EmbeddingStore store(2, 2);
  store.Source(1)[0] = 9.0;
  EXPECT_DOUBLE_EQ(store.Source(1)[0], 9.0);
  EXPECT_DOUBLE_EQ(store.Source(0)[0], 0.0);  // No cross-row bleed.
}

TEST(EmbeddingStoreTest, EqualityComparesAllParameters) {
  EmbeddingStore a(2, 2);
  EmbeddingStore b(2, 2);
  EXPECT_EQ(a, b);
  b.mutable_target_bias(0) = 0.001;
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace inf2vec
