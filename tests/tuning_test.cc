#include "eval/tuning.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "synth/world_generator.h"

namespace inf2vec {
namespace {

struct Splits {
  synth::World world;
  LogSplit split;
};

Splits MakeSplits(uint64_t seed) {
  synth::WorldProfile profile = synth::WorldProfile::DiggLike();
  profile.num_users = 300;
  profile.num_items = 80;
  Rng rng(seed);
  auto world = synth::GenerateWorld(profile, rng);
  EXPECT_TRUE(world.ok());
  Splits s{std::move(world).value(), {}};
  Rng split_rng(seed + 1);
  s.split = SplitLog(s.world.log, 0.7, 0.2, split_rng);
  return s;
}

Inf2vecConfig FastConfig() {
  Inf2vecConfig config;
  config.dim = 12;
  config.epochs = 2;
  config.context.length = 10;
  return config;
}

TEST(TuneAlphaTest, RejectsBadInput) {
  const Splits s = MakeSplits(1);
  EXPECT_FALSE(TuneAlpha(s.world.graph, s.split.train, s.split.tune,
                         FastConfig(), {})
                   .ok());
  EXPECT_FALSE(TuneAlpha(s.world.graph, s.split.train, s.split.tune,
                         FastConfig(), {0.1, 1.5})
                   .ok());
  ActionLog empty;
  EXPECT_FALSE(TuneAlpha(s.world.graph, empty, s.split.tune, FastConfig(),
                         {0.1})
                   .ok());
  EXPECT_FALSE(TuneAlpha(s.world.graph, s.split.train, empty, FastConfig(),
                         {0.1})
                   .ok());
}

TEST(TuneAlphaTest, ReturnsCandidateWithBestTuneMap) {
  const Splits s = MakeSplits(2);
  const std::vector<double> candidates = {0.0, 0.1, 0.5, 1.0};
  auto result = TuneAlpha(s.world.graph, s.split.train, s.split.tune,
                          FastConfig(), candidates);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().per_candidate.size(), candidates.size());

  // The reported winner is the argmax of the reported per-candidate MAPs.
  double best_map = -1.0;
  double best_alpha = -1.0;
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (result.value().per_candidate[i].map > best_map) {
      best_map = result.value().per_candidate[i].map;
      best_alpha = candidates[i];
    }
  }
  EXPECT_DOUBLE_EQ(result.value().best_alpha, best_alpha);
  EXPECT_NE(std::find(candidates.begin(), candidates.end(),
                      result.value().best_alpha),
            candidates.end());
}

TEST(TuneAlphaTest, SingleCandidateWinsTrivially) {
  const Splits s = MakeSplits(3);
  auto result = TuneAlpha(s.world.graph, s.split.train, s.split.tune,
                          FastConfig(), {0.25});
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result.value().best_alpha, 0.25);
}

TEST(TuneAlphaTest, DeterministicGivenConfigSeed) {
  const Splits s = MakeSplits(4);
  const std::vector<double> candidates = {0.1, 0.9};
  auto a = TuneAlpha(s.world.graph, s.split.train, s.split.tune,
                     FastConfig(), candidates);
  auto b = TuneAlpha(s.world.graph, s.split.train, s.split.tune,
                     FastConfig(), candidates);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a.value().best_alpha, b.value().best_alpha);
  for (size_t i = 0; i < candidates.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.value().per_candidate[i].map,
                     b.value().per_candidate[i].map);
  }
}

}  // namespace
}  // namespace inf2vec
