// Serving endpoints over real HTTP on the epoll server: the POST /score
// batch body, its equivalence with the GET single-query alias, the
// unified error envelope, and /rpcz row-per-request accounting under
// keep-alive connection reuse.

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "obs/http_client.h"
#include "obs/http_server.h"
#include "obs/json.h"
#include "obs/memory.h"
#include "obs/metrics.h"
#include "obs/request_obs.h"
#include "serve/influence_service.h"
#include "serve/serve_endpoints.h"
#include "util/rng.h"

namespace inf2vec {
namespace serve {
namespace {

using obs::JsonValue;
using obs::ParseJson;

InfluenceService MakeService(uint32_t num_users, uint32_t dim) {
  ModelArtifact artifact;
  artifact.store = EmbeddingStore(num_users, dim);
  Rng rng(23);
  artifact.store.InitUniform(-0.5, 0.5, rng);
  for (UserId u = 0; u < num_users; ++u) {
    artifact.store.mutable_source_bias(u) = rng.UniformDouble(-0.2, 0.2);
    artifact.store.mutable_target_bias(u) = rng.UniformDouble(-0.2, 0.2);
  }
  artifact.metadata.aggregation = "Ave";
  artifact.metadata.dim = dim;
  Result<InfluenceService> service =
      InfluenceService::FromArtifact(std::move(artifact), {});
  EXPECT_TRUE(service.ok()) << service.status().ToString();
  return std::move(service).value();
}

using HttpResult = obs::HttpClientResponse;

/// One-shot request with method + body support.
HttpResult Call(uint16_t port, const std::string& method,
                const std::string& target, const std::string& body = "") {
  obs::HttpClient client(port);
  HttpResult result;
  client.Call(method, target, body, &result, /*deadline_ms=*/5000);
  return result;
}

class ServeHttpTest : public ::testing::Test {
 protected:
  ServeHttpTest() : service_(MakeService(64, 8)), server_({}, &registry_) {
    RegisterServeEndpoints(&server_, &service_);
    EXPECT_TRUE(server_.Start().ok());
  }
  ~ServeHttpTest() override { server_.Stop(); }

  obs::MetricsRegistry registry_;
  InfluenceService service_;
  obs::StatsServer server_;
};

TEST_F(ServeHttpTest, PostScoreBatchMatchesGetAliasExactly) {
  const std::string batch =
      "{\"queries\": ["
      "{\"candidate\": 7, \"seeds\": [1, 2, 3]},"
      "{\"candidate\": 11, \"seeds\": [4, 5]},"
      "{\"candidate\": 30, \"seeds\": [1, 2, 3]}]}";
  const HttpResult post = Call(server_.port(), "POST", "/score", batch);
  ASSERT_EQ(post.status, 200) << post.body;
  Result<JsonValue> doc = ParseJson(post.body);
  ASSERT_TRUE(doc.ok()) << post.body;
  EXPECT_EQ(doc.value().Find("count")->AsInt(), 3);
  const JsonValue* results = doc.value().Find("results");
  ASSERT_NE(results, nullptr);
  ASSERT_EQ(results->size(), 3u);

  // Each batch row must equal the GET single-query alias bit for bit
  // (both run the same Eq. 7 arithmetic on the same table).
  const std::vector<std::pair<std::string, std::string>> singles = {
      {"7", "1,2,3"}, {"11", "4,5"}, {"30", "1,2,3"}};
  for (size_t i = 0; i < singles.size(); ++i) {
    const HttpResult get =
        Call(server_.port(), "GET",
             "/score?candidate=" + singles[i].first +
                 "&seeds=" + singles[i].second);
    ASSERT_EQ(get.status, 200) << get.body;
    Result<JsonValue> single = ParseJson(get.body);
    ASSERT_TRUE(single.ok());
    EXPECT_EQ(results->items()[i].Find("score")->AsDouble(),
              single.value().Find("score")->AsDouble());
    EXPECT_EQ(results->items()[i].Find("candidate")->AsInt(),
              std::stoi(singles[i].first));
  }
}

TEST_F(ServeHttpTest, PostScoreRejectsMalformedBodiesWithTypedEnvelope) {
  const std::vector<std::pair<std::string, std::string>> bad = {
      {"not json at all", "INVALID_ARGUMENT"},
      {"[1,2,3]", "INVALID_ARGUMENT"},
      {"{\"queries\": 7}", "INVALID_ARGUMENT"},
      {"{\"queries\": [{\"candidate\": -1, \"seeds\": [1]}]}",
       "INVALID_ARGUMENT"},
      {"{\"queries\": [{\"candidate\": 1, \"seeds\": \"oops\"}]}",
       "INVALID_ARGUMENT"},
      {"{\"queries\": [{\"candidate\": 1, \"seeds\": [2]}], "
       "\"aggregation\": \"Bogus\"}",
       "INVALID_ARGUMENT"},
  };
  for (const auto& [body, code] : bad) {
    SCOPED_TRACE(body);
    const HttpResult got = Call(server_.port(), "POST", "/score", body);
    EXPECT_EQ(got.status, 400);
    Result<JsonValue> doc = ParseJson(got.body);
    ASSERT_TRUE(doc.ok()) << got.body;
    ASSERT_NE(doc.value().Find("code"), nullptr);
    EXPECT_EQ(doc.value().Find("code")->AsString(), code);
    ASSERT_NE(doc.value().Find("error"), nullptr);
  }
}

TEST_F(ServeHttpTest, ErrorEnvelopeIsUniformAcrossLayers) {
  // Transport-layer 404, route-layer 405, and serve-layer 400/404 all
  // speak the same {"error", "code"} schema.
  struct Case {
    std::string method, target, body;
    int status;
    std::string code;
  };
  const std::vector<Case> cases = {
      {"GET", "/nope", "", 404, "NOT_FOUND"},
      {"POST", "/topk", "{}", 405, "METHOD_NOT_ALLOWED"},
      {"GET", "/score?candidate=1", "", 400, "INVALID_ARGUMENT"},
      {"GET", "/score?candidate=9999&seeds=1", "", 404, "NOT_FOUND"},
      {"GET", "/topk?seeds=abc", "", 400, "INVALID_ARGUMENT"},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.method + " " + c.target);
    const HttpResult got = Call(server_.port(), c.method, c.target, c.body);
    EXPECT_EQ(got.status, c.status);
    Result<JsonValue> doc = ParseJson(got.body);
    ASSERT_TRUE(doc.ok()) << got.body;
    ASSERT_NE(doc.value().Find("error"), nullptr) << got.body;
    ASSERT_NE(doc.value().Find("code"), nullptr) << got.body;
    EXPECT_EQ(doc.value().Find("code")->AsString(), c.code);
  }
}

TEST_F(ServeHttpTest, TopKReportsCoalescedFieldOnSingleRequests) {
  const HttpResult got =
      Call(server_.port(), "GET", "/topk?seeds=1,2&k=3");
  ASSERT_EQ(got.status, 200) << got.body;
  Result<JsonValue> doc = ParseJson(got.body);
  ASSERT_TRUE(doc.ok());
  ASSERT_NE(doc.value().Find("coalesced"), nullptr);
  EXPECT_FALSE(doc.value().Find("coalesced")->AsBool());
  EXPECT_EQ(doc.value().Find("results")->size(), 3u);
}

TEST_F(ServeHttpTest, MemPressureShedCarriesRetryAfterHeader) {
  // Headroom alone exceeds the 1-byte budget, so the shed fires no
  // matter what the accounting plane currently holds.
  obs::SetMemoryBudget({1, 2});
  const HttpResult shed = Call(server_.port(), "GET", "/topk?seeds=1&k=3");
  EXPECT_EQ(shed.status, 503);
  Result<JsonValue> doc = ParseJson(shed.body);
  ASSERT_TRUE(doc.ok()) << shed.body;
  EXPECT_EQ(doc.value().Find("code")->AsString(), "MEM_PRESSURE");
  // The same backoff hint the 429 OVERLOADED shed sends: clients should
  // treat both shed flavors identically.
  EXPECT_EQ(shed.HeaderOr("Retry-After", ""), "1") << shed.headers;

  // Budget cleared: the same query serves again.
  obs::SetMemoryBudget({0, 0});
  EXPECT_EQ(Call(server_.port(), "GET", "/topk?seeds=1&k=3").status, 200);
}

TEST(ServeHttpRpczTest, RpczCountsEveryRequestOnAReusedConnection) {
  obs::MetricsRegistry registry;
  obs::RpczRegistry rpcz(&registry);
  InfluenceService service = MakeService(32, 4);
  obs::StatsServer server({}, &registry);
  server.SetRequestObservability({&rpcz, nullptr, nullptr});
  RegisterServeEndpoints(&server, &service);
  obs::RegisterRequestObsEndpoints(&server, &rpcz, nullptr);
  ASSERT_TRUE(server.Start().ok());

  // Four requests pipelined down ONE keep-alive connection via the
  // client's raw-wire surface (framing driven by hand, read back one
  // framed response at a time).
  obs::HttpClient client(server.port());
  std::string burst;
  for (int i = 0; i < 3; ++i) {
    burst += obs::HttpClient::FormatRequest(
        "GET", "/score?candidate=5&seeds=1,2", "t", "");
  }
  burst += obs::HttpClient::FormatRequest(
      "GET", "/score?candidate=5&seeds=1,2", "t", "", {},
      /*keep_alive=*/false);
  ASSERT_TRUE(client.SendRaw(burst, /*deadline_ms=*/5000));
  // Four 200s and four distinct request ids came back.
  std::vector<std::string> ids;
  for (int i = 0; i < 4; ++i) {
    obs::HttpClientResponse response;
    ASSERT_TRUE(client.ReadResponse(&response, /*deadline_ms=*/5000)) << i;
    EXPECT_EQ(response.status, 200) << i;
    const std::string id = response.HeaderOr("X-Request-Id", "");
    EXPECT_FALSE(id.empty()) << i;
    ids.push_back(id);
  }
  EXPECT_TRUE(client.AtEof());
  ASSERT_EQ(ids.size(), 4u);
  for (size_t i = 1; i < ids.size(); ++i) EXPECT_NE(ids[0], ids[i]);

  // /rpcz saw one row PER REQUEST, not per connection.
  const HttpResult rpcz_response = Call(server.port(), "GET", "/rpcz");
  ASSERT_EQ(rpcz_response.status, 200);
  Result<JsonValue> doc = ParseJson(rpcz_response.body);
  ASSERT_TRUE(doc.ok()) << rpcz_response.body;
  const JsonValue* endpoint =
      doc.value().Find("endpoints")->Find("/score");
  ASSERT_NE(endpoint, nullptr) << rpcz_response.body;
  EXPECT_EQ(endpoint->Find("requests")->AsInt(), 4);
  server.Stop();
}

}  // namespace
}  // namespace serve
}  // namespace inf2vec
