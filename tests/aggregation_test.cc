#include "core/aggregation.h"

#include <vector>

#include <gtest/gtest.h>

namespace inf2vec {
namespace {

const std::vector<double> kScores = {1.0, -2.0, 4.0, 0.5};

TEST(AggregationTest, Ave) {
  EXPECT_DOUBLE_EQ(Aggregate(Aggregation::kAve, kScores), 3.5 / 4.0);
}

TEST(AggregationTest, Sum) {
  EXPECT_DOUBLE_EQ(Aggregate(Aggregation::kSum, kScores), 3.5);
}

TEST(AggregationTest, Max) {
  EXPECT_DOUBLE_EQ(Aggregate(Aggregation::kMax, kScores), 4.0);
}

TEST(AggregationTest, LatestTakesLastElement) {
  EXPECT_DOUBLE_EQ(Aggregate(Aggregation::kLatest, kScores), 0.5);
}

TEST(AggregationTest, SingleElementAllAgree) {
  const std::vector<double> one = {2.5};
  for (Aggregation kind : {Aggregation::kAve, Aggregation::kSum,
                           Aggregation::kMax, Aggregation::kLatest}) {
    EXPECT_DOUBLE_EQ(Aggregate(kind, one), 2.5);
  }
}

TEST(AggregationTest, EmptyScoresDie) {
  const std::vector<double> empty;
  EXPECT_DEATH(Aggregate(Aggregation::kAve, empty), "empty");
}

TEST(AggregationTest, NamesRoundTrip) {
  for (Aggregation kind : {Aggregation::kAve, Aggregation::kSum,
                           Aggregation::kMax, Aggregation::kLatest}) {
    auto parsed = ParseAggregation(AggregationName(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), kind);
  }
}

TEST(AggregationTest, ParseRejectsUnknown) {
  EXPECT_FALSE(ParseAggregation("median").ok());
  EXPECT_FALSE(ParseAggregation("ave").ok());  // Case-sensitive.
}

}  // namespace
}  // namespace inf2vec
