#include "eval/metrics.h"

#include <gtest/gtest.h>

namespace inf2vec {
namespace {

TEST(AucTest, PerfectRankingIsOne) {
  const RankedQuery q = {{0.9, 0.8, 0.2, 0.1}, {true, true, false, false}};
  EXPECT_DOUBLE_EQ(AucByRank(q), 1.0);
}

TEST(AucTest, InvertedRankingIsZero) {
  const RankedQuery q = {{0.1, 0.2, 0.8, 0.9}, {true, true, false, false}};
  EXPECT_DOUBLE_EQ(AucByRank(q), 0.0);
}

TEST(AucTest, AllTiedScoresGiveHalf) {
  const RankedQuery q = {{0.5, 0.5, 0.5, 0.5}, {true, false, true, false}};
  EXPECT_DOUBLE_EQ(AucByRank(q), 0.5);
}

TEST(AucTest, KnownMixedCase) {
  // scores: pos {0.8, 0.4}, neg {0.6, 0.2}. Pairs won: (0.8 vs both)=2,
  // (0.4 vs 0.2)=1 -> 3/4.
  const RankedQuery q = {{0.8, 0.4, 0.6, 0.2}, {true, true, false, false}};
  EXPECT_DOUBLE_EQ(AucByRank(q), 0.75);
}

TEST(AucTest, DegenerateClassesReturnHalf) {
  EXPECT_DOUBLE_EQ(AucByRank({{1.0, 2.0}, {true, true}}), 0.5);
  EXPECT_DOUBLE_EQ(AucByRank({{1.0, 2.0}, {false, false}}), 0.5);
}

TEST(AucTest, PartialTieUsesAverageRank) {
  // pos: 0.5; neg: 0.5, 0.1. Tie with one neg -> 0.5 credit; win vs 0.1.
  // AUC = (0.5 + 1) / 2 = 0.75.
  const RankedQuery q = {{0.5, 0.5, 0.1}, {true, false, false}};
  EXPECT_DOUBLE_EQ(AucByRank(q), 0.75);
}

TEST(AveragePrecisionTest, PerfectRanking) {
  const RankedQuery q = {{0.9, 0.8, 0.2, 0.1}, {true, true, false, false}};
  EXPECT_DOUBLE_EQ(AveragePrecision(q), 1.0);
}

TEST(AveragePrecisionTest, KnownValue) {
  // Ranking: pos, neg, pos -> AP = (1/1 + 2/3) / 2 = 5/6.
  const RankedQuery q = {{0.9, 0.5, 0.4}, {true, false, true}};
  EXPECT_DOUBLE_EQ(AveragePrecision(q), 5.0 / 6.0);
}

TEST(AveragePrecisionTest, NoPositivesIsZero) {
  const RankedQuery q = {{0.9, 0.5}, {false, false}};
  EXPECT_DOUBLE_EQ(AveragePrecision(q), 0.0);
}

TEST(PrecisionAtNTest, CountsTopN) {
  const RankedQuery q = {{0.9, 0.8, 0.7, 0.1},
                         {true, false, true, true}};
  EXPECT_DOUBLE_EQ(PrecisionAtN(q, 1), 1.0);
  EXPECT_DOUBLE_EQ(PrecisionAtN(q, 2), 0.5);
  EXPECT_DOUBLE_EQ(PrecisionAtN(q, 3), 2.0 / 3.0);
}

TEST(PrecisionAtNTest, ShrinksDenominatorForSmallQueries) {
  const RankedQuery q = {{0.9, 0.1}, {true, false}};
  EXPECT_DOUBLE_EQ(PrecisionAtN(q, 10), 0.5);
}

TEST(PrecisionAtNTest, EmptyAndZeroN) {
  EXPECT_DOUBLE_EQ(PrecisionAtN({{}, {}}, 10), 0.0);
  EXPECT_DOUBLE_EQ(PrecisionAtN({{0.5}, {true}}, 0), 0.0);
}

TEST(AggregateQueriesTest, MacroAveragesAndSkipsDegenerate) {
  std::vector<RankedQuery> queries;
  queries.push_back({{0.9, 0.1}, {true, false}});   // AUC 1.
  queries.push_back({{0.1, 0.9}, {true, false}});   // AUC 0.
  queries.push_back({{0.5, 0.4}, {true, true}});    // Degenerate: skipped.
  queries.push_back({{0.5, 0.4}, {false, false}});  // Degenerate: skipped.
  const RankingMetrics m = AggregateQueries(queries);
  EXPECT_EQ(m.num_queries, 2u);
  EXPECT_DOUBLE_EQ(m.auc, 0.5);
}

TEST(AggregateQueriesTest, EmptyInput) {
  const RankingMetrics m = AggregateQueries({});
  EXPECT_EQ(m.num_queries, 0u);
  EXPECT_DOUBLE_EQ(m.auc, 0.0);
}

TEST(SummarizeRunsTest, MeanAndStdev) {
  RankingMetrics a;
  a.auc = 0.8;
  a.map = 0.2;
  RankingMetrics b;
  b.auc = 0.6;
  b.map = 0.4;
  const MetricsSummary s = SummarizeRuns({a, b});
  EXPECT_EQ(s.runs, 2u);
  EXPECT_DOUBLE_EQ(s.mean.auc, 0.7);
  EXPECT_DOUBLE_EQ(s.stdev.auc, 0.1);
  EXPECT_DOUBLE_EQ(s.mean.map, 0.3);
  EXPECT_DOUBLE_EQ(s.stdev.map, 0.1);
}

TEST(SummarizeRunsTest, SingleRunHasZeroStdev) {
  RankingMetrics a;
  a.auc = 0.8;
  const MetricsSummary s = SummarizeRuns({a});
  EXPECT_DOUBLE_EQ(s.mean.auc, 0.8);
  EXPECT_DOUBLE_EQ(s.stdev.auc, 0.0);
}

TEST(SummarizeRunsTest, EmptyRuns) {
  const MetricsSummary s = SummarizeRuns({});
  EXPECT_EQ(s.runs, 0u);
}

}  // namespace
}  // namespace inf2vec
