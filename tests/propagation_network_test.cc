#include "diffusion/propagation_network.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace inf2vec {
namespace {

SocialGraph Fig5Graph() {
  GraphBuilder builder(5);
  builder.AddEdge(3, 4);
  builder.AddEdge(1, 2);
  builder.AddEdge(3, 0);
  builder.AddEdge(2, 0);
  builder.AddEdge(0, 1);
  return std::move(builder.Build()).value();
}

DiffusionEpisode Fig5Episode() {
  DiffusionEpisode e(7);
  e.Add(3, 1);
  e.Add(1, 2);
  e.Add(2, 3);
  e.Add(0, 4);
  e.Add(4, 5);
  EXPECT_TRUE(e.Finalize().ok());
  return e;
}

TEST(PropagationNetworkTest, BuildsFig5Network) {
  const SocialGraph g = Fig5Graph();
  const PropagationNetwork net(g, Fig5Episode());

  EXPECT_EQ(net.item(), 7u);
  EXPECT_EQ(net.num_users(), 5u);
  EXPECT_EQ(net.num_edges(), 4u);

  // u4 (id 3) -> {u5 (4), u1 (0)}.
  std::vector<UserId> succ3 = net.Successors(3);
  std::sort(succ3.begin(), succ3.end());
  EXPECT_EQ(succ3, (std::vector<UserId>{0, 4}));
  EXPECT_EQ(net.Successors(1), std::vector<UserId>{2});
  EXPECT_EQ(net.Successors(2), std::vector<UserId>{0});
  EXPECT_TRUE(net.Successors(4).empty());
  EXPECT_TRUE(net.Successors(0).empty());
}

TEST(PropagationNetworkTest, UsersPreserveAdoptionOrder) {
  const SocialGraph g = Fig5Graph();
  const PropagationNetwork net(g, Fig5Episode());
  EXPECT_EQ(net.users(), (std::vector<UserId>{3, 1, 2, 0, 4}));
}

TEST(PropagationNetworkTest, ContainsUser) {
  GraphBuilder builder(6);
  builder.AddEdge(0, 1);
  const SocialGraph g = std::move(builder.Build()).value();
  DiffusionEpisode e(0);
  e.Add(0, 1);
  e.Add(1, 2);
  ASSERT_TRUE(e.Finalize().ok());
  const PropagationNetwork net(g, e);
  EXPECT_TRUE(net.ContainsUser(0));
  EXPECT_TRUE(net.ContainsUser(1));
  EXPECT_FALSE(net.ContainsUser(5));
}

TEST(PropagationNetworkTest, AbsentUserHasNoSuccessors) {
  const SocialGraph g = Fig5Graph();
  const PropagationNetwork net(g, Fig5Episode());
  DiffusionEpisode small(1);
  small.Add(3, 1);
  ASSERT_TRUE(small.Finalize().ok());
  const PropagationNetwork tiny(g, small);
  EXPECT_TRUE(tiny.Successors(4).empty());
}

TEST(PropagationNetworkTest, IsAcyclicOnTimeOrderedData) {
  const SocialGraph g = Fig5Graph();
  const PropagationNetwork net(g, Fig5Episode());
  EXPECT_TRUE(net.IsAcyclic());
}

TEST(PropagationNetworkTest, EmptyEpisode) {
  const SocialGraph g = Fig5Graph();
  DiffusionEpisode e(0);
  ASSERT_TRUE(e.Finalize().ok());
  const PropagationNetwork net(g, e);
  EXPECT_EQ(net.num_users(), 0u);
  EXPECT_EQ(net.num_edges(), 0u);
  EXPECT_TRUE(net.IsAcyclic());
}

TEST(PropagationNetworkTest, MultipleParentsAndChildren) {
  // Diamond: 0 -> {1, 2} -> 3.
  GraphBuilder builder(4);
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 2);
  builder.AddEdge(1, 3);
  builder.AddEdge(2, 3);
  const SocialGraph g = std::move(builder.Build()).value();
  DiffusionEpisode e(0);
  e.Add(0, 1);
  e.Add(1, 2);
  e.Add(2, 3);
  e.Add(3, 4);
  ASSERT_TRUE(e.Finalize().ok());
  const PropagationNetwork net(g, e);
  EXPECT_EQ(net.num_edges(), 4u);
  EXPECT_EQ(net.OutDegree(0), 2u);
  EXPECT_TRUE(net.IsAcyclic());
}

class PropagationNetworkPropertyTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PropagationNetworkPropertyTest, AlwaysAcyclicOnRandomEpisodes) {
  Rng rng(GetParam());
  GraphBuilder builder(40);
  for (int i = 0; i < 400; ++i) {
    const UserId u = static_cast<UserId>(rng.UniformU64(40));
    const UserId v = static_cast<UserId>(rng.UniformU64(40));
    if (u != v) builder.AddEdge(u, v);
  }
  const SocialGraph g = std::move(builder.Build()).value();

  for (int trial = 0; trial < 10; ++trial) {
    DiffusionEpisode e(trial);
    const uint32_t participants = 5 + rng.UniformU64(30);
    for (uint32_t i = 0; i < participants; ++i) {
      e.Add(static_cast<UserId>(rng.UniformU64(40)),
            static_cast<Timestamp>(rng.UniformU64(1000)));
    }
    ASSERT_TRUE(e.Finalize().ok());
    const PropagationNetwork net(g, e);
    EXPECT_TRUE(net.IsAcyclic());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropagationNetworkPropertyTest,
                         ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace inf2vec
