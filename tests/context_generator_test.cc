#include "diffusion/context_generator.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace inf2vec {
namespace {

SocialGraph DenseDag() {
  // Complete DAG over 8 nodes: i -> j for i < j.
  GraphBuilder builder(8);
  for (UserId i = 0; i < 8; ++i) {
    for (UserId j = i + 1; j < 8; ++j) builder.AddEdge(i, j);
  }
  return std::move(builder.Build()).value();
}

PropagationNetwork DenseNetwork(const SocialGraph& g) {
  DiffusionEpisode e(0);
  for (UserId u = 0; u < 8; ++u) e.Add(u, u + 1);
  EXPECT_TRUE(e.Finalize().ok());
  return PropagationNetwork(g, e);
}

TEST(ContextGeneratorTest, BudgetSplitFollowsAlpha) {
  const SocialGraph g = DenseDag();
  const PropagationNetwork net = DenseNetwork(g);
  Rng rng(1);
  ContextOptions opts;
  opts.length = 20;
  opts.alpha = 0.5;
  const InfluenceContext ctx = GenerateInfluenceContext(net, 0, opts, rng);
  EXPECT_EQ(ctx.user, 0u);
  // Start node 0 reaches everyone; both halves fill completely: 10 local +
  // min(10, 7 distinct) global.
  EXPECT_GE(ctx.context.size(), 15u);
  EXPECT_LE(ctx.context.size(), 20u);
}

TEST(ContextGeneratorTest, AlphaOneIsLocalOnly) {
  const SocialGraph g = DenseDag();
  const PropagationNetwork net = DenseNetwork(g);
  Rng rng(2);
  ContextOptions opts;
  opts.length = 12;
  opts.alpha = 1.0;
  const InfluenceContext ctx = GenerateInfluenceContext(net, 7, opts, rng);
  // Node 7 is a sink: pure local context must be empty.
  EXPECT_TRUE(ctx.context.empty());
}

TEST(ContextGeneratorTest, AlphaZeroIsGlobalOnly) {
  const SocialGraph g = DenseDag();
  const PropagationNetwork net = DenseNetwork(g);
  Rng rng(3);
  ContextOptions opts;
  opts.length = 6;
  opts.alpha = 0.0;
  const InfluenceContext ctx = GenerateInfluenceContext(net, 7, opts, rng);
  // Sink node still gets global-similarity context.
  EXPECT_EQ(ctx.context.size(), 6u);
}

TEST(ContextGeneratorTest, EgoNeverInOwnContext) {
  const SocialGraph g = DenseDag();
  const PropagationNetwork net = DenseNetwork(g);
  Rng rng(4);
  ContextOptions opts;
  opts.length = 30;
  opts.alpha = 0.3;
  for (UserId u = 0; u < 8; ++u) {
    const InfluenceContext ctx = GenerateInfluenceContext(net, u, opts, rng);
    EXPECT_EQ(std::count(ctx.context.begin(), ctx.context.end(), u), 0)
        << "ego " << u << " leaked into its own context";
  }
}

TEST(ContextGeneratorTest, ContextMembersAreEpisodeParticipants) {
  const SocialGraph g = DenseDag();
  // Episode covering only a subset {0, 2, 4}.
  DiffusionEpisode e(0);
  e.Add(0, 1);
  e.Add(2, 2);
  e.Add(4, 3);
  ASSERT_TRUE(e.Finalize().ok());
  const PropagationNetwork net(g, e);
  Rng rng(5);
  ContextOptions opts;
  opts.length = 10;
  opts.alpha = 0.5;
  const InfluenceContext ctx = GenerateInfluenceContext(net, 0, opts, rng);
  const std::set<UserId> allowed = {2, 4};
  for (UserId v : ctx.context) EXPECT_TRUE(allowed.contains(v));
}

TEST(ContextGeneratorTest, GlobalSamplesDistinctWhenPoolLarge) {
  const SocialGraph g = DenseDag();
  const PropagationNetwork net = DenseNetwork(g);
  Rng rng(6);
  ContextOptions opts;
  opts.length = 4;
  opts.alpha = 0.0;
  opts.global_with_replacement = false;
  const InfluenceContext ctx = GenerateInfluenceContext(net, 0, opts, rng);
  const std::set<UserId> unique(ctx.context.begin(), ctx.context.end());
  EXPECT_EQ(unique.size(), ctx.context.size());
}

TEST(ContextGeneratorTest, EpisodeContextsSkipEmptyOnes) {
  GraphBuilder builder(3);
  const SocialGraph g = std::move(builder.Build()).value();  // No edges.
  DiffusionEpisode e(0);
  e.Add(0, 1);
  ASSERT_TRUE(e.Finalize().ok());
  const PropagationNetwork net(g, e);
  Rng rng(7);
  ContextOptions opts;
  opts.length = 5;
  // Single participant, no edges: neither local nor global context exists.
  EXPECT_TRUE(GenerateEpisodeContexts(net, opts, rng).empty());
}

TEST(ContextGeneratorTest, EpisodeContextsCoverParticipants) {
  const SocialGraph g = DenseDag();
  const PropagationNetwork net = DenseNetwork(g);
  Rng rng(8);
  ContextOptions opts;
  opts.length = 10;
  opts.alpha = 0.1;
  const std::vector<InfluenceContext> contexts =
      GenerateEpisodeContexts(net, opts, rng);
  EXPECT_EQ(contexts.size(), 8u);  // Everyone gets global context at least.
}

class ContextAlphaSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(ContextAlphaSweepTest, SizeNeverExceedsLength) {
  const double alpha = GetParam();
  const SocialGraph g = DenseDag();
  const PropagationNetwork net = DenseNetwork(g);
  Rng rng(9);
  ContextOptions opts;
  opts.length = 16;
  opts.alpha = alpha;
  for (UserId u = 0; u < 8; ++u) {
    const InfluenceContext ctx = GenerateInfluenceContext(net, u, opts, rng);
    EXPECT_LE(ctx.context.size(), opts.length);
  }
}

INSTANTIATE_TEST_SUITE_P(Alphas, ContextAlphaSweepTest,
                         ::testing::Values(0.0, 0.1, 0.25, 0.5, 0.75, 1.0));

}  // namespace
}  // namespace inf2vec
