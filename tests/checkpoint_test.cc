// Checkpoint subsystem tests. The headline pin is kill-and-resume
// bit-identity: a serial run interrupted after epoch k and resumed from its
// checkpoint must finish with embeddings byte-for-byte equal to a run that
// was never interrupted.

#include "ckpt/checkpoint.h"

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "synth/world_generator.h"
#include "util/io.h"

namespace inf2vec {
namespace ckpt {
namespace {

/// Tiny world for fast checkpoint tests.
synth::World TinyWorld(uint64_t seed) {
  synth::WorldProfile profile = synth::WorldProfile::DiggLike();
  profile.num_users = 200;
  profile.num_items = 40;
  profile.mean_out_degree = 5.0;
  Rng rng(seed);
  auto world = synth::GenerateWorld(profile, rng);
  EXPECT_TRUE(world.ok());
  return std::move(world).value();
}

Inf2vecConfig SmallConfig() {
  Inf2vecConfig config;
  config.dim = 8;
  config.epochs = 6;
  config.context.length = 8;
  config.seed = 11;
  return config;
}

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("inf2vec_ckpt_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::vector<std::string> CheckpointFiles() const {
    std::vector<std::string> files;
    if (!std::filesystem::exists(dir_)) return files;
    for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("ckpt-", 0) == 0) files.push_back(name);
    }
    std::sort(files.begin(), files.end());
    return files;
  }

  std::filesystem::path dir_;
};

/// A checkpoint state with non-trivial content in every section.
CheckpointState MakeState() {
  CheckpointState state;
  state.config_hash = 0xdeadbeefcafef00dULL;
  state.epochs_completed = 3;
  state.total_epochs = 7;
  state.store = EmbeddingStore(5, 4);
  Rng rng(9);
  state.store.InitUniform(-0.3, 0.3, rng);
  for (UserId u = 0; u < 5; ++u) {
    state.store.mutable_source_bias(u) = rng.UniformDouble(-0.1, 0.1);
    state.store.mutable_target_bias(u) = rng.UniformDouble(-0.1, 0.1);
  }
  state.pairs = {{0, 1}, {2, 3}, {4, 0}, {1, 2}};
  state.target_frequencies = {1, 1, 1, 1, 0};
  state.master_rng = Rng(21).state();
  state.shard_rngs = {Rng(31).state(), Rng(32).state()};
  return state;
}

TEST_F(CheckpointTest, SerializeDeserializeRoundTripsEveryField) {
  const CheckpointState state = MakeState();
  const std::string bytes = SerializeCheckpoint(state);
  Result<CheckpointState> got = DeserializeCheckpoint(bytes);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got.value().config_hash, state.config_hash);
  EXPECT_EQ(got.value().epochs_completed, state.epochs_completed);
  EXPECT_EQ(got.value().total_epochs, state.total_epochs);
  EXPECT_EQ(got.value().store, state.store);
  EXPECT_EQ(got.value().pairs, state.pairs);
  EXPECT_EQ(got.value().target_frequencies, state.target_frequencies);
  EXPECT_EQ(got.value().master_rng, state.master_rng);
  EXPECT_EQ(got.value().shard_rngs, state.shard_rngs);
}

TEST_F(CheckpointTest, FileRoundTripIsAtomicAndLossless) {
  const CheckpointState state = MakeState();
  const std::string path = (dir_ / "x.bin").string();
  std::filesystem::create_directories(dir_);
  ASSERT_TRUE(WriteCheckpointFile(path, state).ok());
  // No tmp leftovers from the atomic commit.
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    EXPECT_EQ(entry.path().filename().string().find(".tmp."),
              std::string::npos);
  }
  Result<CheckpointState> got = ReadCheckpointFile(path);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got.value().store, state.store);
  EXPECT_EQ(got.value().master_rng, state.master_rng);
}

TEST_F(CheckpointTest, TruncatedBytesAreInvalidNotACrash) {
  const std::string bytes = SerializeCheckpoint(MakeState());
  // Chop at several depths: inside the magic, inside a section header,
  // inside a payload, and just before the final CRC.
  for (size_t keep : {size_t{0}, size_t{4}, size_t{9}, size_t{20},
                      bytes.size() / 2, bytes.size() - 1}) {
    Result<CheckpointState> got =
        DeserializeCheckpoint(bytes.substr(0, keep));
    EXPECT_EQ(got.status().code(), StatusCode::kInvalidArgument)
        << "keep=" << keep << ": " << got.status().ToString();
  }
}

TEST_F(CheckpointTest, FlippedPayloadByteFailsTheCrc) {
  std::string bytes = SerializeCheckpoint(MakeState());
  // Flip a byte deep inside the embeddings payload (well past the headers).
  bytes[bytes.size() / 2] ^= 0x40;
  Result<CheckpointState> got = DeserializeCheckpoint(bytes);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(got.status().message().find("CRC"), std::string::npos)
      << got.status().ToString();
}

TEST_F(CheckpointTest, WrongMagicIsRejected) {
  std::string bytes = SerializeCheckpoint(MakeState());
  bytes[0] = 'X';
  EXPECT_EQ(DeserializeCheckpoint(bytes).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(CheckpointTest, HashIgnoresEpochsButNothingElse) {
  const Inf2vecConfig base = SmallConfig();
  Inf2vecConfig more_epochs = base;
  more_epochs.epochs = base.epochs + 10;
  EXPECT_EQ(HashTrainingConfig(base), HashTrainingConfig(more_epochs));

  Inf2vecConfig other_dim = base;
  other_dim.dim = base.dim + 1;
  EXPECT_NE(HashTrainingConfig(base), HashTrainingConfig(other_dim));

  Inf2vecConfig other_seed = base;
  other_seed.seed = base.seed + 1;
  EXPECT_NE(HashTrainingConfig(base), HashTrainingConfig(other_seed));

  Inf2vecConfig other_lr = base;
  other_lr.sgd.learning_rate *= 2;
  EXPECT_NE(HashTrainingConfig(base), HashTrainingConfig(other_lr));

  Inf2vecConfig other_threads = base;
  other_threads.num_threads = 2;
  EXPECT_NE(HashTrainingConfig(base), HashTrainingConfig(other_threads));
}

TEST_F(CheckpointTest, LatestCheckpointInEmptyDirIsNotFound) {
  std::filesystem::create_directories(dir_);
  EXPECT_EQ(LatestCheckpointFile(dir_.string()).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(ReadLatestCheckpoint(dir_.string(), 1).status().code(),
            StatusCode::kNotFound);
}

TEST_F(CheckpointTest, KillAndResumeIsBitIdentical) {
  const synth::World world = TinyWorld(1);
  const Inf2vecConfig config = SmallConfig();  // Serial: num_threads == 1.
  const uint64_t hash = HashTrainingConfig(config);

  // Reference: the uninterrupted run.
  Result<Inf2vecModel> uninterrupted =
      Inf2vecModel::Train(world.graph, world.log, config);
  ASSERT_TRUE(uninterrupted.ok());

  // "Kill" the same run after epoch 3: checkpoint every epoch, then make
  // the callback fail once epoch 3 has been persisted — exactly what a
  // SIGKILL between epochs 3 and 4 leaves on disk.
  CheckpointOptions options;
  options.dir = dir_.string();
  options.keep_last_n = 0;
  CheckpointWriter writer(options, hash);
  Inf2vecConfig killed = config;
  killed.checkpoint_callback = [&](const TrainCheckpointView& view) {
    const Status written = writer.MaybeWrite(view);
    if (!written.ok()) return written;
    if (view.epochs_completed == 3) return Status::Internal("simulated kill");
    return Status::OK();
  };
  Result<Inf2vecModel> partial =
      Inf2vecModel::Train(world.graph, world.log, killed);
  ASSERT_FALSE(partial.ok());
  EXPECT_EQ(partial.status().code(), StatusCode::kInternal);

  // Resume from disk under the original config and finish the run.
  Result<CheckpointState> state = ReadLatestCheckpoint(dir_.string(), hash);
  ASSERT_TRUE(state.ok()) << state.status().ToString();
  EXPECT_EQ(state.value().epochs_completed, 3u);
  Result<Inf2vecModel> resumed =
      Inf2vecModel::ResumeFromState(ToResumeState(std::move(state).value()),
                                    config);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();

  // Bit-identical, not approximately equal: resume re-enters the exact
  // shuffle/SGD stream the uninterrupted run would have used.
  EXPECT_EQ(resumed.value().embeddings(), uninterrupted.value().embeddings());
}

TEST_F(CheckpointTest, WarmRestartExtendsEpochsBitIdentically) {
  const synth::World world = TinyWorld(2);
  Inf2vecConfig short_run = SmallConfig();
  short_run.epochs = 3;
  Inf2vecConfig long_run = SmallConfig();
  long_run.epochs = 6;
  // Only epochs differs, so both configs share one hash (and directory).
  ASSERT_EQ(HashTrainingConfig(short_run), HashTrainingConfig(long_run));

  CheckpointOptions options;
  options.dir = dir_.string();
  CheckpointWriter writer(options, HashTrainingConfig(short_run));
  short_run.checkpoint_callback = writer.AsCallback();
  ASSERT_TRUE(Inf2vecModel::Train(world.graph, world.log, short_run).ok());

  Result<CheckpointState> state =
      ReadLatestCheckpoint(dir_.string(), HashTrainingConfig(long_run));
  ASSERT_TRUE(state.ok()) << state.status().ToString();
  Result<Inf2vecModel> extended = Inf2vecModel::ResumeFromState(
      ToResumeState(std::move(state).value()), long_run);
  ASSERT_TRUE(extended.ok()) << extended.status().ToString();

  Result<Inf2vecModel> reference =
      Inf2vecModel::Train(world.graph, world.log, long_run);
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(extended.value().embeddings(), reference.value().embeddings());
}

TEST_F(CheckpointTest, ResumeUnderChangedConfigIsRejected) {
  const synth::World world = TinyWorld(3);
  Inf2vecConfig config = SmallConfig();
  CheckpointOptions options;
  options.dir = dir_.string();
  CheckpointWriter writer(options, HashTrainingConfig(config));
  config.checkpoint_callback = writer.AsCallback();
  ASSERT_TRUE(Inf2vecModel::Train(world.graph, world.log, config).ok());

  Inf2vecConfig changed = SmallConfig();
  changed.sgd.learning_rate *= 0.5;
  Result<CheckpointState> state =
      ReadLatestCheckpoint(dir_.string(), HashTrainingConfig(changed));
  EXPECT_EQ(state.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(CheckpointTest, WriterRejectsDirectoryOfAnotherConfig) {
  const synth::World world = TinyWorld(4);
  Inf2vecConfig config = SmallConfig();
  CheckpointOptions options;
  options.dir = dir_.string();
  CheckpointWriter writer(options, HashTrainingConfig(config));
  config.checkpoint_callback = writer.AsCallback();
  ASSERT_TRUE(Inf2vecModel::Train(world.graph, world.log, config).ok());

  // A second run with a different seed must refuse to write into the same
  // directory instead of interleaving incompatible checkpoints.
  Inf2vecConfig other = SmallConfig();
  other.seed = 999;
  CheckpointWriter other_writer(options, HashTrainingConfig(other));
  other.checkpoint_callback = other_writer.AsCallback();
  Result<Inf2vecModel> run =
      Inf2vecModel::Train(world.graph, world.log, other);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(CheckpointTest, RetentionKeepsOnlyTheNewestN) {
  const synth::World world = TinyWorld(5);
  Inf2vecConfig config = SmallConfig();  // 6 epochs.
  CheckpointOptions options;
  options.dir = dir_.string();
  options.keep_last_n = 2;
  CheckpointWriter writer(options, HashTrainingConfig(config));
  config.checkpoint_callback = writer.AsCallback();
  ASSERT_TRUE(Inf2vecModel::Train(world.graph, world.log, config).ok());

  const std::vector<std::string> files = CheckpointFiles();
  ASSERT_EQ(files.size(), 2u) << "retention left the wrong file count";
  EXPECT_EQ(files[0], "ckpt-000005.bin");
  EXPECT_EQ(files[1], "ckpt-000006.bin");

  // The manifest agrees with the filesystem and resolves to the newest.
  Result<std::string> latest = LatestCheckpointFile(dir_.string());
  ASSERT_TRUE(latest.ok());
  EXPECT_NE(latest.value().find("ckpt-000006.bin"), std::string::npos);
}

TEST_F(CheckpointTest, CadenceWritesEveryNthEpochOnly) {
  const synth::World world = TinyWorld(6);
  Inf2vecConfig config = SmallConfig();
  config.epochs = 5;
  CheckpointOptions options;
  options.dir = dir_.string();
  options.every = 2;
  options.keep_last_n = 0;  // Keep everything; count the cadence.
  CheckpointWriter writer(options, HashTrainingConfig(config));
  config.checkpoint_callback = writer.AsCallback();
  ASSERT_TRUE(Inf2vecModel::Train(world.graph, world.log, config).ok());

  const std::vector<std::string> files = CheckpointFiles();
  ASSERT_EQ(files.size(), 2u);
  EXPECT_EQ(files[0], "ckpt-000002.bin");
  EXPECT_EQ(files[1], "ckpt-000004.bin");
}

TEST_F(CheckpointTest, HogwildCheckpointResumesAndFinishes) {
  const synth::World world = TinyWorld(7);
  Inf2vecConfig config = SmallConfig();
  config.num_threads = 2;
  const uint64_t hash = HashTrainingConfig(config);
  CheckpointOptions options;
  options.dir = dir_.string();
  CheckpointWriter writer(options, hash);
  Inf2vecConfig killed = config;
  killed.checkpoint_callback = [&](const TrainCheckpointView& view) {
    const Status written = writer.MaybeWrite(view);
    if (!written.ok()) return written;
    if (view.epochs_completed == 2) return Status::Internal("simulated kill");
    return Status::OK();
  };
  ASSERT_FALSE(Inf2vecModel::Train(world.graph, world.log, killed).ok());

  Result<CheckpointState> state = ReadLatestCheckpoint(dir_.string(), hash);
  ASSERT_TRUE(state.ok()) << state.status().ToString();
  ASSERT_EQ(state.value().shard_rngs.size(), 2u);
  Result<Inf2vecModel> resumed = Inf2vecModel::ResumeFromState(
      ToResumeState(std::move(state).value()), config);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(resumed.value().embeddings().num_users(),
            world.graph.num_users());

  // Resuming a 2-shard checkpoint under a different thread count must be
  // refused — the Hogwild RNG sharding would no longer line up.
  Result<CheckpointState> again = ReadLatestCheckpoint(dir_.string(), hash);
  ASSERT_TRUE(again.ok());
  Inf2vecConfig serial = config;
  serial.num_threads = 1;
  Result<Inf2vecModel> mismatched = Inf2vecModel::ResumeFromState(
      ToResumeState(std::move(again).value()), serial);
  EXPECT_EQ(mismatched.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace ckpt
}  // namespace inf2vec
