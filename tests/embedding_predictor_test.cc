#include "core/embedding_predictor.h"

#include <gtest/gtest.h>

namespace inf2vec {
namespace {

EmbeddingStore TinyStore() {
  // 3 users, dim 1. Score(u, v) = s_u * t_v + b_u + bt_v.
  EmbeddingStore store(3, 1);
  store.Source(0)[0] = 1.0;
  store.Source(1)[0] = 2.0;
  store.Source(2)[0] = -1.0;
  store.Target(0)[0] = 1.0;
  store.Target(1)[0] = 0.5;
  store.Target(2)[0] = 2.0;
  store.mutable_source_bias(0) = 0.1;
  store.mutable_target_bias(2) = 0.2;
  return store;
}

TEST(EmbeddingPredictorTest, ScoreActivationAve) {
  const EmbeddingStore store = TinyStore();
  const EmbeddingPredictor pred("X", &store, Aggregation::kAve);
  // x(0,2) = 1*2 + 0.1 + 0.2 = 2.3 ; x(1,2) = 2*2 + 0 + 0.2 = 4.2.
  EXPECT_NEAR(pred.ScoreActivation(2, {0, 1}), (2.3 + 4.2) / 2.0, 1e-12);
}

TEST(EmbeddingPredictorTest, ScoreActivationLatestUsesOrder) {
  const EmbeddingStore store = TinyStore();
  const EmbeddingPredictor pred("X", &store, Aggregation::kLatest);
  EXPECT_NEAR(pred.ScoreActivation(2, {0, 1}), 4.2, 1e-12);
  EXPECT_NEAR(pred.ScoreActivation(2, {1, 0}), 2.3, 1e-12);
}

TEST(EmbeddingPredictorTest, ScoreActivationMax) {
  const EmbeddingStore store = TinyStore();
  const EmbeddingPredictor pred("X", &store, Aggregation::kMax);
  EXPECT_NEAR(pred.ScoreActivation(2, {0, 1}), 4.2, 1e-12);
}

TEST(EmbeddingPredictorTest, EmptyInfluencersDie) {
  const EmbeddingStore store = TinyStore();
  const EmbeddingPredictor pred("X", &store, Aggregation::kAve);
  EXPECT_DEATH(pred.ScoreActivation(2, {}), "at least one");
}

TEST(EmbeddingPredictorTest, ScoreDiffusionMatchesManualAggregation) {
  const EmbeddingStore store = TinyStore();
  const EmbeddingPredictor pred("X", &store, Aggregation::kAve);
  Rng rng(1);
  const std::vector<double> scores = pred.ScoreDiffusion({0, 1}, rng);
  ASSERT_EQ(scores.size(), 3u);
  for (UserId v = 0; v < 3; ++v) {
    const double expected = (store.Score(0, v) + store.Score(1, v)) / 2.0;
    EXPECT_NEAR(scores[v], expected, 1e-12);
  }
}

TEST(EmbeddingPredictorTest, NameAndAggregationAccessors) {
  const EmbeddingStore store = TinyStore();
  EmbeddingPredictor pred("MyModel", &store, Aggregation::kSum);
  EXPECT_EQ(pred.name(), "MyModel");
  EXPECT_EQ(pred.aggregation(), Aggregation::kSum);
  pred.set_aggregation(Aggregation::kMax);
  EXPECT_EQ(pred.aggregation(), Aggregation::kMax);
}

}  // namespace
}  // namespace inf2vec
