#include "util/io.h"

#include <cstdio>
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

namespace inf2vec {
namespace {

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("inf2vec_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(IoTest, WriteAndReadLinesRoundTrip) {
  const std::vector<std::string> lines = {"alpha", "", "gamma delta"};
  ASSERT_TRUE(WriteLines(Path("a.txt"), lines).ok());
  std::vector<std::string> read;
  ASSERT_TRUE(ReadLines(Path("a.txt"), &read).ok());
  EXPECT_EQ(read, lines);
}

TEST_F(IoTest, ReadLinesStripsCarriageReturns) {
  ASSERT_TRUE(WriteFile(Path("crlf.txt"), "one\r\ntwo\r\n").ok());
  std::vector<std::string> read;
  ASSERT_TRUE(ReadLines(Path("crlf.txt"), &read).ok());
  ASSERT_EQ(read.size(), 2u);
  EXPECT_EQ(read[0], "one");
  EXPECT_EQ(read[1], "two");
}

TEST_F(IoTest, ReadMissingFileFails) {
  std::vector<std::string> lines;
  EXPECT_EQ(ReadLines(Path("missing.txt"), &lines).code(),
            StatusCode::kIOError);
  std::string contents;
  EXPECT_EQ(ReadFile(Path("missing.txt"), &contents).code(),
            StatusCode::kIOError);
}

TEST_F(IoTest, WriteFileBinaryRoundTrip) {
  std::string blob;
  for (int i = 0; i < 256; ++i) blob.push_back(static_cast<char>(i));
  ASSERT_TRUE(WriteFile(Path("bin"), blob).ok());
  std::string read;
  ASSERT_TRUE(ReadFile(Path("bin"), &read).ok());
  EXPECT_EQ(read, blob);
}

TEST_F(IoTest, WriteReplacesExisting) {
  ASSERT_TRUE(WriteFile(Path("f"), "long old contents here").ok());
  ASSERT_TRUE(WriteFile(Path("f"), "new").ok());
  std::string read;
  ASSERT_TRUE(ReadFile(Path("f"), &read).ok());
  EXPECT_EQ(read, "new");
}

TEST_F(IoTest, WriteToBadPathFails) {
  EXPECT_FALSE(WriteFile(Path("no_dir") + "/x/y", "data").ok());
}

}  // namespace
}  // namespace inf2vec
