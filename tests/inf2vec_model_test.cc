#include "core/inf2vec_model.h"

#include <cmath>

#include <gtest/gtest.h>

#include "eval/activation_task.h"
#include "synth/world_generator.h"

namespace inf2vec {
namespace {

/// Tiny world for fast model tests.
synth::World TinyWorld(uint64_t seed) {
  synth::WorldProfile profile = synth::WorldProfile::DiggLike();
  profile.num_users = 300;
  profile.num_items = 60;
  profile.mean_out_degree = 6.0;
  Rng rng(seed);
  auto world = synth::GenerateWorld(profile, rng);
  EXPECT_TRUE(world.ok());
  return std::move(world).value();
}

TEST(BuildInfluenceCorpusTest, ProducesPairsWithinUserSpace) {
  const synth::World world = TinyWorld(1);
  ContextOptions opts;
  opts.length = 10;
  const InfluenceCorpus corpus = BuildInfluenceCorpus(
      world.graph, world.log, opts, world.graph.num_users(),
      CorpusBuildOptions{.seed = 2});
  EXPECT_GT(corpus.pairs.size(), 0u);
  EXPECT_GT(corpus.num_tuples, 0u);
  for (const auto& [u, v] : corpus.pairs) {
    EXPECT_LT(u, world.graph.num_users());
    EXPECT_LT(v, world.graph.num_users());
    EXPECT_NE(u, v);
  }
  uint64_t freq_total = 0;
  for (uint64_t f : corpus.target_frequencies) freq_total += f;
  EXPECT_EQ(freq_total, corpus.pairs.size());
}

TEST(BuildInfluenceCorpusTest, AlphaControlsCorpusComposition) {
  const synth::World world = TinyWorld(3);
  ContextOptions local;
  local.length = 20;
  local.alpha = 1.0;
  ContextOptions global;
  global.length = 20;
  global.alpha = 0.0;
  const InfluenceCorpus local_corpus = BuildInfluenceCorpus(
      world.graph, world.log, local, world.graph.num_users(),
      CorpusBuildOptions{.seed = 4});
  const InfluenceCorpus global_corpus = BuildInfluenceCorpus(
      world.graph, world.log, global, world.graph.num_users(),
      CorpusBuildOptions{.seed = 4});
  // Local context is limited by propagation structure; global context can
  // always fill its budget, so it yields at least as many pairs.
  EXPECT_GT(global_corpus.pairs.size(), local_corpus.pairs.size());
}

TEST(Inf2vecModelTest, TrainFailsOnEmptyLog) {
  const synth::World world = TinyWorld(5);
  ActionLog empty;
  Inf2vecConfig config;
  EXPECT_FALSE(Inf2vecModel::Train(world.graph, empty, config).ok());
}

TEST(Inf2vecModelTest, TrainProducesFiniteEmbeddings) {
  const synth::World world = TinyWorld(6);
  Inf2vecConfig config;
  config.dim = 16;
  config.epochs = 2;
  config.context.length = 10;
  auto model = Inf2vecModel::Train(world.graph, world.log, config);
  ASSERT_TRUE(model.ok());
  const EmbeddingStore& store = model.value().embeddings();
  EXPECT_EQ(store.num_users(), world.graph.num_users());
  EXPECT_EQ(store.dim(), 16u);
  for (UserId u = 0; u < store.num_users(); ++u) {
    for (double x : store.Source(u)) EXPECT_TRUE(std::isfinite(x));
    EXPECT_TRUE(std::isfinite(store.source_bias(u)));
  }
}

TEST(Inf2vecModelTest, TrainIsDeterministicGivenSeed) {
  const synth::World world = TinyWorld(7);
  Inf2vecConfig config;
  config.dim = 8;
  config.epochs = 1;
  config.context.length = 8;
  config.seed = 123;
  auto m1 = Inf2vecModel::Train(world.graph, world.log, config);
  auto m2 = Inf2vecModel::Train(world.graph, world.log, config);
  ASSERT_TRUE(m1.ok());
  ASSERT_TRUE(m2.ok());
  EXPECT_EQ(m1.value().embeddings(), m2.value().embeddings());
}

TEST(Inf2vecModelTest, ObjectiveImprovesOverEpochs) {
  const synth::World world = TinyWorld(8);
  Inf2vecConfig config;
  config.dim = 16;
  config.epochs = 5;
  config.context.length = 10;
  const InfluenceCorpus corpus = BuildInfluenceCorpus(
      world.graph, world.log, config.context, world.graph.num_users(),
      CorpusBuildOptions{.seed = 9});
  std::vector<double> objectives;
  auto model = Inf2vecModel::TrainFromCorpus(corpus, world.graph.num_users(),
                                             config, &objectives);
  ASSERT_TRUE(model.ok());
  ASSERT_EQ(objectives.size(), 5u);
  EXPECT_GT(objectives.back(), objectives.front());
}

TEST(Inf2vecModelTest, TrainsWithForwardBfsStrategy) {
  const synth::World world = TinyWorld(12);
  Inf2vecConfig config;
  config.dim = 12;
  config.epochs = 2;
  config.context.length = 10;
  config.context.strategy = LocalContextStrategy::kForwardBfs;
  auto model = Inf2vecModel::Train(world.graph, world.log, config);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  for (UserId u = 0; u < 20; ++u) {
    EXPECT_TRUE(std::isfinite(model.value().Score(u, (u + 3) % 20)));
  }
}

TEST(Inf2vecModelTest, BfsAndWalkStrategiesProduceDifferentCorpora) {
  const synth::World world = TinyWorld(13);
  ContextOptions walk;
  walk.length = 10;
  walk.alpha = 1.0;
  ContextOptions bfs = walk;
  bfs.strategy = LocalContextStrategy::kForwardBfs;
  const InfluenceCorpus a = BuildInfluenceCorpus(
      world.graph, world.log, walk, world.graph.num_users(),
      CorpusBuildOptions{.seed = 5});
  const InfluenceCorpus b = BuildInfluenceCorpus(
      world.graph, world.log, bfs, world.graph.num_users(),
      CorpusBuildOptions{.seed = 5});
  EXPECT_GT(a.pairs.size(), 0u);
  EXPECT_GT(b.pairs.size(), 0u);
  EXPECT_NE(a.pairs, b.pairs);
}

TEST(Inf2vecModelTest, LocalOnlyConfigSetsAlphaOne) {
  const Inf2vecConfig config = Inf2vecConfig::LocalOnly();
  EXPECT_DOUBLE_EQ(config.context.alpha, 1.0);
}

TEST(Inf2vecModelTest, PredictorExposesTrainedScores) {
  const synth::World world = TinyWorld(10);
  Inf2vecConfig config;
  config.dim = 8;
  config.epochs = 1;
  config.context.length = 8;
  auto model = Inf2vecModel::Train(world.graph, world.log, config);
  ASSERT_TRUE(model.ok());
  const EmbeddingPredictor pred = model.value().Predictor();
  EXPECT_EQ(pred.name(), "Inf2vec");
  EXPECT_NEAR(pred.ScoreActivation(1, {0}), model.value().Score(0, 1), 1e-12);
}

TEST(Inf2vecModelTest, WorksWithoutSpreadModelAssumption) {
  // Section II: Inf2vec is "data-driven ... without any prior assumption
  // of spread models". Generate the cascades under Linear Threshold
  // instead of Independent Cascade — the model never knows — and check it
  // still clearly beats chance on held-out episodes.
  synth::WorldProfile profile = synth::WorldProfile::DiggLike();
  profile.num_users = 400;
  profile.num_items = 120;
  profile.spread_model =
      synth::WorldProfile::SpreadModel::kLinearThreshold;
  Rng rng(21);
  const synth::World world =
      std::move(synth::GenerateWorld(profile, rng)).value();
  Rng split_rng(22);
  const LogSplit split = SplitLog(world.log, 0.8, 0.0, split_rng);

  Inf2vecConfig config;
  config.dim = 24;
  config.epochs = 4;
  config.context.length = 16;
  auto model = Inf2vecModel::Train(world.graph, split.train, config);
  ASSERT_TRUE(model.ok());
  const EmbeddingPredictor pred = model.value().Predictor();
  const RankingMetrics metrics =
      EvaluateActivation(pred, world.graph, split.test);
  EXPECT_GT(metrics.num_queries, 0u);
  EXPECT_GT(metrics.auc, 0.58) << "failed to learn from LT cascades";
}

TEST(Inf2vecModelTest, RecoversPlantedInfluenceBetterThanChance) {
  // End-to-end sanity: on held-out episodes from the same planted process,
  // Inf2vec's activation AUC must be clearly above 0.5.
  synth::WorldProfile profile = synth::WorldProfile::DiggLike();
  profile.num_users = 400;
  profile.num_items = 120;
  Rng rng(11);
  const synth::World world =
      std::move(synth::GenerateWorld(profile, rng)).value();
  Rng split_rng(12);
  const LogSplit split = SplitLog(world.log, 0.8, 0.0, split_rng);

  Inf2vecConfig config;
  config.dim = 24;
  config.epochs = 4;
  config.context.length = 16;
  auto model = Inf2vecModel::Train(world.graph, split.train, config);
  ASSERT_TRUE(model.ok());
  const EmbeddingPredictor pred = model.value().Predictor();
  const RankingMetrics metrics =
      EvaluateActivation(pred, world.graph, split.test);
  EXPECT_GT(metrics.num_queries, 0u);
  EXPECT_GT(metrics.auc, 0.62) << "Inf2vec failed to beat chance by margin";
}

// Determinism pin for the sole (CorpusBuildOptions) corpus entry point,
// carried over from the removed Rng&/pool shim equivalence test: the same
// seed must rebuild the same corpus, serially and for a fixed pool size.
TEST(BuildInfluenceCorpusTest, OptionsEntryIsDeterministic) {
  const synth::World world = TinyWorld(21);
  ContextOptions opts;
  opts.length = 10;

  const InfluenceCorpus serial_a = BuildInfluenceCorpus(
      world.graph, world.log, opts, world.graph.num_users(),
      CorpusBuildOptions{.seed = 11});
  const InfluenceCorpus serial_b = BuildInfluenceCorpus(
      world.graph, world.log, opts, world.graph.num_users(),
      CorpusBuildOptions{.seed = 11});
  EXPECT_EQ(serial_a.pairs, serial_b.pairs);
  EXPECT_EQ(serial_a.target_frequencies, serial_b.target_frequencies);
  EXPECT_EQ(serial_a.num_tuples, serial_b.num_tuples);

  ThreadPool pool_a(2);
  const InfluenceCorpus pooled_a = BuildInfluenceCorpus(
      world.graph, world.log, opts, world.graph.num_users(),
      CorpusBuildOptions{.seed = 11, .pool = &pool_a});
  ThreadPool pool_b(2);
  const InfluenceCorpus pooled_b = BuildInfluenceCorpus(
      world.graph, world.log, opts, world.graph.num_users(),
      CorpusBuildOptions{.seed = 11, .pool = &pool_b});
  EXPECT_EQ(pooled_a.pairs, pooled_b.pairs);
  EXPECT_EQ(pooled_a.target_frequencies, pooled_b.target_frequencies);
  EXPECT_EQ(pooled_a.num_tuples, pooled_b.num_tuples);
}

}  // namespace
}  // namespace inf2vec
