#include "graph/social_graph.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace inf2vec {
namespace {

SocialGraph SmallGraph() {
  // 0 -> 1, 0 -> 2, 1 -> 2, 2 -> 0, 3 isolated.
  GraphBuilder builder(4);
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 2);
  builder.AddEdge(1, 2);
  builder.AddEdge(2, 0);
  auto result = builder.Build();
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

TEST(GraphBuilderTest, RejectsOutOfRangeEndpoints) {
  GraphBuilder builder(3);
  builder.AddEdge(0, 5);
  EXPECT_EQ(builder.Build().status().code(), StatusCode::kInvalidArgument);
}

TEST(GraphBuilderTest, RejectsSelfLoops) {
  GraphBuilder builder(3);
  builder.AddEdge(1, 1);
  EXPECT_FALSE(builder.Build().ok());
}

TEST(GraphBuilderTest, CollapsesDuplicateEdges) {
  GraphBuilder builder(3);
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 1);
  const SocialGraph g = std::move(builder.Build()).value();
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(GraphBuilderTest, UndirectedAddsBothDirections) {
  GraphBuilder builder(3);
  builder.AddUndirectedEdge(0, 1);
  const SocialGraph g = std::move(builder.Build()).value();
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
}

TEST(GraphBuilderTest, EmptyGraphBuilds) {
  GraphBuilder builder(5);
  const SocialGraph g = std::move(builder.Build()).value();
  EXPECT_EQ(g.num_users(), 5u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_TRUE(g.OutNeighbors(3).empty());
  EXPECT_TRUE(g.InNeighbors(3).empty());
}

TEST(SocialGraphTest, AdjacencyContents) {
  const SocialGraph g = SmallGraph();
  EXPECT_EQ(g.num_users(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);

  const auto out0 = g.OutNeighbors(0);
  ASSERT_EQ(out0.size(), 2u);
  EXPECT_EQ(out0[0], 1u);
  EXPECT_EQ(out0[1], 2u);

  const auto in2 = g.InNeighbors(2);
  ASSERT_EQ(in2.size(), 2u);
  EXPECT_EQ(in2[0], 0u);
  EXPECT_EQ(in2[1], 1u);

  EXPECT_EQ(g.OutDegree(3), 0u);
  EXPECT_EQ(g.InDegree(3), 0u);
}

TEST(SocialGraphTest, HasEdgeAndEdgeId) {
  const SocialGraph g = SmallGraph();
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_FALSE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(3, 0));

  // Edge ids are dense 0..num_edges-1, grouped by source.
  std::set<int64_t> ids;
  for (const Edge& e : g.Edges()) {
    const int64_t id = g.EdgeId(e.src, e.dst);
    ASSERT_GE(id, 0);
    ASSERT_LT(id, static_cast<int64_t>(g.num_edges()));
    ids.insert(id);
    EXPECT_EQ(g.EdgeSrc(static_cast<uint64_t>(id)), e.src);
    EXPECT_EQ(g.EdgeDst(static_cast<uint64_t>(id)), e.dst);
  }
  EXPECT_EQ(ids.size(), g.num_edges());
  EXPECT_EQ(g.EdgeId(0, 3), -1);
}

TEST(SocialGraphTest, OutEdgeIdsAreContiguousPerSource) {
  const SocialGraph g = SmallGraph();
  for (UserId u = 0; u < g.num_users(); ++u) {
    const auto nbrs = g.OutNeighbors(u);
    if (nbrs.empty()) continue;
    const int64_t first = g.EdgeId(u, nbrs[0]);
    for (size_t k = 0; k < nbrs.size(); ++k) {
      EXPECT_EQ(g.EdgeId(u, nbrs[k]), first + static_cast<int64_t>(k));
    }
  }
}

TEST(SocialGraphTest, EdgesMaterializesAll) {
  const SocialGraph g = SmallGraph();
  const std::vector<Edge> edges = g.Edges();
  EXPECT_EQ(edges.size(), 4u);
  EXPECT_NE(std::find(edges.begin(), edges.end(), Edge{2, 0}), edges.end());
}

class RandomGraphPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomGraphPropertyTest, CsrInvariantsHold) {
  Rng rng(GetParam());
  const uint32_t n = 30;
  GraphBuilder builder(n);
  for (int i = 0; i < 200; ++i) {
    const UserId u = static_cast<UserId>(rng.UniformU64(n));
    const UserId v = static_cast<UserId>(rng.UniformU64(n));
    if (u != v) builder.AddEdge(u, v);
  }
  const SocialGraph g = std::move(builder.Build()).value();

  // Out and in edge counts agree.
  uint64_t out_total = 0;
  uint64_t in_total = 0;
  for (UserId u = 0; u < n; ++u) {
    out_total += g.OutDegree(u);
    in_total += g.InDegree(u);
    // Neighbor lists sorted and self-loop-free.
    const auto out = g.OutNeighbors(u);
    EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
    EXPECT_EQ(std::find(out.begin(), out.end(), u), out.end());
    const auto in = g.InNeighbors(u);
    EXPECT_TRUE(std::is_sorted(in.begin(), in.end()));
  }
  EXPECT_EQ(out_total, g.num_edges());
  EXPECT_EQ(in_total, g.num_edges());

  // Every out edge appears as an in edge.
  for (UserId u = 0; u < n; ++u) {
    for (UserId v : g.OutNeighbors(u)) {
      const auto in = g.InNeighbors(v);
      EXPECT_TRUE(std::binary_search(in.begin(), in.end(), u));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace inf2vec
