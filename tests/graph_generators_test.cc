#include "graph/graph_generators.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace inf2vec {
namespace {

TEST(PreferentialAttachmentTest, RejectsBadOptions) {
  Rng rng(1);
  PreferentialAttachmentOptions opts;
  opts.num_users = 1;
  EXPECT_FALSE(GeneratePreferentialAttachment(opts, rng).ok());
  opts.num_users = 100;
  opts.mean_out_degree = 0.0;
  EXPECT_FALSE(GeneratePreferentialAttachment(opts, rng).ok());
}

TEST(PreferentialAttachmentTest, ProducesRequestedSize) {
  Rng rng(2);
  PreferentialAttachmentOptions opts;
  opts.num_users = 500;
  opts.mean_out_degree = 8.0;
  const SocialGraph g =
      std::move(GeneratePreferentialAttachment(opts, rng)).value();
  EXPECT_EQ(g.num_users(), 500u);
  // Roughly mean_out_degree edges per node (reciprocity adds more).
  EXPECT_GT(g.num_edges(), 500u * 4);
  EXPECT_LT(g.num_edges(), 500u * 30);
}

TEST(PreferentialAttachmentTest, InDegreesAreHeavyTailed) {
  Rng rng(3);
  PreferentialAttachmentOptions opts;
  opts.num_users = 1500;
  opts.mean_out_degree = 8.0;
  const SocialGraph g =
      std::move(GeneratePreferentialAttachment(opts, rng)).value();

  uint32_t max_in = 0;
  double mean_in = 0.0;
  for (UserId u = 0; u < g.num_users(); ++u) {
    max_in = std::max(max_in, g.InDegree(u));
    mean_in += g.InDegree(u);
  }
  mean_in /= g.num_users();
  // Hubs should dwarf the mean — the signature of a heavy tail.
  EXPECT_GT(max_in, 8 * mean_in);
}

TEST(PreferentialAttachmentTest, ReciprocityCreatesMutualEdges) {
  Rng rng(4);
  PreferentialAttachmentOptions opts;
  opts.num_users = 300;
  opts.reciprocity = 1.0;
  const SocialGraph g =
      std::move(GeneratePreferentialAttachment(opts, rng)).value();
  uint64_t mutual = 0;
  uint64_t total = 0;
  for (UserId u = 0; u < g.num_users(); ++u) {
    for (UserId v : g.OutNeighbors(u)) {
      ++total;
      mutual += g.HasEdge(v, u) ? 1 : 0;
    }
  }
  EXPECT_GT(static_cast<double>(mutual) / total, 0.95);
}

TEST(PreferentialAttachmentTest, DeterministicGivenSeed) {
  PreferentialAttachmentOptions opts;
  opts.num_users = 200;
  Rng rng1(42);
  Rng rng2(42);
  const SocialGraph g1 =
      std::move(GeneratePreferentialAttachment(opts, rng1)).value();
  const SocialGraph g2 =
      std::move(GeneratePreferentialAttachment(opts, rng2)).value();
  EXPECT_EQ(g1.num_edges(), g2.num_edges());
  EXPECT_EQ(g1.Edges(), g2.Edges());
}

TEST(ErdosRenyiTest, RejectsBadProbability) {
  Rng rng(5);
  EXPECT_FALSE(GenerateErdosRenyi(10, -0.1, rng).ok());
  EXPECT_FALSE(GenerateErdosRenyi(10, 1.1, rng).ok());
}

TEST(ErdosRenyiTest, EdgeCountMatchesProbability) {
  Rng rng(6);
  const SocialGraph g = std::move(GenerateErdosRenyi(100, 0.1, rng)).value();
  const double expected = 100.0 * 99.0 * 0.1;
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected, 0.2 * expected);
}

TEST(ErdosRenyiTest, ZeroProbabilityIsEmpty) {
  Rng rng(7);
  const SocialGraph g = std::move(GenerateErdosRenyi(50, 0.0, rng)).value();
  EXPECT_EQ(g.num_edges(), 0u);
}

}  // namespace
}  // namespace inf2vec
