// Merge-equality property tests: the scatter-gather coordinator's merged
// /topk ranking must be bit-identical to single-node InfluenceService
// TopK — same users, same scores, same tie order — for every shard count
// and both serving modes, on tie-heavy embeddings built to stress the
// comparator. Plus the degradation contract: a stopped shard yields a
// degraded (never hanging) partial answer, a lost gather owner yields
// gather_failed, and shards cut from different models refuse to
// assemble.

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "embedding/model_io.h"
#include "obs/http_server.h"
#include "obs/metrics.h"
#include "serve/influence_service.h"
#include "shard/coordinator.h"
#include "shard/shard_service.h"
#include "shard/shard_split.h"
#include "util/rng.h"

namespace inf2vec {
namespace shard {
namespace {

/// Tie-heavy store: every user's S/T rows come from a palette of 4
/// distinct vectors and biases from a palette of 3, so the candidate
/// space is full of exactly-equal scores and the ascending-id tie-break
/// does real work in every ranking.
EmbeddingStore MakeTieHeavyStore(uint32_t num_users, uint32_t dim,
                                 uint64_t seed) {
  EmbeddingStore store(num_users, dim);
  Rng rng(seed);
  std::vector<std::vector<double>> palette(4, std::vector<double>(dim));
  for (auto& row : palette) {
    for (double& x : row) x = rng.UniformDouble(-0.5, 0.5);
  }
  const double biases[3] = {-0.125, 0.0, 0.25};
  for (UserId u = 0; u < num_users; ++u) {
    const std::vector<double>& s = palette[u % palette.size()];
    const std::vector<double>& t = palette[(u / 2) % palette.size()];
    for (uint32_t d = 0; d < dim; ++d) {
      store.Source(u)[d] = s[d];
      store.Target(u)[d] = t[d];
    }
    store.mutable_source_bias(u) = biases[u % 3];
    store.mutable_target_bias(u) = biases[(u / 3) % 3];
  }
  return store;
}

std::string WriteModel(const EmbeddingStore& store, const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  ModelMetadata metadata;
  metadata.aggregation = "Ave";
  metadata.dim = store.dim();
  EXPECT_TRUE(SaveModelArtifact(store, metadata, path).ok());
  return path;
}

/// One in-process shard backend: service + HTTP server + its registry.
struct ShardBackend {
  obs::MetricsRegistry registry;
  std::unique_ptr<ShardService> service;
  std::unique_ptr<obs::StatsServer> server;

  std::string address() const {
    return "127.0.0.1:" + std::to_string(server->port());
  }
};

/// Splits `model_path` into `num_shards` slices under a fresh directory
/// and serves each from an in-process StatsServer.
std::vector<std::unique_ptr<ShardBackend>> StartShardFleet(
    const std::string& model_path, uint32_t num_shards,
    const serve::ServiceOptions& options, const std::string& dir_name) {
  const std::string dir = ::testing::TempDir() + "/" + dir_name;
  std::filesystem::create_directories(dir);
  Result<std::vector<std::string>> paths =
      SplitModelArtifact(model_path, dir, num_shards);
  EXPECT_TRUE(paths.ok()) << paths.status().ToString();

  std::vector<std::unique_ptr<ShardBackend>> fleet;
  for (const std::string& path : paths.value()) {
    auto backend = std::make_unique<ShardBackend>();
    Result<ShardService> service =
        ShardService::Load(path, options, &backend->registry);
    EXPECT_TRUE(service.ok()) << service.status().ToString();
    backend->service =
        std::make_unique<ShardService>(std::move(service).value());
    backend->server = std::make_unique<obs::StatsServer>(
        obs::StatsServerOptions{}, &backend->registry);
    RegisterShardEndpoints(backend->server.get(), backend->service.get());
    EXPECT_TRUE(backend->server->Start().ok());
    fleet.push_back(std::move(backend));
  }
  return fleet;
}

ShardCoordinator ConnectCoordinator(
    const std::vector<std::unique_ptr<ShardBackend>>& fleet,
    obs::MetricsRegistry* registry, obs::RpczRegistry* rpcz = nullptr) {
  CoordinatorOptions options;
  for (const auto& backend : fleet) {
    options.backends.push_back(backend->address());
  }
  options.registry = registry;
  options.rpcz = rpcz;
  Result<ShardCoordinator> coordinator =
      ShardCoordinator::Connect(std::move(options));
  EXPECT_TRUE(coordinator.ok()) << coordinator.status().ToString();
  return std::move(coordinator).value();
}

void ExpectBitIdentical(const std::vector<serve::TopKEntry>& merged,
                        const std::vector<serve::TopKEntry>& single,
                        const std::string& label) {
  ASSERT_EQ(merged.size(), single.size()) << label;
  for (size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(merged[i].user, single[i].user)
        << label << " rank " << i << " user";
    // Bitwise score equality, not approximate: the whole point.
    EXPECT_EQ(merged[i].score, single[i].score)
        << label << " rank " << i << " score";
  }
}

class ShardMergeEqualityTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, bool>> {};

TEST_P(ShardMergeEqualityTest, CoordinatorMatchesSingleNodeBitForBit) {
  const uint32_t num_shards = std::get<0>(GetParam());
  const bool int8_mode = std::get<1>(GetParam());
  const uint32_t kUsers = 61;  // Prime: uneven shard ranges.

  const EmbeddingStore store = MakeTieHeavyStore(kUsers, 6, 17);
  const std::string model_path = WriteModel(
      store, "merge_model_" + std::to_string(num_shards) +
                 (int8_mode ? "_q.i2v" : "_f.i2v"));

  serve::ServiceOptions options;
  options.quantize =
      int8_mode ? serve::QuantMode::kInt8 : serve::QuantMode::kNone;

  obs::MetricsRegistry single_registry;
  Result<serve::InfluenceService> single =
      serve::InfluenceService::Load(model_path, options, &single_registry);
  ASSERT_TRUE(single.ok()) << single.status().ToString();

  auto fleet = StartShardFleet(
      model_path, num_shards, options,
      "merge_fleet_" + std::to_string(num_shards) + (int8_mode ? "q" : "f"));
  obs::MetricsRegistry coord_registry;
  ShardCoordinator coordinator = ConnectCoordinator(fleet, &coord_registry);
  ASSERT_EQ(coordinator.num_shards(), num_shards);
  ASSERT_EQ(coordinator.quantized(), int8_mode);

  const std::vector<std::vector<UserId>> seed_sets = {
      {0},
      {60},
      {5, 23, 42},
      {12, 12, 13},  // duplicate seeds
      {0, 15, 30, 45, 60},
  };
  for (const std::vector<UserId>& seeds : seed_sets) {
    for (const uint32_t k : {1u, 7u, 10u, 61u, 100u}) {
      serve::TopKRequest single_request;
      single_request.seeds = seeds;
      single_request.k = k;
      Result<serve::TopKResult> expected = single.value().TopK(single_request);
      ASSERT_TRUE(expected.ok()) << expected.status().ToString();

      CoordTopKRequest request;
      request.seeds = seeds;
      request.k = k;
      Result<CoordTopKResult> merged = coordinator.TopK(request);
      ASSERT_TRUE(merged.ok()) << merged.status().ToString();
      EXPECT_FALSE(merged.value().degraded);
      EXPECT_TRUE(merged.value().shards_missing.empty());
      EXPECT_EQ(merged.value().scanned, expected.value().scanned);
      ExpectBitIdentical(
          merged.value().entries, expected.value().entries,
          "shards=" + std::to_string(num_shards) +
              (int8_mode ? " int8" : " fp64") + " k=" + std::to_string(k) +
              " seeds[0]=" + std::to_string(seeds[0]));
    }
  }

  // Routed /score agrees bitwise too.
  for (const UserId candidate : {0u, 29u, 60u}) {
    serve::ScoreRequest score_request;
    score_request.candidate = candidate;
    score_request.seeds = {5, 23, 42};
    Result<serve::ScoreResult> expected =
        single.value().ScoreActivation(score_request);
    ASSERT_TRUE(expected.ok());
    Result<CoordScoreResult> scored =
        coordinator.Score(candidate, {5, 23, 42}, std::nullopt, 0);
    ASSERT_TRUE(scored.ok()) << scored.status().ToString();
    EXPECT_EQ(scored.value().score, expected.value().score);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllShardCounts, ShardMergeEqualityTest,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 5u),
                       ::testing::Values(false, true)));

TEST(ShardDegradationTest, StoppedShardYieldsDegradedPartialRanking) {
  obs::EnableMetrics(true);  // Counter increments are metrics-gated.
  const EmbeddingStore store = MakeTieHeavyStore(48, 4, 19);
  const std::string model_path = WriteModel(store, "degrade_model.i2v");
  auto fleet = StartShardFleet(model_path, 3, {}, "degrade_fleet");
  obs::MetricsRegistry registry;
  ShardCoordinator coordinator = ConnectCoordinator(fleet, &registry);

  // Shard 1 owns the middle range; stop its server. Seeds stay on live
  // shards so gather succeeds and the scatter degrades.
  fleet[1]->server->Stop();

  CoordTopKRequest request;
  request.seeds = {0, 47};
  request.k = 10;
  Result<CoordTopKResult> result = coordinator.TopK(request);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value().degraded);
  EXPECT_FALSE(result.value().gather_failed);
  ASSERT_EQ(result.value().shards_missing.size(), 1u);
  EXPECT_EQ(result.value().shards_missing[0], 1u);
  EXPECT_FALSE(result.value().entries.empty());
  // Every merged entry comes from a live shard's range.
  const ShardSliceInfo& dead = fleet[1]->service->info();
  for (const serve::TopKEntry& entry : result.value().entries) {
    EXPECT_TRUE(entry.user < dead.begin_user || entry.user >= dead.end_user);
  }
  const obs::MetricsRegistry::Snapshot snapshot = registry.Scrape();
  EXPECT_GE(snapshot.CounterOr0("serve.shard_errors") +
                snapshot.CounterOr0("serve.shard_timeouts"),
            1u);
  EXPECT_GE(snapshot.CounterOr0("serve.degraded_responses"), 1u);
  obs::EnableMetrics(false);
}

TEST(ShardDegradationTest, LostGatherOwnerFailsTheQuery) {
  const EmbeddingStore store = MakeTieHeavyStore(48, 4, 23);
  const std::string model_path = WriteModel(store, "degrade_gather.i2v");
  auto fleet = StartShardFleet(model_path, 3, {}, "degrade_gather_fleet");
  obs::MetricsRegistry registry;
  ShardCoordinator coordinator = ConnectCoordinator(fleet, &registry);

  fleet[0]->server->Stop();

  CoordTopKRequest request;
  request.seeds = {0};  // Owned by the stopped shard 0.
  request.k = 5;
  Result<CoordTopKResult> result = coordinator.TopK(request);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value().gather_failed);
  EXPECT_TRUE(result.value().degraded);
  EXPECT_TRUE(result.value().entries.empty());
  ASSERT_EQ(result.value().shards_missing.size(), 1u);
  EXPECT_EQ(result.value().shards_missing[0], 0u);

  Result<CoordScoreResult> scored = coordinator.Score(5, {0}, std::nullopt, 0);
  EXPECT_FALSE(scored.ok());
}

TEST(ShardTopologyTest, MixedModelHashesRefuseToAssemble) {
  const EmbeddingStore model_a = MakeTieHeavyStore(24, 4, 29);
  EmbeddingStore model_b = MakeTieHeavyStore(24, 4, 29);
  model_b.Source(3)[1] += 1e-6;  // Different content, same shape.

  auto fleet_a = StartShardFleet(WriteModel(model_a, "topo_a.i2v"), 2, {},
                                 "topo_fleet_a");
  auto fleet_b = StartShardFleet(WriteModel(model_b, "topo_b.i2v"), 2, {},
                                 "topo_fleet_b");

  obs::MetricsRegistry registry;
  CoordinatorOptions options;
  options.backends = {fleet_a[0]->address(), fleet_b[1]->address()};
  options.registry = &registry;
  Result<ShardCoordinator> coordinator =
      ShardCoordinator::Connect(std::move(options));
  ASSERT_FALSE(coordinator.ok());
  EXPECT_EQ(coordinator.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ShardTopologyTest, IncompleteTilingRefused) {
  const EmbeddingStore store = MakeTieHeavyStore(30, 4, 31);
  const std::string model_path = WriteModel(store, "topo_gap.i2v");
  auto fleet = StartShardFleet(model_path, 3, {}, "topo_gap_fleet");

  obs::MetricsRegistry registry;
  CoordinatorOptions options;
  // Shard 1 missing: ranges no longer tile [0, 30).
  options.backends = {fleet[0]->address(), fleet[2]->address()};
  options.registry = &registry;
  Result<ShardCoordinator> coordinator =
      ShardCoordinator::Connect(std::move(options));
  ASSERT_FALSE(coordinator.ok());
  EXPECT_EQ(coordinator.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace shard
}  // namespace inf2vec
