#include "embedding/quantized_store.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>
#include <string>

#include "embedding/model_io.h"
#include "serve/influence_service.h"
#include "serve/model_swapper.h"
#include "util/io.h"
#include "util/rng.h"

namespace inf2vec {
namespace {

using serve::InfluenceService;
using serve::QuantMode;
using serve::ServiceOptions;
using serve::TopKRequest;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

/// A store whose rows have heavy-tailed magnitudes, so top-k rankings
/// have realistic separation (trained influence models concentrate mass
/// on a few strong influencers; iid-uniform rows would make the top-10
/// a coin flip between near-ties and test quantization noise, not
/// ranking fidelity).
EmbeddingStore MakeSpreadStore(uint32_t num_users, uint32_t dim,
                               uint64_t seed) {
  EmbeddingStore store(num_users, dim);
  Rng rng(seed);
  store.InitUniform(-1.0, 1.0, rng);
  for (UserId u = 0; u < num_users; ++u) {
    const double scale = std::exp(rng.UniformDouble(-2.0, 1.0));
    for (double& x : store.Source(u)) x *= scale;
    const double tscale = std::exp(rng.UniformDouble(-2.0, 1.0));
    for (double& x : store.Target(u)) x *= tscale;
    store.mutable_source_bias(u) = rng.UniformDouble(-0.1, 0.1);
    store.mutable_target_bias(u) = rng.UniformDouble(-0.1, 0.1);
  }
  return store;
}

TEST(QuantizedStoreTest, CodesBoundedAndDequantWithinHalfScale) {
  const EmbeddingStore store = MakeSpreadStore(50, 13, 3);
  const QuantizedEmbeddingStore q = QuantizedEmbeddingStore::FromStore(store);
  ASSERT_EQ(q.num_users(), store.num_users());
  ASSERT_EQ(q.dim(), store.dim());
  for (UserId u = 0; u < store.num_users(); ++u) {
    const auto row = store.Source(u);
    const auto codes = q.Source(u);
    const float scale = q.source_scale(u);
    for (uint32_t k = 0; k < store.dim(); ++k) {
      EXPECT_GE(codes[k], -127);
      EXPECT_LE(codes[k], 127);
      EXPECT_NEAR(static_cast<double>(codes[k]) * scale, row[k],
                  0.5 * scale + 1e-12)
          << "u=" << u << " k=" << k;
    }
  }
}

TEST(QuantizedStoreTest, AllZeroRowQuantizesToZeroScaleAndCodes) {
  EmbeddingStore store(2, 8);  // Zero-initialized.
  const QuantizedEmbeddingStore q = QuantizedEmbeddingStore::FromStore(store);
  EXPECT_EQ(q.source_scale(0), 0.0f);
  for (int8_t c : q.Source(0)) EXPECT_EQ(c, 0);
  EXPECT_EQ(q.Score(0, 1), 0.0);
}

TEST(QuantizedStoreTest, ArtifactRoundTripsQuantizedSectionExactly) {
  const EmbeddingStore store = MakeSpreadStore(40, 13, 7);
  const QuantizedEmbeddingStore q = QuantizedEmbeddingStore::FromStore(store);
  const std::string path = TempPath("quant_roundtrip.bin");
  ModelMetadata metadata;
  metadata.aggregation = "Sum";
  ASSERT_TRUE(SaveModelArtifact(store, metadata, path, &q).ok());

  Result<ModelArtifact> loaded = LoadModelArtifact(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  ASSERT_TRUE(loaded.value().quantized.has_value());
  const QuantizedEmbeddingStore& lq = *loaded.value().quantized;
  ASSERT_EQ(lq.num_users(), q.num_users());
  ASSERT_EQ(lq.dim(), q.dim());
  for (UserId u = 0; u < q.num_users(); ++u) {
    for (uint32_t k = 0; k < q.dim(); ++k) {
      EXPECT_EQ(lq.Source(u)[k], q.Source(u)[k]);
      EXPECT_EQ(lq.Target(u)[k], q.Target(u)[k]);
    }
    EXPECT_EQ(lq.source_scale(u), q.source_scale(u));
    EXPECT_EQ(lq.target_scale(u), q.target_scale(u));
    EXPECT_EQ(lq.source_bias(u), q.source_bias(u));
    EXPECT_EQ(lq.target_bias(u), q.target_bias(u));
  }
  // The fp64 table is untouched by the trailing section.
  EXPECT_EQ(loaded.value().store, store);
  EXPECT_EQ(loaded.value().metadata.aggregation, "Sum");
}

TEST(QuantizedStoreTest, SectionUnawareLoaderPathStillGetsFp64Table) {
  const EmbeddingStore store = MakeSpreadStore(20, 8, 11);
  const QuantizedEmbeddingStore q = QuantizedEmbeddingStore::FromStore(store);
  const std::string path = TempPath("quant_fp64_path.bin");
  ASSERT_TRUE(SaveModelArtifact(store, ModelMetadata(), path, &q).ok());
  Result<EmbeddingStore> loaded = LoadEmbeddings(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value(), store);
}

TEST(QuantizedStoreTest, V1ArtifactWithTrailingBytesIsRejected) {
  const EmbeddingStore store = MakeSpreadStore(5, 4, 13);
  const std::string path = TempPath("v1_trailing.bin");
  ASSERT_TRUE(SaveEmbeddingsV1(store, path).ok());
  std::string blob;
  ASSERT_TRUE(ReadFile(path, &blob).ok());
  blob += "junk";
  ASSERT_TRUE(WriteFile(path, blob).ok());
  EXPECT_FALSE(LoadModelArtifact(path).ok());
}

TEST(QuantizedStoreTest, V2ArtifactWithCorruptSectionIsRejected) {
  const EmbeddingStore store = MakeSpreadStore(5, 4, 13);
  const std::string path = TempPath("v2_corrupt_section.bin");
  ASSERT_TRUE(SaveModelArtifact(store, ModelMetadata(), path).ok());
  std::string blob;
  ASSERT_TRUE(ReadFile(path, &blob).ok());
  blob += "not-a-quant-section";
  ASSERT_TRUE(WriteFile(path, blob).ok());
  EXPECT_FALSE(LoadModelArtifact(path).ok());
}

TEST(QuantizedStoreTest, ServiceScoreMatchesStoreScoreBitwise) {
  EmbeddingStore store = MakeSpreadStore(60, 16, 17);
  ModelArtifact artifact;
  artifact.store = store;
  ServiceOptions options;
  options.quantize = QuantMode::kInt8;
  Result<InfluenceService> service =
      InfluenceService::FromArtifact(std::move(artifact), options);
  ASSERT_TRUE(service.ok());
  ASSERT_EQ(service.value().quant_mode(), QuantMode::kInt8);
  const QuantizedEmbeddingStore* q = service.value().quantized_store();
  ASSERT_NE(q, nullptr);

  // Single-seed Ave == the raw pair score: the service's seed-block path
  // must agree with QuantizedEmbeddingStore::Score to the last bit.
  for (UserId u = 0; u < 10; ++u) {
    serve::ScoreRequest request;
    request.candidate = 59 - u;
    request.seeds = {u};
    request.aggregation = Aggregation::kAve;
    Result<serve::ScoreResult> result =
        service.value().ScoreActivation(request);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.value().score, q->Score(u, 59 - u)) << "u=" << u;
  }
}

TEST(QuantizedStoreTest, PersistedSectionAndLoadTimeQuantizationAgree) {
  const EmbeddingStore store = MakeSpreadStore(80, 24, 19);
  const QuantizedEmbeddingStore q = QuantizedEmbeddingStore::FromStore(store);
  const std::string path = TempPath("quant_agree.bin");
  ASSERT_TRUE(SaveModelArtifact(store, ModelMetadata(), path, &q).ok());

  ServiceOptions options;
  options.quantize = QuantMode::kInt8;
  Result<InfluenceService> from_section =
      InfluenceService::Load(path, options);
  ASSERT_TRUE(from_section.ok());

  ModelArtifact bare;
  bare.store = store;  // No section: quantizes at load.
  Result<InfluenceService> from_fp64 =
      InfluenceService::FromArtifact(std::move(bare), options);
  ASSERT_TRUE(from_fp64.ok());

  TopKRequest request;
  request.seeds = {1, 5, 9};
  request.k = 10;
  Result<serve::TopKResult> a = from_section.value().TopK(request);
  Result<serve::TopKResult> b = from_fp64.value().TopK(request);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a.value().entries.size(), b.value().entries.size());
  for (size_t i = 0; i < a.value().entries.size(); ++i) {
    EXPECT_EQ(a.value().entries[i].user, b.value().entries[i].user);
    EXPECT_EQ(a.value().entries[i].score, b.value().entries[i].score);
  }
}

TEST(QuantizedStoreTest, ModelSwapperCarriesQuantModeThroughHotSwap) {
  const EmbeddingStore store = MakeSpreadStore(30, 8, 23);
  const std::string path = TempPath("quant_swap.bin");
  ASSERT_TRUE(SaveModelArtifact(store, ModelMetadata(), path).ok());
  ServiceOptions options;
  options.quantize = QuantMode::kInt8;
  serve::ModelSwapper swapper(path, options);
  ASSERT_TRUE(swapper.Reload().ok());
  {
    const auto model = swapper.Acquire();
    EXPECT_EQ(model->service.quant_mode(), QuantMode::kInt8);
  }
  // Rewrite the model file and hot-swap: the new generation must stay
  // quantized.
  const EmbeddingStore store2 = MakeSpreadStore(30, 8, 29);
  ASSERT_TRUE(SaveModelArtifact(store2, ModelMetadata(), path).ok());
  ASSERT_TRUE(swapper.Reload().ok());
  const auto model = swapper.Acquire();
  EXPECT_EQ(model->service.quant_mode(), QuantMode::kInt8);
}

/// The serving-accuracy gate from the issue: int8 top-10 must recover
/// >= 99% of the fp64 top-10, averaged over queries.
TEST(QuantizedStoreTest, QuantizedTopKRecallAt10IsAtLeast99Percent) {
  const uint32_t kUsers = 2000;
  const uint32_t kDim = 32;
  const EmbeddingStore store = MakeSpreadStore(kUsers, kDim, 31);

  ModelArtifact fp64_artifact;
  fp64_artifact.store = store;
  Result<InfluenceService> fp64 =
      InfluenceService::FromArtifact(std::move(fp64_artifact), {});
  ASSERT_TRUE(fp64.ok());

  ModelArtifact int8_artifact;
  int8_artifact.store = store;
  ServiceOptions int8_options;
  int8_options.quantize = QuantMode::kInt8;
  Result<InfluenceService> int8 =
      InfluenceService::FromArtifact(std::move(int8_artifact), int8_options);
  ASSERT_TRUE(int8.ok());

  Rng rng(37);
  const uint32_t kQueries = 50;
  const uint32_t kK = 10;
  uint32_t hit = 0;
  uint32_t total = 0;
  for (uint32_t qi = 0; qi < kQueries; ++qi) {
    TopKRequest request;
    const uint32_t num_seeds = 1 + static_cast<uint32_t>(rng.UniformU64(5));
    std::set<UserId> seeds;
    while (seeds.size() < num_seeds) {
      seeds.insert(static_cast<UserId>(rng.UniformU64(kUsers)));
    }
    request.seeds.assign(seeds.begin(), seeds.end());
    request.k = kK;
    Result<serve::TopKResult> exact = fp64.value().TopK(request);
    Result<serve::TopKResult> approx = int8.value().TopK(request);
    ASSERT_TRUE(exact.ok());
    ASSERT_TRUE(approx.ok());
    std::set<UserId> exact_set;
    for (const auto& e : exact.value().entries) exact_set.insert(e.user);
    for (const auto& e : approx.value().entries) {
      if (exact_set.count(e.user) != 0) ++hit;
    }
    total += static_cast<uint32_t>(exact.value().entries.size());
  }
  const double recall = static_cast<double>(hit) / total;
  std::printf("int8 top-%u recall over %u queries: %.4f\n", kK, kQueries,
              recall);
  EXPECT_GE(recall, 0.99);
}

}  // namespace
}  // namespace inf2vec
