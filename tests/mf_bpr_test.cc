#include "baselines/mf_bpr.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace inf2vec {
namespace {

DiffusionEpisode Episode(ItemId item, std::vector<UserId> users) {
  DiffusionEpisode e(item);
  Timestamp t = 0;
  for (UserId u : users) e.Add(u, ++t);
  EXPECT_TRUE(e.Finalize().ok());
  return e;
}

/// Two disjoint interest groups: {0..4} co-act, {5..9} co-act.
ActionLog TwoCommunityLog() {
  ActionLog log;
  ItemId item = 0;
  for (int rep = 0; rep < 12; ++rep) {
    log.AddEpisode(Episode(item++, {0, 1, 2, 3, 4}));
    log.AddEpisode(Episode(item++, {5, 6, 7, 8, 9}));
  }
  return log;
}

TEST(MfBprTest, TrainRejectsBadInput) {
  ActionLog empty;
  MfOptions options;
  EXPECT_FALSE(MfBprModel::Train(10, empty, options).ok());
  EXPECT_FALSE(MfBprModel::Train(0, TwoCommunityLog(), options).ok());
  options.dim = 0;
  EXPECT_FALSE(MfBprModel::Train(10, TwoCommunityLog(), options).ok());
}

TEST(MfBprTest, CoActorsOutrankStrangers) {
  MfOptions options;
  options.dim = 8;
  options.epochs = 12;
  auto model = MfBprModel::Train(10, TwoCommunityLog(), options);
  ASSERT_TRUE(model.ok());
  const EmbeddingStore& store = model.value().embeddings();

  // Average within-community score must beat cross-community score.
  double same = 0.0;
  double cross = 0.0;
  int same_n = 0;
  int cross_n = 0;
  for (UserId u = 0; u < 10; ++u) {
    for (UserId v = 0; v < 10; ++v) {
      if (u == v) continue;
      const bool same_group = (u < 5) == (v < 5);
      if (same_group) {
        same += store.Score(u, v);
        ++same_n;
      } else {
        cross += store.Score(u, v);
        ++cross_n;
      }
    }
  }
  EXPECT_GT(same / same_n, cross / cross_n + 0.1);
}

TEST(MfBprTest, PredictorUsesSharedInterface) {
  MfOptions options;
  options.dim = 4;
  options.epochs = 2;
  auto model = MfBprModel::Train(10, TwoCommunityLog(), options);
  ASSERT_TRUE(model.ok());
  const EmbeddingPredictor pred = model.value().Predictor();
  EXPECT_EQ(pred.name(), "MF");
  EXPECT_TRUE(std::isfinite(pred.ScoreActivation(1, {0, 2})));
}

TEST(MfBprTest, DeterministicGivenSeed) {
  MfOptions options;
  options.dim = 4;
  options.epochs = 2;
  options.seed = 77;
  auto m1 = MfBprModel::Train(10, TwoCommunityLog(), options);
  auto m2 = MfBprModel::Train(10, TwoCommunityLog(), options);
  ASSERT_TRUE(m1.ok());
  ASSERT_TRUE(m2.ok());
  EXPECT_EQ(m1.value().embeddings(), m2.value().embeddings());
}

TEST(MfBprTest, ParametersStayFinite) {
  MfOptions options;
  options.dim = 8;
  options.epochs = 20;
  options.learning_rate = 0.1;
  auto model = MfBprModel::Train(10, TwoCommunityLog(), options);
  ASSERT_TRUE(model.ok());
  const EmbeddingStore& store = model.value().embeddings();
  for (UserId u = 0; u < 10; ++u) {
    for (double x : store.Source(u)) EXPECT_TRUE(std::isfinite(x));
    for (double x : store.Target(u)) EXPECT_TRUE(std::isfinite(x));
    EXPECT_TRUE(std::isfinite(store.target_bias(u)));
  }
}

}  // namespace
}  // namespace inf2vec
