#include "baselines/em_ic.h"

#include <gtest/gtest.h>

namespace inf2vec {
namespace {

DiffusionEpisode Episode(ItemId item,
                         std::vector<std::pair<UserId, Timestamp>> rows) {
  DiffusionEpisode e(item);
  for (const auto& [u, t] : rows) e.Add(u, t);
  EXPECT_TRUE(e.Finalize().ok());
  return e;
}

TEST(EmStatisticsTest, TrialsAndGroupsOnSingleEdge) {
  GraphBuilder builder(2);
  builder.AddEdge(0, 1);
  const SocialGraph g = std::move(builder.Build()).value();

  ActionLog log;
  log.AddEpisode(Episode(0, {{0, 1}, {1, 2}}));  // Success.
  log.AddEpisode(Episode(1, {{0, 1}}));          // Failure (1 never acts).
  log.AddEpisode(Episode(2, {{1, 1}, {0, 2}}));  // 1 first: no trial.

  const EmStatistics stats(g, log);
  ASSERT_EQ(stats.trials().size(), 1u);
  EXPECT_EQ(stats.trials()[0], 2u);  // Episodes 0 and 1.
  ASSERT_EQ(stats.groups().size(), 1u);
  EXPECT_EQ(stats.groups()[0], std::vector<uint64_t>{0});
}

TEST(EmIterateTest, SingleEdgeConvergesToMle) {
  // One edge, 1 success out of 2 trials: EM fixed point is 0.5.
  GraphBuilder builder(2);
  builder.AddEdge(0, 1);
  const SocialGraph g = std::move(builder.Build()).value();
  ActionLog log;
  log.AddEpisode(Episode(0, {{0, 1}, {1, 2}}));
  log.AddEpisode(Episode(1, {{0, 1}}));
  const EmStatistics stats(g, log);

  std::vector<double> probs = {0.3};
  for (int i = 0; i < 30; ++i) EmIterate(stats, &probs);
  EXPECT_NEAR(probs[0], 0.5, 1e-6);
}

TEST(EmIterateTest, LogLikelihoodNonDecreasing) {
  // Diamond graph with overlapping parents exercises the credit split.
  GraphBuilder builder(4);
  builder.AddEdge(0, 2);
  builder.AddEdge(1, 2);
  builder.AddEdge(0, 3);
  builder.AddEdge(2, 3);
  const SocialGraph g = std::move(builder.Build()).value();
  ActionLog log;
  log.AddEpisode(Episode(0, {{0, 1}, {1, 2}, {2, 3}, {3, 4}}));
  log.AddEpisode(Episode(1, {{0, 1}, {2, 2}}));
  log.AddEpisode(Episode(2, {{1, 1}, {2, 2}, {3, 3}}));
  log.AddEpisode(Episode(3, {{0, 1}}));
  const EmStatistics stats(g, log);

  std::vector<double> probs(g.num_edges(), 0.2);
  double prev = EmIterate(stats, &probs);
  for (int i = 0; i < 15; ++i) {
    const double ll = EmIterate(stats, &probs);
    EXPECT_GE(ll, prev - 1e-9) << "EM likelihood decreased at iter " << i;
    prev = ll;
  }
}

TEST(EmIterateTest, EdgeWithNoTrialsGoesToZero) {
  GraphBuilder builder(3);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  const SocialGraph g = std::move(builder.Build()).value();
  ActionLog log;
  log.AddEpisode(Episode(0, {{0, 1}, {1, 2}}));  // Only edge (0,1) tried...
  // ...wait: after 1 activates it tries 2, which never acts -> trial.
  const EmStatistics stats(g, log);
  std::vector<double> probs = {0.5, 0.5};
  EmIterate(stats, &probs);
  // Edge (1,2): 1 trial, 0 successes -> responsibility 0 -> p = 0.
  EXPECT_DOUBLE_EQ(probs[g.EdgeId(1, 2)], 0.0);
}

TEST(EmIterateTest, SharedCreditSplitsBetweenParents) {
  // Both 0 and 1 always act before 2; p should converge so that the noisy-
  // or matches 2's empirical activation rate.
  GraphBuilder builder(3);
  builder.AddEdge(0, 2);
  builder.AddEdge(1, 2);
  const SocialGraph g = std::move(builder.Build()).value();
  ActionLog log;
  // 2 activates in 2 of 4 exposures.
  log.AddEpisode(Episode(0, {{0, 1}, {1, 2}, {2, 3}}));
  log.AddEpisode(Episode(1, {{0, 1}, {1, 2}, {2, 3}}));
  log.AddEpisode(Episode(2, {{0, 1}, {1, 2}}));
  log.AddEpisode(Episode(3, {{0, 1}, {1, 2}}));
  const EmStatistics stats(g, log);
  std::vector<double> probs(2, 0.3);
  for (int i = 0; i < 60; ++i) EmIterate(stats, &probs);
  const double p0 = probs[g.EdgeId(0, 2)];
  const double p1 = probs[g.EdgeId(1, 2)];
  EXPECT_NEAR(1.0 - (1.0 - p0) * (1.0 - p1), 0.5, 0.02);
  // Symmetric data -> symmetric solution.
  EXPECT_NEAR(p0, p1, 1e-6);
}

TEST(CreateEmModelTest, ProducesBoundedProbabilities) {
  GraphBuilder builder(4);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(2, 3);
  const SocialGraph g = std::move(builder.Build()).value();
  ActionLog log;
  log.AddEpisode(Episode(0, {{0, 1}, {1, 2}, {2, 3}, {3, 4}}));
  log.AddEpisode(Episode(1, {{0, 1}, {1, 2}}));

  EmOptions options;
  options.iterations = 10;
  EmDiagnostics diag;
  const IcBaselineModel model = CreateEmModel(g, log, options, &diag);
  EXPECT_EQ(model.name(), "EM");
  EXPECT_EQ(diag.log_likelihood.size(), 10u);
  for (uint64_t e = 0; e < g.num_edges(); ++e) {
    EXPECT_GE(model.probs().Get(e), 0.0);
    EXPECT_LE(model.probs().Get(e), 1.0);
  }
}

}  // namespace
}  // namespace inf2vec
