#include "util/status.h"

#include <gtest/gtest.h>

namespace inf2vec {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_FALSE(Status::Internal("x").ok());
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  const Status s = Status::InvalidArgument("the message");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: the message");
}

TEST(StatusTest, CopyPreservesState) {
  const Status s = Status::NotFound("missing");
  const Status copy = s;  // NOLINT(performance-unnecessary-copy-initialization)
  EXPECT_EQ(copy.code(), StatusCode::kNotFound);
  EXPECT_EQ(copy.message(), "missing");
}

TEST(ResultTest, HoldsValueOnSuccess) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsStatusOnFailure) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  const std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

TEST(ResultTest, WorksWithNonDefaultConstructibleTypes) {
  struct NoDefault {
    explicit NoDefault(int v) : value(v) {}
    int value;
  };
  Result<NoDefault> r(NoDefault(7));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().value, 7);
  Result<NoDefault> err(Status::Internal("boom"));
  EXPECT_FALSE(err.ok());
}

TEST(ResultTest, ValueAccessOnErrorDies) {
  Result<int> r(Status::Internal("boom"));
  EXPECT_DEATH((void)r.value(), "Result::value");
}

Status FailsInner() { return Status::IOError("inner"); }

Status Outer() {
  INF2VEC_RETURN_IF_ERROR(FailsInner());
  return Status::OK();
}

TEST(StatusMacroTest, ReturnIfErrorPropagates) {
  const Status s = Outer();
  EXPECT_EQ(s.code(), StatusCode::kIOError);
  EXPECT_EQ(s.message(), "inner");
}

}  // namespace
}  // namespace inf2vec
