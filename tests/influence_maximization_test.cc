#include "core/influence_maximization.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace inf2vec {
namespace {

/// Star-of-stars: user 0 reaches {1..5} with p=1; user 6 reaches {7} with
/// p=1; everyone else isolated. Optimal 2 seeds: {0, 6}.
SocialGraph StarGraph() {
  GraphBuilder builder(10);
  for (UserId v = 1; v <= 5; ++v) builder.AddEdge(0, v);
  builder.AddEdge(6, 7);
  return std::move(builder.Build()).value();
}

TEST(EstimateSpreadTest, DeterministicGraphExactSpread) {
  const SocialGraph g = StarGraph();
  const EdgeProbabilities probs(g, 1.0);
  Rng rng(1);
  EXPECT_DOUBLE_EQ(EstimateSpread(g, probs, {0}, 50, rng), 6.0);
  EXPECT_DOUBLE_EQ(EstimateSpread(g, probs, {6}, 50, rng), 2.0);
  EXPECT_DOUBLE_EQ(EstimateSpread(g, probs, {9}, 50, rng), 1.0);
}

TEST(EstimateSpreadTest, EmptySeedsAndZeroSims) {
  const SocialGraph g = StarGraph();
  const EdgeProbabilities probs(g, 1.0);
  Rng rng(2);
  EXPECT_DOUBLE_EQ(EstimateSpread(g, probs, {}, 50, rng), 0.0);
  EXPECT_DOUBLE_EQ(EstimateSpread(g, probs, {0}, 0, rng), 0.0);
}

TEST(SelectSeedsCelfTest, RejectsBadOptions) {
  const SocialGraph g = StarGraph();
  const EdgeProbabilities probs(g, 1.0);
  InfluenceMaxOptions options;
  options.num_seeds = 0;
  EXPECT_FALSE(SelectSeedsCelf(g, probs, options).ok());
  options.num_seeds = 99;
  EXPECT_FALSE(SelectSeedsCelf(g, probs, options).ok());
}

TEST(SelectSeedsCelfTest, FindsOptimalSeedsOnDeterministicGraph) {
  const SocialGraph g = StarGraph();
  const EdgeProbabilities probs(g, 1.0);
  InfluenceMaxOptions options;
  options.num_seeds = 2;
  options.mc_simulations = 30;
  auto selection = SelectSeedsCelf(g, probs, options);
  ASSERT_TRUE(selection.ok());
  ASSERT_EQ(selection.value().seeds.size(), 2u);
  EXPECT_EQ(selection.value().seeds[0], 0u);  // Biggest star first.
  EXPECT_EQ(selection.value().seeds[1], 6u);
  // Objective is the cumulative expected spread: 6 then 8.
  EXPECT_NEAR(selection.value().objective[0], 6.0, 1e-9);
  EXPECT_NEAR(selection.value().objective[1], 8.0, 1e-9);
}

TEST(SelectSeedsCelfTest, ObjectiveIsNonDecreasing) {
  const SocialGraph g = StarGraph();
  const EdgeProbabilities probs(g, 0.4);
  InfluenceMaxOptions options;
  options.num_seeds = 4;
  options.mc_simulations = 60;
  auto selection = SelectSeedsCelf(g, probs, options);
  ASSERT_TRUE(selection.ok());
  for (size_t i = 1; i < selection.value().objective.size(); ++i) {
    EXPECT_GE(selection.value().objective[i],
              selection.value().objective[i - 1] - 1e-9);
  }
}

TEST(SelectSeedsEmbeddingTest, PrefersHighScoringSources) {
  // dim 1: user 0 has a large source component, others small; all targets
  // positive.
  EmbeddingStore store(5, 1);
  store.Source(0)[0] = 5.0;
  store.Source(1)[0] = 1.0;
  store.Source(2)[0] = 0.5;
  for (UserId v = 0; v < 5; ++v) store.Target(v)[0] = 1.0;
  InfluenceMaxOptions options;
  options.num_seeds = 1;
  auto selection = SelectSeedsEmbedding(store, options);
  ASSERT_TRUE(selection.ok());
  EXPECT_EQ(selection.value().seeds[0], 0u);
}

TEST(SelectSeedsEmbeddingTest, SeedsAreDistinct) {
  EmbeddingStore store(8, 3);
  Rng rng(3);
  store.InitUniform(-0.5, 0.5, rng);
  InfluenceMaxOptions options;
  options.num_seeds = 5;
  auto selection = SelectSeedsEmbedding(store, options);
  ASSERT_TRUE(selection.ok());
  std::vector<UserId> seeds = selection.value().seeds;
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::unique(seeds.begin(), seeds.end()), seeds.end());
}

TEST(SelectSeedsEmbeddingTest, ComplementaryCoverageBeatsRedundancy) {
  // Users 0 and 1 influence the same audience strongly; user 2 influences
  // a disjoint audience weakly. Greedy should pick {0 or 1} then 2, never
  // both 0 and 1.
  EmbeddingStore store(9, 2);
  for (UserId v = 3; v < 6; ++v) {
    store.Target(v)[0] = 1.0;  // Audience A.
  }
  for (UserId v = 6; v < 9; ++v) {
    store.Target(v)[1] = 1.0;  // Audience B.
  }
  store.Source(0)[0] = 3.0;
  store.Source(1)[0] = 2.9;
  store.Source(2)[1] = 1.0;
  InfluenceMaxOptions options;
  options.num_seeds = 2;
  auto selection = SelectSeedsEmbedding(store, options);
  ASSERT_TRUE(selection.ok());
  EXPECT_EQ(selection.value().seeds[0], 0u);
  EXPECT_EQ(selection.value().seeds[1], 2u) << "picked redundant seed";
}

TEST(SelectSeedsEmbeddingTest, RejectsBadCounts) {
  EmbeddingStore store(4, 2);
  InfluenceMaxOptions options;
  options.num_seeds = 0;
  EXPECT_FALSE(SelectSeedsEmbedding(store, options).ok());
  options.num_seeds = 10;
  EXPECT_FALSE(SelectSeedsEmbedding(store, options).ok());
}

}  // namespace
}  // namespace inf2vec
