// Request-level observability tests: request-id generation and
// propagation (X-Request-Id in and out), /rpcz per-endpoint aggregates,
// the /tracez recent ring + slowest-N retention, RequestScope's
// thread-local span assembly (including the cache-miss vs cache-hit
// phase-presence contract against a real InfluenceService), the wide
// JSONL access log, and concurrent scrape-vs-query safety (the TSan
// target).

#include "obs/request_obs.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "embedding/model_io.h"
#include "obs/access_log.h"
#include "obs/http_server.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "serve/influence_service.h"
#include "util/rng.h"

namespace inf2vec {
namespace obs {
namespace {

struct ClientResponse {
  int status = 0;
  std::string headers;
  std::string body;
};

/// Minimal blocking HTTP client with custom request headers (the stock
/// obs_http_test client cannot send X-Request-Id).
ClientResponse Fetch(uint16_t port, const std::string& target,
                     const std::string& extra_headers = "") {
  ClientResponse response;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return response;
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return response;
  }
  const std::string request = "GET " + target +
                              " HTTP/1.1\r\nHost: 127.0.0.1\r\n" +
                              extra_headers + "Connection: close\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return response;
    }
    sent += static_cast<size_t>(n);
  }
  std::string raw;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    raw.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);

  const size_t line_end = raw.find("\r\n");
  if (line_end == std::string::npos) return response;
  const size_t space = raw.find(' ');
  if (space == std::string::npos || space + 4 > line_end) return response;
  response.status = std::stoi(raw.substr(space + 1, 3));
  const size_t header_end = raw.find("\r\n\r\n");
  if (header_end == std::string::npos) return response;
  response.headers = raw.substr(0, header_end);
  response.body = raw.substr(header_end + 4);
  return response;
}

/// A finished record with just enough shape for buffer tests.
RequestTraceRecord MakeRecord(const std::string& endpoint,
                              uint64_t total_us) {
  RequestTraceRecord record;
  record.request_id = GenerateRequestId();
  record.method = "GET";
  record.endpoint = endpoint;
  record.status = 200;
  record.total_us = total_us;
  return record;
}

TEST(RequestIdTest, GeneratedIdsAreWellFormedAndUnique) {
  std::set<std::string> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::string id = GenerateRequestId();
    ASSERT_EQ(id.size(), 17u) << id;
    EXPECT_EQ(id[8], '-') << id;
    for (size_t j = 0; j < id.size(); ++j) {
      if (j == 8) continue;
      EXPECT_TRUE(std::isxdigit(static_cast<unsigned char>(id[j]))) << id;
    }
    EXPECT_TRUE(seen.insert(id).second) << "duplicate id " << id;
  }
}

TEST(RpczRegistryTest, CountsRequestsErrorsInFlightAndLatency) {
  MetricsRegistry metrics;
  RpczRegistry rpcz(&metrics);

  RpczRegistry::Endpoint* topk = rpcz.Begin("/topk");
  ASSERT_NE(topk, nullptr);
  EXPECT_EQ(topk->in_flight.load(), 1);
  rpcz.End(topk, 200, 1000);
  EXPECT_EQ(topk->in_flight.load(), 0);
  rpcz.End(rpcz.Begin("/topk"), 404, 3000);
  rpcz.End(rpcz.Begin("/score"), 200, 50);

  // Begin resolves to the same record for the same endpoint.
  RpczRegistry::Endpoint* again = rpcz.Begin("/topk");
  EXPECT_EQ(again, topk);
  rpcz.End(again, 200, 2000);

  const JsonValue doc = rpcz.ToJson();
  EXPECT_GT(doc.Find("uptime_sec")->AsDouble(), 0.0);
  const JsonValue* endpoints = doc.Find("endpoints");
  ASSERT_NE(endpoints, nullptr);
  const JsonValue* topk_row = endpoints->Find("/topk");
  ASSERT_NE(topk_row, nullptr);
  EXPECT_EQ(topk_row->Find("requests")->AsInt(), 3);
  EXPECT_EQ(topk_row->Find("errors")->AsInt(), 1);
  EXPECT_EQ(topk_row->Find("in_flight")->AsInt(), 0);
  EXPECT_GT(topk_row->Find("rate_per_sec")->AsDouble(), 0.0);
  EXPECT_GE(topk_row->Find("p99_us")->AsDouble(),
            topk_row->Find("p50_us")->AsDouble());
  ASSERT_NE(endpoints->Find("/score"), nullptr);
  EXPECT_EQ(endpoints->Find("/score")->Find("errors")->AsInt(), 0);
}

TEST(RpczRegistryTest, PublishesLabeledPrometheusSeries) {
  MetricsRegistry metrics;
  RpczRegistry rpcz(&metrics);
  rpcz.End(rpcz.Begin("/topk"), 200, 1500);
  rpcz.End(rpcz.Begin("/topk"), 500, 80);

  const std::string text = RenderPrometheus(metrics.Scrape());
  EXPECT_NE(text.find("inf2vec_http_requests_total{endpoint=\"/topk\"} 2"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("inf2vec_http_errors_total{endpoint=\"/topk\"} 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("inf2vec_http_latency_us_bucket{endpoint=\"/topk\""),
            std::string::npos)
      << text;
}

TEST(TracezBufferTest, RecentRingKeepsNewestAndCountsEvictions) {
  TracezBuffer buffer(/*recent_capacity=*/3, /*slow_capacity=*/3,
                      /*slow_threshold_us=*/0);
  for (uint64_t i = 1; i <= 5; ++i) {
    buffer.Record(MakeRecord("/r" + std::to_string(i), i * 10));
  }
  const std::vector<RequestTraceRecord> recent = buffer.Recent();
  ASSERT_EQ(recent.size(), 3u);
  EXPECT_EQ(recent[0].endpoint, "/r5");  // Newest first.
  EXPECT_EQ(recent[1].endpoint, "/r4");
  EXPECT_EQ(recent[2].endpoint, "/r3");
  EXPECT_EQ(buffer.evicted(), 2u);
}

TEST(TracezBufferTest, SlowBufferSurvivesFastBursts) {
  TracezBuffer buffer(/*recent_capacity=*/2, /*slow_capacity=*/2,
                      /*slow_threshold_us=*/100);
  buffer.Record(MakeRecord("/slow-a", 5000));
  buffer.Record(MakeRecord("/slow-b", 900));
  // A burst of fast requests churns the recent ring but must not touch
  // the slow set: below threshold they are not even candidates.
  for (int i = 0; i < 50; ++i) buffer.Record(MakeRecord("/fast", 10));

  const std::vector<RequestTraceRecord> slowest = buffer.Slowest();
  ASSERT_EQ(slowest.size(), 2u);
  EXPECT_EQ(slowest[0].endpoint, "/slow-a");  // Slowest first.
  EXPECT_EQ(slowest[1].endpoint, "/slow-b");

  // A slower-than-the-fastest-retained request evicts only the fastest.
  buffer.Record(MakeRecord("/slow-c", 2000));
  const std::vector<RequestTraceRecord> updated = buffer.Slowest();
  ASSERT_EQ(updated.size(), 2u);
  EXPECT_EQ(updated[0].endpoint, "/slow-a");
  EXPECT_EQ(updated[1].endpoint, "/slow-c");
}

TEST(RequestTraceRecordTest, PhasesSumChildrenAndSkipTheRoot) {
  RequestTraceRecord record;
  TraceEvent root;
  root.name = "request";
  root.id = 1;
  root.parent_id = 0;
  root.duration_us = 1000;
  TraceEvent scan;
  scan.name = "kernel_scan";
  scan.id = 2;
  scan.parent_id = 1;
  scan.duration_us = 600;
  TraceEvent scan2 = scan;
  scan2.id = 3;
  scan2.duration_us = 150;
  record.spans = {scan, scan2, root};

  const JsonValue phases = record.PhasesJson();
  ASSERT_NE(phases.Find("kernel_scan"), nullptr);
  EXPECT_EQ(phases.Find("kernel_scan")->AsInt(), 750);
  EXPECT_EQ(phases.Find("request"), nullptr);  // Envelope, not a phase.
}

TEST(RequestScopeTest, AssemblesTraceWritesAccessLogAndFeedsRpcz) {
  MetricsRegistry metrics;
  RpczRegistry rpcz(&metrics);
  TracezBuffer tracez;
  AccessLog access_log;
  const std::string log_path =
      testing::TempDir() + "/request_obs_access.jsonl";
  std::remove(log_path.c_str());
  ASSERT_TRUE(access_log.Open(log_path).ok());
  RequestObservability obs{&rpcz, &tracez, &access_log};

  {
    RequestScope scope(obs, "GET", "/topk", /*inbound_request_id=*/"");
    ASSERT_FALSE(scope.request_id().empty());
    scope.root()->SetAttr("seed_count", static_cast<uint64_t>(3));
    { TraceSpan parse("parse", "serve"); }
    { TraceSpan scan("kernel_scan", "serve"); }
    scope.set_status(200);
    scope.set_response_bytes(512);
  }

  // rpcz saw the request.
  const JsonValue rpcz_doc = rpcz.ToJson();
  EXPECT_EQ(
      rpcz_doc.Find("endpoints")->Find("/topk")->Find("requests")->AsInt(),
      1);

  // tracez retained the fully-assembled record.
  const std::vector<RequestTraceRecord> recent = tracez.Recent();
  ASSERT_EQ(recent.size(), 1u);
  const RequestTraceRecord& record = recent[0];
  EXPECT_EQ(record.endpoint, "/topk");
  EXPECT_EQ(record.status, 200);
  EXPECT_EQ(record.response_bytes, 512u);
  ASSERT_EQ(record.spans.size(), 3u);  // parse, kernel_scan, root.
  const JsonValue phases = record.PhasesJson();
  EXPECT_NE(phases.Find("parse"), nullptr);
  EXPECT_NE(phases.Find("kernel_scan"), nullptr);
  // Root attributes (plus the stamped request_id) surfaced as attrs.
  bool saw_seed_count = false, saw_request_id = false;
  for (const auto& [key, value] : record.attrs) {
    if (key == "seed_count") saw_seed_count = value == "3";
    if (key == "request_id") saw_request_id = value == record.request_id;
  }
  EXPECT_TRUE(saw_seed_count);
  EXPECT_TRUE(saw_request_id);

  // The access log got exactly one schema-shaped line.
  access_log.Close();
  std::FILE* f = std::fopen(log_path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char line[4096];
  ASSERT_NE(std::fgets(line, sizeof(line), f), nullptr);
  std::fclose(f);
  Result<JsonValue> event = ParseJson(line);
  ASSERT_TRUE(event.ok()) << line;
  EXPECT_EQ(event.value().Find("endpoint")->AsString(), "/topk");
  EXPECT_EQ(event.value().Find("request_id")->AsString(),
            record.request_id);
  EXPECT_NE(event.value().Find("phases")->Find("kernel_scan"), nullptr);
  std::remove(log_path.c_str());
}

TEST(RequestScopeTest, InboundRequestIdWinsOverGenerated) {
  TracezBuffer tracez;
  RequestObservability obs{nullptr, &tracez, nullptr};
  {
    RequestScope scope(obs, "GET", "/score", "upstream-7");
    EXPECT_EQ(scope.request_id(), "upstream-7");
  }
  ASSERT_EQ(tracez.Recent().size(), 1u);
  EXPECT_EQ(tracez.Recent()[0].request_id, "upstream-7");
}

TEST(RequestScopeTest, SlowQueryCaptureRetainsDelayedRequest) {
  // Threshold sits far above the fast requests and far below the slow
  // one, so exactly the delayed request lands in the slow buffer.
  TracezBuffer tracez(/*recent_capacity=*/4, /*slow_capacity=*/4,
                      /*slow_threshold_us=*/5000);
  RequestObservability obs{nullptr, &tracez, nullptr};
  for (int i = 0; i < 3; ++i) {
    RequestScope scope(obs, "GET", "/fast", "");
  }
  {
    RequestScope scope(obs, "GET", "/delayed", "");
    TraceSpan span("kernel_scan", "serve");
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  const std::vector<RequestTraceRecord> slowest = tracez.Slowest();
  ASSERT_EQ(slowest.size(), 1u);
  EXPECT_EQ(slowest[0].endpoint, "/delayed");
  EXPECT_GE(slowest[0].total_us, 5000u);
  EXPECT_NE(slowest[0].PhasesJson().Find("kernel_scan"), nullptr);
  EXPECT_EQ(tracez.Recent().size(), 4u);  // Fast ones still in recent.
}

/// Fixed-seed service for the phase-attribution tests.
serve::InfluenceService MakeService(uint32_t num_users, uint32_t dim) {
  EmbeddingStore store(num_users, dim);
  Rng rng(17);
  store.InitUniform(-0.5, 0.5, rng);
  ModelArtifact artifact;
  artifact.store = std::move(store);
  artifact.metadata.dim = dim;
  auto service = serve::InfluenceService::FromArtifact(std::move(artifact),
                                                       serve::ServiceOptions{});
  EXPECT_TRUE(service.ok()) << service.status().ToString();
  return std::move(service).value();
}

TEST(RequestScopeTest, CacheMissVersusHitIsLegibleFromPhasePresence) {
  const serve::InfluenceService service = MakeService(128, 8);
  TracezBuffer tracez;
  RequestObservability obs{nullptr, &tracez, nullptr};

  serve::TopKRequest query;
  query.seeds = {3, 7, 11};
  query.k = 5;
  {
    RequestScope scope(obs, "GET", "/topk", "");  // Cold: gather runs.
    ASSERT_TRUE(service.TopK(query).ok());
  }
  {
    RequestScope scope(obs, "GET", "/topk", "");  // Hot: cache hit.
    ASSERT_TRUE(service.TopK(query).ok());
  }

  const std::vector<RequestTraceRecord> recent = tracez.Recent();
  ASSERT_EQ(recent.size(), 2u);
  const JsonValue hit_phases = recent[0].PhasesJson();    // Newest first.
  const JsonValue miss_phases = recent[1].PhasesJson();
  // The miss shows seed_gather time; the hit must not — hit/miss is
  // legible from the phase breakdown alone.
  EXPECT_NE(miss_phases.Find("seed_gather"), nullptr)
      << miss_phases.Dump(0);
  EXPECT_EQ(hit_phases.Find("seed_gather"), nullptr) << hit_phases.Dump(0);
  // Both scanned the table and merged results.
  for (const JsonValue* phases : {&miss_phases, &hit_phases}) {
    EXPECT_NE(phases->Find("cache_lookup"), nullptr) << phases->Dump(0);
    EXPECT_NE(phases->Find("kernel_scan"), nullptr) << phases->Dump(0);
  }
}

TEST(RequestObsHttpTest, ServerEchoesRequestIdAndRecordsTrace) {
  MetricsRegistry metrics;
  RpczRegistry rpcz(&metrics);
  TracezBuffer tracez;
  StatsServer server(StatsServerOptions{}, &metrics);
  server.SetRequestObservability({&rpcz, &tracez, nullptr});
  server.Route("GET", "/spanny", [](const HttpRequest&) {
    TraceSpan span("kernel_scan", "serve");
    return HttpResponse::Json(200, "{\"ok\": true}");
  });
  RegisterRequestObsEndpoints(&server, &rpcz, &tracez);
  ASSERT_TRUE(server.Start().ok());

  // Inbound id comes back on the response and stamps the trace.
  const ClientResponse tagged =
      Fetch(server.port(), "/spanny", "X-Request-Id: abc-123\r\n");
  EXPECT_EQ(tagged.status, 200);
  EXPECT_NE(tagged.headers.find("X-Request-Id: abc-123"), std::string::npos)
      << tagged.headers;

  // Without an inbound id the server generates one.
  const ClientResponse untagged = Fetch(server.port(), "/spanny");
  EXPECT_NE(untagged.headers.find("X-Request-Id: "), std::string::npos)
      << untagged.headers;

  // /rpcz reports the endpoint; /tracez carries the attributed traces.
  const ClientResponse rpcz_response = Fetch(server.port(), "/rpcz");
  ASSERT_EQ(rpcz_response.status, 200);
  Result<JsonValue> rpcz_doc = ParseJson(rpcz_response.body);
  ASSERT_TRUE(rpcz_doc.ok()) << rpcz_response.body;
  EXPECT_GE(rpcz_doc.value()
                .Find("endpoints")
                ->Find("/spanny")
                ->Find("requests")
                ->AsInt(),
            2);

  const ClientResponse tracez_response = Fetch(server.port(), "/tracez");
  ASSERT_EQ(tracez_response.status, 200);
  Result<JsonValue> tracez_doc = ParseJson(tracez_response.body);
  ASSERT_TRUE(tracez_doc.ok()) << tracez_response.body;
  const JsonValue* slowest = tracez_doc.value().Find("slowest");
  ASSERT_NE(slowest, nullptr);
  ASSERT_GT(slowest->size(), 0u);
  bool saw_tagged = false;
  for (const JsonValue& trace : slowest->items()) {
    if (trace.Find("request_id")->AsString() == "abc-123") {
      saw_tagged = true;
      EXPECT_EQ(trace.Find("endpoint")->AsString(), "/spanny");
      EXPECT_NE(trace.Find("phases")->Find("kernel_scan"), nullptr);
    }
  }
  EXPECT_TRUE(saw_tagged) << tracez_response.body;

  // 404s bypass the scope: no phantom endpoint appears in rpcz.
  EXPECT_EQ(Fetch(server.port(), "/missing").status, 404);
  EXPECT_EQ(ParseJson(Fetch(server.port(), "/rpcz").body)
                .value()
                .Find("endpoints")
                ->Find("/missing"),
            nullptr);

  server.Stop();
}

TEST(RequestObsHttpTest, ConcurrentScrapesAndQueriesAreClean) {
  // The TSan target: four threads running traced request scopes against
  // the shared rpcz/tracez/access-log state while a scraper thread reads
  // every aggregate view concurrently.
  MetricsRegistry metrics;
  RpczRegistry rpcz(&metrics);
  TracezBuffer tracez(/*recent_capacity=*/8, /*slow_capacity=*/8,
                      /*slow_threshold_us=*/0);
  AccessLog access_log;
  const std::string log_path =
      testing::TempDir() + "/request_obs_concurrent.jsonl";
  std::remove(log_path.c_str());
  ASSERT_TRUE(access_log.Open(log_path).ok());
  RequestObservability obs{&rpcz, &tracez, &access_log};

  constexpr int kThreads = 4;
  constexpr int kRequestsPerThread = 200;
  std::atomic<bool> done{false};
  std::thread scraper([&] {
    while (!done.load(std::memory_order_acquire)) {
      (void)rpcz.ToJson();
      (void)tracez.ToJson();
      (void)tracez.evicted();
    }
  });
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kRequestsPerThread; ++i) {
        RequestScope scope(obs, "GET", "/w" + std::to_string(t), "");
        TraceSpan span("kernel_scan", "serve");
        scope.set_status(i % 10 == 0 ? 500 : 200);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  done.store(true, std::memory_order_release);
  scraper.join();

  const JsonValue doc = rpcz.ToJson();
  uint64_t total = 0;
  for (int t = 0; t < kThreads; ++t) {
    const JsonValue* row =
        doc.Find("endpoints")->Find("/w" + std::to_string(t));
    ASSERT_NE(row, nullptr);
    total += static_cast<uint64_t>(row->Find("requests")->AsInt());
    EXPECT_EQ(row->Find("in_flight")->AsInt(), 0);
  }
  EXPECT_EQ(total, static_cast<uint64_t>(kThreads) * kRequestsPerThread);
  EXPECT_EQ(access_log.lines_written(),
            static_cast<uint64_t>(kThreads) * kRequestsPerThread);
  access_log.Close();
  std::remove(log_path.c_str());
}

}  // namespace
}  // namespace obs
}  // namespace inf2vec
