#include "util/alias_sampler.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace inf2vec {
namespace {

TEST(AliasSamplerTest, RejectsEmptyWeights) {
  AliasSampler sampler;
  EXPECT_FALSE(sampler.Build({}).ok());
}

TEST(AliasSamplerTest, RejectsNegativeWeight) {
  AliasSampler sampler;
  EXPECT_FALSE(sampler.Build({1.0, -0.5}).ok());
}

TEST(AliasSamplerTest, RejectsNanAndInf) {
  AliasSampler sampler;
  EXPECT_FALSE(sampler.Build({1.0, std::nan("")}).ok());
  EXPECT_FALSE(sampler.Build({1.0, INFINITY}).ok());
}

TEST(AliasSamplerTest, RejectsAllZeroWeights) {
  AliasSampler sampler;
  EXPECT_FALSE(sampler.Build({0.0, 0.0}).ok());
}

TEST(AliasSamplerTest, SingleElementAlwaysSampled) {
  AliasSampler sampler;
  ASSERT_TRUE(sampler.Build({3.7}).ok());
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sampler.Sample(rng), 0u);
}

TEST(AliasSamplerTest, ZeroWeightEntryNeverSampled) {
  AliasSampler sampler;
  ASSERT_TRUE(sampler.Build({1.0, 0.0, 1.0}).ok());
  Rng rng(2);
  for (int i = 0; i < 5000; ++i) EXPECT_NE(sampler.Sample(rng), 1u);
}

TEST(AliasSamplerTest, ReconstructedProbabilitiesMatchWeights) {
  const std::vector<double> weights = {1.0, 2.0, 3.0, 4.0};
  AliasSampler sampler;
  ASSERT_TRUE(sampler.Build(weights).ok());
  const double total = 10.0;
  for (uint32_t i = 0; i < weights.size(); ++i) {
    EXPECT_NEAR(sampler.ProbabilityOf(i), weights[i] / total, 1e-9);
  }
}

TEST(AliasSamplerTest, EmpiricalDistributionMatches) {
  const std::vector<double> weights = {5.0, 1.0, 3.0, 1.0};
  AliasSampler sampler;
  ASSERT_TRUE(sampler.Build(weights).ok());
  Rng rng(3);
  constexpr int kDraws = 100000;
  std::vector<int> counts(weights.size(), 0);
  for (int i = 0; i < kDraws; ++i) ++counts[sampler.Sample(rng)];
  for (size_t i = 0; i < weights.size(); ++i) {
    const double expected = weights[i] / 10.0 * kDraws;
    EXPECT_NEAR(counts[i], expected, 0.05 * kDraws);
  }
}

TEST(AliasSamplerTest, HandlesExtremeWeightRatios) {
  AliasSampler sampler;
  ASSERT_TRUE(sampler.Build({1e-6, 1e6}).ok());
  Rng rng(5);
  int rare = 0;
  for (int i = 0; i < 10000; ++i) rare += sampler.Sample(rng) == 0 ? 1 : 0;
  EXPECT_LT(rare, 5);  // P(index 0) = 1e-12.
}

TEST(AliasSamplerTest, RebuildReplacesDistribution) {
  AliasSampler sampler;
  ASSERT_TRUE(sampler.Build({1.0, 0.0}).ok());
  ASSERT_TRUE(sampler.Build({0.0, 1.0}).ok());
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sampler.Sample(rng), 1u);
}

class AliasSamplerSizeTest : public ::testing::TestWithParam<int> {};

TEST_P(AliasSamplerSizeTest, UniformWeightsStayUniform) {
  const int n = GetParam();
  AliasSampler sampler;
  ASSERT_TRUE(sampler.Build(std::vector<double>(n, 2.5)).ok());
  EXPECT_EQ(sampler.size(), static_cast<size_t>(n));
  Rng rng(11);
  std::vector<int> counts(n, 0);
  const int draws = 2000 * n;
  for (int i = 0; i < draws; ++i) ++counts[sampler.Sample(rng)];
  for (int c : counts) {
    EXPECT_NEAR(c, 2000.0, 2000.0 * 0.25);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, AliasSamplerSizeTest,
                         ::testing::Values(1, 2, 3, 7, 16, 64));

}  // namespace
}  // namespace inf2vec
