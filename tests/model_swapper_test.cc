// ModelSwapper tests: zero-downtime hot swap. The headline pin is the
// concurrency test — readers hammering /topk-equivalent queries during
// repeated reloads never see an error and never see a (generation, score)
// pair from two different models. Run under -DINF2VEC_SANITIZE=thread to
// prove the RCU publication is race-free.

#include "serve/model_swapper.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/embedding_predictor.h"
#include "embedding/model_io.h"
#include "obs/memory.h"
#include "util/io.h"
#include "util/rng.h"

namespace inf2vec {
namespace serve {
namespace {

constexpr uint32_t kUsers = 64;
constexpr uint32_t kDim = 8;

EmbeddingStore MakeStore(uint64_t seed) {
  EmbeddingStore store(kUsers, kDim);
  Rng rng(seed);
  store.InitUniform(-0.5, 0.5, rng);
  for (UserId u = 0; u < kUsers; ++u) {
    store.mutable_source_bias(u) = rng.UniformDouble(-0.2, 0.2);
    store.mutable_target_bias(u) = rng.UniformDouble(-0.2, 0.2);
  }
  return store;
}

Status SaveModel(const std::string& path, uint64_t seed) {
  ModelMetadata metadata;
  metadata.aggregation = "Ave";
  metadata.dim = kDim;
  metadata.seed = seed;
  return SaveModelArtifact(MakeStore(seed), metadata, path);
}

/// Reference score of the fixed probe query against the store `seed`
/// would produce — what a swapper serving that model must return.
double ExpectedScore(uint64_t seed, const std::vector<UserId>& seeds,
                     UserId candidate) {
  const EmbeddingStore store = MakeStore(seed);
  const EmbeddingPredictor predictor("ref", &store, Aggregation::kAve);
  return predictor.ScoreActivation(candidate, seeds);
}

/// Brute-force top-1 score over non-seed candidates for the store `seed`
/// would serve — the head a concurrent TopK query must observe.
double ExpectedTopScore(uint64_t seed, const std::vector<UserId>& seeds) {
  const EmbeddingStore store = MakeStore(seed);
  const EmbeddingPredictor predictor("ref", &store, Aggregation::kAve);
  double best = -1e300;
  for (UserId v = 0; v < kUsers; ++v) {
    if (std::find(seeds.begin(), seeds.end(), v) != seeds.end()) continue;
    best = std::max(best, predictor.ScoreActivation(v, seeds));
  }
  return best;
}

class ModelSwapperTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("inf2vec_swap_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
    model_path_ = (dir_ / "model.bin").string();
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
  std::string model_path_;
};

TEST_F(ModelSwapperTest, NothingServedBeforeFirstReload) {
  ModelSwapper swapper(model_path_, {});
  EXPECT_EQ(swapper.Acquire(), nullptr);
  EXPECT_EQ(swapper.generation(), 0u);
  EXPECT_FALSE(swapper.watching());
}

TEST_F(ModelSwapperTest, InitialReloadPublishesGenerationOne) {
  ASSERT_TRUE(SaveModel(model_path_, 1).ok());
  ModelSwapper swapper(model_path_, {});
  ASSERT_TRUE(swapper.Reload().ok());
  const auto model = swapper.Acquire();
  ASSERT_NE(model, nullptr);
  EXPECT_EQ(model->generation, 1u);
  EXPECT_EQ(model->service.store().num_users(), kUsers);

  ScoreRequest request;
  request.candidate = 9;
  request.seeds = {1, 2, 3};
  const Result<ScoreResult> score = model->service.ScoreActivation(request);
  ASSERT_TRUE(score.ok());
  EXPECT_EQ(score.value().score, ExpectedScore(1, request.seeds, 9));
}

TEST_F(ModelSwapperTest, FailedReloadKeepsOldModelServing) {
  ASSERT_TRUE(SaveModel(model_path_, 1).ok());
  ModelSwapper swapper(model_path_, {});
  ASSERT_TRUE(swapper.Reload().ok());

  // Clobber the file with garbage: the reload fails, the old model stays.
  ASSERT_TRUE(WriteFileAtomic(model_path_, "definitely not a model").ok());
  EXPECT_FALSE(swapper.Reload().ok());
  const auto model = swapper.Acquire();
  ASSERT_NE(model, nullptr);
  EXPECT_EQ(model->generation, 1u);
  ScoreRequest request;
  request.candidate = 4;
  request.seeds = {7};
  EXPECT_TRUE(model->service.ScoreActivation(request).ok());

  // A repaired file swaps in and bumps past the failed attempt.
  ASSERT_TRUE(SaveModel(model_path_, 2).ok());
  ASSERT_TRUE(swapper.Reload().ok());
  EXPECT_EQ(swapper.generation(), 2u);
}

TEST_F(ModelSwapperTest, InitialLoadFailureLeavesNothingPublished) {
  ModelSwapper swapper(model_path_, {});  // File does not exist.
  EXPECT_FALSE(swapper.Reload().ok());
  EXPECT_EQ(swapper.Acquire(), nullptr);
  EXPECT_EQ(swapper.generation(), 0u);
}

TEST_F(ModelSwapperTest, ConcurrentQueriesNeverErrorOrMixGenerations) {
  const std::vector<UserId> probe_seeds = {3, 11, 42};
  constexpr UserId kCandidate = 7;
  constexpr int kReloads = 6;

  // expected*[g] is written before generation g is published; the mutex
  // guarding the swap makes it visible to every reader that acquires
  // generation g.
  double expected_score[kReloads + 1] = {};
  double expected_top[kReloads + 1] = {};

  ASSERT_TRUE(SaveModel(model_path_, 1).ok());
  expected_score[1] = ExpectedScore(1, probe_seeds, kCandidate);
  expected_top[1] = ExpectedTopScore(1, probe_seeds);
  ModelSwapper swapper(model_path_, {});
  ASSERT_TRUE(swapper.Reload().ok());

  std::atomic<bool> stop{false};
  std::atomic<int> errors{0};
  std::atomic<int> mixed{0};
  std::atomic<uint64_t> requests{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t]() {
      while (!stop.load(std::memory_order_relaxed)) {
        const auto model = swapper.Acquire();
        if (model == nullptr) {
          errors.fetch_add(1);
          continue;
        }
        if (t % 2 == 0) {
          ScoreRequest request;
          request.candidate = kCandidate;
          request.seeds = probe_seeds;
          const Result<ScoreResult> got =
              model->service.ScoreActivation(request);
          if (!got.ok()) {
            errors.fetch_add(1);
          } else if (got.value().score !=
                     expected_score[model->generation]) {
            // A score from one model stamped with another model's
            // generation — the swap tore.
            mixed.fetch_add(1);
          }
        } else {
          TopKRequest request;
          request.seeds = probe_seeds;
          request.k = 5;
          const Result<TopKResult> got = model->service.TopK(request);
          if (!got.ok() || got.value().entries.size() != 5u) {
            errors.fetch_add(1);
          } else if (got.value().entries[0].score !=
                     expected_top[model->generation]) {
            mixed.fetch_add(1);
          }
        }
        requests.fetch_add(1);
      }
    });
  }

  for (int i = 2; i <= kReloads; ++i) {
    ASSERT_TRUE(SaveModel(model_path_, static_cast<uint64_t>(i)).ok());
    expected_score[i] = ExpectedScore(static_cast<uint64_t>(i), probe_seeds,
                                      kCandidate);
    expected_top[i] = ExpectedTopScore(static_cast<uint64_t>(i),
                                       probe_seeds);
    ASSERT_TRUE(swapper.Reload().ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  stop.store(true);
  for (std::thread& reader : readers) reader.join();

  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(mixed.load(), 0);
  EXPECT_GT(requests.load(), 0u);
  EXPECT_EQ(swapper.generation(), static_cast<uint64_t>(kReloads));
}

TEST_F(ModelSwapperTest, WatcherReloadsWhenTheFileChanges) {
  ASSERT_TRUE(SaveModel(model_path_, 1).ok());
  ModelSwapper swapper(model_path_, {});
  ASSERT_TRUE(swapper.Reload().ok());
  swapper.StartWatching(20);
  EXPECT_TRUE(swapper.watching());

  // Push a new model and force a distinct mtime (filesystem clocks can be
  // coarse enough to alias two quick writes).
  ASSERT_TRUE(SaveModel(model_path_, 2).ok());
  std::filesystem::last_write_time(
      model_path_, std::filesystem::file_time_type::clock::now() +
                       std::chrono::seconds(2));

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (swapper.generation() < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(swapper.generation(), 2u);

  swapper.StopWatching();
  EXPECT_FALSE(swapper.watching());
}

TEST_F(ModelSwapperTest, WatcherIgnoresAVanishedFile) {
  ASSERT_TRUE(SaveModel(model_path_, 1).ok());
  ModelSwapper swapper(model_path_, {});
  ASSERT_TRUE(swapper.Reload().ok());
  swapper.StartWatching(10);

  // Deleting the file (a push-in-progress rename window) must not trigger
  // a doomed reload; the old model keeps serving.
  std::filesystem::remove(model_path_);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(swapper.generation(), 1u);
  ASSERT_NE(swapper.Acquire(), nullptr);

  swapper.StopWatching();
}

TEST_F(ModelSwapperTest, SwapAccountsTheDoubleResidentTransient) {
  // Zeroed baseline so AccountedBytes() below is this swapper's tables
  // alone (earlier tests' services are destroyed by now).
  obs::MemoryRegistry::Default().Reset();

  ASSERT_TRUE(SaveModel(model_path_, 1).ok());
  ModelSwapper swapper(model_path_, {});
  ASSERT_TRUE(swapper.Reload().ok());
  // First load doubled nothing: no transient to report.
  EXPECT_EQ(swapper.last_swap_transient_bytes(), 0u);
  const uint64_t single = obs::MemoryRegistry::Default().AccountedBytes();
  ASSERT_GT(single, 0u) << "a resident model must account its tables";

  ASSERT_TRUE(SaveModel(model_path_, 2).ok());
  ASSERT_TRUE(swapper.Reload().ok());
  // While the swap warmed generation 2, generation 1 was still serving:
  // the recorded peak must exceed single residency.
  EXPECT_GT(swapper.last_swap_transient_bytes(), single);
  EXPECT_GE(swapper.peak_swap_transient_bytes(),
            swapper.last_swap_transient_bytes());
  // And after publication the old tables were freed — steady state is
  // back below the transient peak.
  EXPECT_LT(obs::MemoryRegistry::Default().AccountedBytes(),
            swapper.last_swap_transient_bytes());
}

TEST_F(ModelSwapperTest, BudgetPreflightRefusesADoomedSwap) {
  obs::MemoryRegistry::Default().Reset();
  obs::SetMemoryBudget({0, 0});

  ASSERT_TRUE(SaveModel(model_path_, 1).ok());
  ModelSwapper swapper(model_path_, {});
  ASSERT_TRUE(swapper.Reload().ok());
  const uint64_t single = obs::MemoryRegistry::Default().AccountedBytes();
  ASSERT_GT(single, 0u);

  // A budget that admits one resident model but not two: the preflight
  // must refuse before loading, and the old model must keep serving.
  obs::SetMemoryBudget({single + single / 2, 0});
  ASSERT_TRUE(SaveModel(model_path_, 2).ok());
  const Status refused = swapper.Reload();
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(swapper.generation(), 1u);
  ASSERT_NE(swapper.Acquire(), nullptr);

  // Lifting the budget lets the same swap through.
  obs::SetMemoryBudget({0, 0});
  ASSERT_TRUE(swapper.Reload().ok());
  EXPECT_EQ(swapper.generation(), 2u);
}

TEST_F(ModelSwapperTest, DestructorStopsAnActiveWatcher) {
  ASSERT_TRUE(SaveModel(model_path_, 1).ok());
  {
    ModelSwapper swapper(model_path_, {});
    ASSERT_TRUE(swapper.Reload().ok());
    swapper.StartWatching(10);
  }  // Must join cleanly; TSan would flag a leaked racing thread.
}

}  // namespace
}  // namespace serve
}  // namespace inf2vec
