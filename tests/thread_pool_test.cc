#include "util/thread_pool.h"

#include <atomic>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/inf2vec_model.h"
#include "synth/world_generator.h"

namespace inf2vec {
namespace {

TEST(ThreadPoolTest, ResolveThreadCountZeroMeansHardware) {
  EXPECT_GE(ThreadPool::ResolveThreadCount(0), 1u);
  EXPECT_EQ(ThreadPool::ResolveThreadCount(3), 3u);
  EXPECT_EQ(ThreadPool::ResolveThreadCount(1), 1u);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(257);
  for (auto& v : visits) v.store(0);
  pool.ParallelFor(0, visits.size(),
                   [&](uint32_t, size_t begin, size_t end) {
                     for (size_t i = begin; i < end; ++i) {
                       visits[i].fetch_add(1);
                     }
                   });
  for (size_t i = 0; i < visits.size(); ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ShardsAreContiguousOrderedAndBalanced) {
  ThreadPool pool(4);
  std::mutex mu;
  std::vector<std::pair<size_t, size_t>> ranges(4, {0, 0});
  pool.ParallelFor(10, 33, [&](uint32_t shard, size_t begin, size_t end) {
    std::lock_guard<std::mutex> lock(mu);
    ranges[shard] = {begin, end};
  });
  // 23 items over 4 shards: sizes 6,6,6,5, shard s starts where s-1 ends.
  const std::vector<std::pair<size_t, size_t>> expected = {
      {10, 16}, {16, 22}, {22, 28}, {28, 33}};
  EXPECT_EQ(ranges, expected);
}

TEST(ThreadPoolTest, SingleThreadRunsInlineAsOneShard) {
  ThreadPool pool(1);
  int calls = 0;
  pool.ParallelFor(5, 25, [&](uint32_t shard, size_t begin, size_t end) {
    ++calls;
    EXPECT_EQ(shard, 0u);
    EXPECT_EQ(begin, 5u);
    EXPECT_EQ(end, 25u);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, MoreThreadsThanItemsShrinksShardCount) {
  ThreadPool pool(8);
  std::mutex mu;
  std::set<uint32_t> shards;
  std::vector<int> visits(3, 0);
  pool.ParallelFor(0, 3, [&](uint32_t shard, size_t begin, size_t end) {
    std::lock_guard<std::mutex> lock(mu);
    shards.insert(shard);
    for (size_t i = begin; i < end; ++i) ++visits[i];
  });
  EXPECT_LE(shards.size(), 3u);
  for (int v : visits) EXPECT_EQ(v, 1);
}

TEST(ThreadPoolTest, EmptyRangeIsANoop) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(7, 7, [&](uint32_t, size_t, size_t) { ++calls; });
  pool.ParallelFor(9, 3, [&](uint32_t, size_t, size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, ReusableAcrossManyJobs) {
  ThreadPool pool(3);
  std::atomic<int64_t> sum{0};
  for (int round = 0; round < 50; ++round) {
    pool.ParallelFor(0, 100, [&](uint32_t, size_t begin, size_t end) {
      int64_t local = 0;
      for (size_t i = begin; i < end; ++i) {
        local += static_cast<int64_t>(i);
      }
      sum.fetch_add(local);
    });
  }
  EXPECT_EQ(sum.load(), 50 * (99 * 100 / 2));
}

TEST(ThreadPoolTest, ShardSeedsAreDistinctAndDecorrelatedFromBase) {
  const uint64_t base = 42;
  std::set<uint64_t> seeds = {base};
  for (uint64_t shard = 0; shard < 64; ++shard) {
    EXPECT_TRUE(seeds.insert(ThreadPool::ShardSeed(base, shard)).second)
        << "collision at shard " << shard;
  }
  // Fixed derivation: the scheme is part of the reproducibility contract.
  EXPECT_EQ(ThreadPool::ShardSeed(base, 7),
            ThreadPool::ShardSeed(base, 7));
}

/// Hogwild smoke test: a tiny 4-thread end-to-end training job. Exercises
/// the parallel corpus builder and the lock-free SGD epochs (run this
/// under -DINF2VEC_SANITIZE=thread to validate the benign-race
/// annotations; keep the world tiny so TSan's shadow memory stays cheap).
TEST(ThreadPoolTest, HogwildTrainingSmoke) {
  synth::WorldProfile profile = synth::WorldProfile::DiggLike();
  profile.num_users = 120;
  profile.num_items = 25;
  profile.mean_out_degree = 5.0;
  Rng world_rng(77);
  Result<synth::World> world = synth::GenerateWorld(profile, world_rng);
  ASSERT_TRUE(world.ok());

  Inf2vecConfig config;
  config.dim = 8;
  config.epochs = 2;
  config.context.length = 8;
  config.num_threads = 4;
  Result<Inf2vecModel> model =
      Inf2vecModel::Train(world.value().graph, world.value().log, config);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  const EmbeddingStore& store = model.value().embeddings();
  EXPECT_EQ(store.num_users(), world.value().graph.num_users());
  for (UserId u = 0; u < store.num_users(); ++u) {
    for (double x : store.Source(u)) EXPECT_TRUE(std::isfinite(x));
    for (double x : store.Target(u)) EXPECT_TRUE(std::isfinite(x));
    EXPECT_TRUE(std::isfinite(store.source_bias(u)));
    EXPECT_TRUE(std::isfinite(store.target_bias(u)));
  }
}

}  // namespace
}  // namespace inf2vec
