// Tests for the kForwardBfs local-context strategy (the paper's
// future-work alternative to the random walk of Algorithm 1).

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "diffusion/context_generator.h"

namespace inf2vec {
namespace {

/// Chain 0 -> 1 -> 2 -> 3 -> 4 plus a wide fan 0 -> {5..9}.
SocialGraph FanChainGraph() {
  GraphBuilder builder(10);
  for (UserId u = 0; u < 4; ++u) builder.AddEdge(u, u + 1);
  for (UserId v = 5; v < 10; ++v) builder.AddEdge(0, v);
  return std::move(builder.Build()).value();
}

PropagationNetwork FullNetwork(const SocialGraph& g) {
  DiffusionEpisode e(0);
  for (UserId u = 0; u < 10; ++u) e.Add(u, u + 1);
  EXPECT_TRUE(e.Finalize().ok());
  return PropagationNetwork(g, e);
}

ContextOptions BfsOptions(uint32_t length, uint32_t depth = 4) {
  ContextOptions opts;
  opts.length = length;
  opts.alpha = 1.0;  // Local only: isolate the strategy under test.
  opts.strategy = LocalContextStrategy::kForwardBfs;
  opts.bfs_max_depth = depth;
  return opts;
}

TEST(ForwardBfsContextTest, EmitsDirectSuccessorsFirst) {
  const SocialGraph g = FanChainGraph();
  const PropagationNetwork net = FullNetwork(g);
  Rng rng(1);
  const InfluenceContext ctx =
      GenerateInfluenceContext(net, 0, BfsOptions(6), rng);
  // Level 1 of node 0 = {1, 5, 6, 7, 8, 9} exactly fills the budget.
  const std::set<UserId> got(ctx.context.begin(), ctx.context.end());
  EXPECT_EQ(got, (std::set<UserId>{1, 5, 6, 7, 8, 9}));
}

TEST(ForwardBfsContextTest, ExpandsToHigherOrders) {
  const SocialGraph g = FanChainGraph();
  const PropagationNetwork net = FullNetwork(g);
  Rng rng(2);
  const InfluenceContext ctx =
      GenerateInfluenceContext(net, 0, BfsOptions(9), rng);
  const std::set<UserId> got(ctx.context.begin(), ctx.context.end());
  // 6 direct successors + the chain continuation 2, 3 (depth 2, 3).
  EXPECT_TRUE(got.contains(2));
  EXPECT_TRUE(got.contains(3));
  EXPECT_EQ(ctx.context.size(), 9u);
}

TEST(ForwardBfsContextTest, NoDuplicatesUnlikeRandomWalk) {
  const SocialGraph g = FanChainGraph();
  const PropagationNetwork net = FullNetwork(g);
  Rng rng(3);
  const InfluenceContext ctx =
      GenerateInfluenceContext(net, 0, BfsOptions(50), rng);
  std::set<UserId> unique(ctx.context.begin(), ctx.context.end());
  EXPECT_EQ(unique.size(), ctx.context.size());
}

TEST(ForwardBfsContextTest, DepthCapLimitsReach) {
  const SocialGraph g = FanChainGraph();
  const PropagationNetwork net = FullNetwork(g);
  Rng rng(4);
  const InfluenceContext ctx =
      GenerateInfluenceContext(net, 0, BfsOptions(50, /*depth=*/1), rng);
  // Depth 1: only direct successors.
  for (UserId v : ctx.context) {
    EXPECT_TRUE(v == 1 || v >= 5) << "node " << v << " beyond depth 1";
  }
}

TEST(ForwardBfsContextTest, SinkStartIsEmpty) {
  const SocialGraph g = FanChainGraph();
  const PropagationNetwork net = FullNetwork(g);
  Rng rng(5);
  EXPECT_TRUE(GenerateInfluenceContext(net, 9, BfsOptions(10), rng)
                  .context.empty());
}

TEST(ForwardBfsContextTest, OverflowingLevelIsSubsampled) {
  const SocialGraph g = FanChainGraph();
  const PropagationNetwork net = FullNetwork(g);
  Rng rng(6);
  const InfluenceContext ctx =
      GenerateInfluenceContext(net, 0, BfsOptions(3), rng);
  EXPECT_EQ(ctx.context.size(), 3u);
  // All sampled nodes must still be direct successors of 0.
  for (UserId v : ctx.context) {
    EXPECT_TRUE(v == 1 || v >= 5);
  }
}

TEST(ForwardBfsContextTest, GlobalComponentStillApplies) {
  const SocialGraph g = FanChainGraph();
  const PropagationNetwork net = FullNetwork(g);
  Rng rng(7);
  ContextOptions opts = BfsOptions(20);
  opts.alpha = 0.5;
  const InfluenceContext ctx = GenerateInfluenceContext(net, 9, opts, rng);
  // Sink node: local part empty, global half-budget (10) still fills
  // (with replacement, since the 9-user pool is smaller than the budget).
  EXPECT_EQ(ctx.context.size(), 10u);
  for (UserId v : ctx.context) EXPECT_NE(v, 9u);
}

}  // namespace
}  // namespace inf2vec
