// Cross-module property suites: invariants that must hold for any seed and
// any world profile, exercised with parameterized sweeps.

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "baselines/ic_baseline.h"
#include "core/inf2vec_model.h"
#include "diffusion/influence_pairs.h"
#include "diffusion/propagation_network.h"
#include "eval/activation_task.h"
#include "eval/metrics.h"
#include "synth/world_generator.h"

namespace inf2vec {
namespace {

struct WorldCase {
  uint64_t seed;
  bool flickr;
};

class WorldPropertyTest : public ::testing::TestWithParam<WorldCase> {
 protected:
  synth::World MakeWorld() {
    synth::WorldProfile profile = GetParam().flickr
                                      ? synth::WorldProfile::FlickrLike()
                                      : synth::WorldProfile::DiggLike();
    profile.num_users = 250;
    profile.num_items = 60;
    Rng rng(GetParam().seed);
    auto world = synth::GenerateWorld(profile, rng);
    EXPECT_TRUE(world.ok());
    return std::move(world).value();
  }
};

TEST_P(WorldPropertyTest, InfluencePairsRespectDefinitionOne) {
  const synth::World w = MakeWorld();
  for (const DiffusionEpisode& e : w.log.episodes()) {
    std::unordered_map<UserId, Timestamp> adopted_at;
    for (const Adoption& a : e.adoptions()) adopted_at.emplace(a.user, a.time);
    for (const InfluencePair& p : ExtractInfluencePairs(w.graph, e)) {
      ASSERT_TRUE(w.graph.HasEdge(p.source, p.target));
      ASSERT_LT(adopted_at.at(p.source), adopted_at.at(p.target));
    }
  }
}

TEST_P(WorldPropertyTest, PropagationNetworksAreAlwaysAcyclic) {
  const synth::World w = MakeWorld();
  for (const DiffusionEpisode& e : w.log.episodes()) {
    const PropagationNetwork net(w.graph, e);
    ASSERT_TRUE(net.IsAcyclic());
    ASSERT_LE(net.num_edges(), ExtractInfluencePairs(w.graph, e).size());
  }
}

TEST_P(WorldPropertyTest, StProbabilitiesAreValidProbabilities) {
  const synth::World w = MakeWorld();
  const IcBaselineModel st = CreateStaticModel(w.graph, w.log, 1);
  for (uint64_t e = 0; e < w.graph.num_edges(); ++e) {
    ASSERT_GE(st.probs().Get(e), 0.0);
    ASSERT_LE(st.probs().Get(e), 1.0);
  }
}

TEST_P(WorldPropertyTest, CorpusPairsStayInUserSpace) {
  const synth::World w = MakeWorld();
  ContextOptions opts;
  opts.length = 12;
  const InfluenceCorpus corpus = BuildInfluenceCorpus(
      w.graph, w.log, opts, w.graph.num_users(),
      CorpusBuildOptions{.seed = GetParam().seed + 1});
  for (const auto& [u, v] : corpus.pairs) {
    ASSERT_LT(u, w.graph.num_users());
    ASSERT_LT(v, w.graph.num_users());
    ASSERT_NE(u, v);
  }
}

TEST_P(WorldPropertyTest, ActivationCasesAreConsistent) {
  const synth::World w = MakeWorld();
  for (const DiffusionEpisode& e : w.log.episodes()) {
    std::set<UserId> adopters;
    for (const Adoption& a : e.adoptions()) adopters.insert(a.user);
    for (const ActivationCase& c : BuildActivationCases(w.graph, e)) {
      ASSERT_FALSE(c.influencers.empty());
      ASSERT_EQ(c.activated, adopters.contains(c.candidate));
      for (UserId u : c.influencers) {
        ASSERT_TRUE(adopters.contains(u));
        ASSERT_TRUE(w.graph.HasEdge(u, c.candidate));
      }
    }
  }
}

TEST_P(WorldPropertyTest, MetricsStayInUnitRange) {
  const synth::World w = MakeWorld();
  const IcBaselineModel de = CreateDegreeModel(w.graph, 10);
  const RankingMetrics m = EvaluateActivation(de, w.graph, w.log);
  EXPECT_GE(m.auc, 0.0);
  EXPECT_LE(m.auc, 1.0);
  EXPECT_GE(m.map, 0.0);
  EXPECT_LE(m.map, 1.0);
  EXPECT_GE(m.p10, 0.0);
  EXPECT_LE(m.p10, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Worlds, WorldPropertyTest,
    ::testing::Values(WorldCase{1, false}, WorldCase{2, false},
                      WorldCase{3, true}, WorldCase{4, true}));

class MetricInvarianceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MetricInvarianceTest, AucInvariantUnderMonotoneTransforms) {
  Rng rng(GetParam());
  RankedQuery q;
  for (int i = 0; i < 50; ++i) {
    q.scores.push_back(rng.Gaussian());
    q.labels.push_back(rng.Bernoulli(0.3));
  }
  RankedQuery scaled = q;
  for (double& s : scaled.scores) s = 3.0 * s + 10.0;
  RankedQuery exped = q;
  for (double& s : exped.scores) s = std::exp(s);
  EXPECT_DOUBLE_EQ(AucByRank(q), AucByRank(scaled));
  EXPECT_NEAR(AucByRank(q), AucByRank(exped), 1e-12);
  EXPECT_NEAR(AveragePrecision(q), AveragePrecision(exped), 1e-12);
}

TEST_P(MetricInvarianceTest, PrecisionAtNIsMonotoneInRelevantDepth) {
  // A perfect ranking's P@N is non-increasing in N.
  Rng rng(GetParam() + 100);
  RankedQuery q;
  const int num_pos = 5;
  for (int i = 0; i < 40; ++i) {
    const bool pos = i < num_pos;
    q.labels.push_back(pos);
    q.scores.push_back(pos ? 100.0 - i : 10.0 - i);
  }
  double prev = 1.0;
  for (size_t n : {1u, 2u, 5u, 10u, 20u, 40u}) {
    const double p = PrecisionAtN(q, n);
    EXPECT_LE(p, prev + 1e-12);
    prev = p;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricInvarianceTest,
                         ::testing::Values(7, 8, 9));

class SgdDimensionTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(SgdDimensionTest, TrainingImprovesObjectiveAtAnyDimension) {
  const uint32_t dim = GetParam();
  EmbeddingStore store(6, dim);
  Rng rng(5);
  store.InitPaperDefault(rng);
  const NegativeSampler sampler = NegativeSampler::CreateUniform(6);
  SgdOptions opts;
  opts.learning_rate = 0.05;
  opts.num_negatives = 2;
  SgdTrainer trainer(&store, &sampler, opts);
  const std::vector<UserId> negs = {3, 4};
  const double before = trainer.PairObjective(0, 1, negs);
  for (int i = 0; i < 300; ++i) trainer.TrainPair(0, 1, rng);
  EXPECT_GT(trainer.PairObjective(0, 1, negs), before);
  for (double x : store.Source(0)) EXPECT_TRUE(std::isfinite(x));
}

INSTANTIATE_TEST_SUITE_P(Dims, SgdDimensionTest,
                         ::testing::Values(1, 3, 16, 64));

}  // namespace
}  // namespace inf2vec
