#include "diffusion/random_walk.h"

#include <set>

#include <gtest/gtest.h>

namespace inf2vec {
namespace {

SocialGraph ChainGraph() {
  // 0 -> 1 -> 2 -> 3 -> 4.
  GraphBuilder builder(5);
  for (UserId u = 0; u < 4; ++u) builder.AddEdge(u, u + 1);
  return std::move(builder.Build()).value();
}

PropagationNetwork ChainNetwork(const SocialGraph& g) {
  DiffusionEpisode e(0);
  for (UserId u = 0; u < 5; ++u) e.Add(u, u + 1);
  EXPECT_TRUE(e.Finalize().ok());
  return PropagationNetwork(g, e);
}

TEST(RandomWalkTest, CollectsRequestedNodeCount) {
  const SocialGraph g = ChainGraph();
  const PropagationNetwork net = ChainNetwork(g);
  Rng rng(1);
  RandomWalkOptions opts;
  const std::vector<UserId> visited =
      RandomWalkWithRestart(net, 0, 10, opts, rng);
  EXPECT_EQ(visited.size(), 10u);
}

TEST(RandomWalkTest, NeverEmitsStartUser) {
  const SocialGraph g = ChainGraph();
  const PropagationNetwork net = ChainNetwork(g);
  Rng rng(2);
  RandomWalkOptions opts;
  for (int trial = 0; trial < 20; ++trial) {
    for (UserId v : RandomWalkWithRestart(net, 2, 8, opts, rng)) {
      EXPECT_NE(v, 2u);
    }
  }
}

TEST(RandomWalkTest, OnlyVisitsReachableNodes) {
  const SocialGraph g = ChainGraph();
  const PropagationNetwork net = ChainNetwork(g);
  Rng rng(3);
  RandomWalkOptions opts;
  const std::vector<UserId> visited =
      RandomWalkWithRestart(net, 2, 50, opts, rng);
  for (UserId v : visited) EXPECT_GE(v, 3u);  // Downstream of 2 only.
}

TEST(RandomWalkTest, SinkStartYieldsEmptyContext) {
  const SocialGraph g = ChainGraph();
  const PropagationNetwork net = ChainNetwork(g);
  Rng rng(4);
  RandomWalkOptions opts;
  EXPECT_TRUE(RandomWalkWithRestart(net, 4, 10, opts, rng).empty());
}

TEST(RandomWalkTest, ZeroBudgetYieldsEmpty) {
  const SocialGraph g = ChainGraph();
  const PropagationNetwork net = ChainNetwork(g);
  Rng rng(5);
  RandomWalkOptions opts;
  EXPECT_TRUE(RandomWalkWithRestart(net, 0, 0, opts, rng).empty());
}

TEST(RandomWalkTest, RestartKeepsWalkLocal) {
  // Star: 0 -> {1..9}, and a long chain hanging off node 1.
  GraphBuilder builder(30);
  for (UserId v = 1; v < 10; ++v) builder.AddEdge(0, v);
  for (UserId v = 10; v < 29; ++v) builder.AddEdge(v, v + 1);
  builder.AddEdge(1, 10);
  const SocialGraph g = std::move(builder.Build()).value();
  DiffusionEpisode e(0);
  for (UserId u = 0; u < 30; ++u) e.Add(u, u + 1);
  ASSERT_TRUE(e.Finalize().ok());
  const PropagationNetwork net(g, e);

  Rng rng(6);
  RandomWalkOptions opts;
  opts.restart_prob = 0.9;  // Aggressive restart: rarely go deep.
  int deep_visits = 0;
  int total = 0;
  for (int trial = 0; trial < 50; ++trial) {
    for (UserId v : RandomWalkWithRestart(net, 0, 20, opts, rng)) {
      ++total;
      deep_visits += v >= 15 ? 1 : 0;
    }
  }
  ASSERT_GT(total, 0);
  EXPECT_LT(static_cast<double>(deep_visits) / total, 0.05);
}

TEST(RandomWalkTest, HighOrderNodesReachableWithLowRestart) {
  const SocialGraph g = ChainGraph();
  const PropagationNetwork net = ChainNetwork(g);
  Rng rng(7);
  RandomWalkOptions opts;
  opts.restart_prob = 0.1;
  std::set<UserId> seen;
  for (int trial = 0; trial < 50; ++trial) {
    for (UserId v : RandomWalkWithRestart(net, 0, 10, opts, rng)) {
      seen.insert(v);
    }
  }
  // The walk should reach 3+ hops out (high-order influence).
  EXPECT_TRUE(seen.contains(3));
  EXPECT_TRUE(seen.contains(4));
}

TEST(BiasedWalkTest, WalkFollowsEdges) {
  const SocialGraph g = ChainGraph();
  Rng rng(8);
  const std::vector<UserId> walk = BiasedWalk(g, 0, 5, 1.0, 1.0, rng);
  ASSERT_EQ(walk.size(), 5u);
  EXPECT_EQ(walk[0], 0u);
  for (size_t i = 1; i < walk.size(); ++i) {
    EXPECT_TRUE(g.HasEdge(walk[i - 1], walk[i]));
  }
}

TEST(BiasedWalkTest, StopsAtSink) {
  const SocialGraph g = ChainGraph();
  Rng rng(9);
  const std::vector<UserId> walk = BiasedWalk(g, 3, 10, 1.0, 1.0, rng);
  // 3 -> 4 then stuck.
  EXPECT_EQ(walk, (std::vector<UserId>{3, 4}));
}

TEST(BiasedWalkTest, LowReturnParamAvoidsBacktracking) {
  // Triangle with reciprocal edges: backtracking always possible.
  GraphBuilder builder(3);
  builder.AddUndirectedEdge(0, 1);
  builder.AddUndirectedEdge(1, 2);
  builder.AddUndirectedEdge(2, 0);
  const SocialGraph g = std::move(builder.Build()).value();
  Rng rng(10);
  int backtracks = 0;
  int steps = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const std::vector<UserId> walk =
        BiasedWalk(g, 0, 10, /*return_param=*/100.0, /*inout_param=*/1.0,
                   rng);
    for (size_t i = 2; i < walk.size(); ++i) {
      ++steps;
      backtracks += walk[i] == walk[i - 2] ? 1 : 0;
    }
  }
  ASSERT_GT(steps, 0);
  // With p=100 the 1/p backtrack weight is tiny.
  EXPECT_LT(static_cast<double>(backtracks) / steps, 0.15);
}

}  // namespace
}  // namespace inf2vec
