#include "eval/significance.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace inf2vec {
namespace {

TEST(NormalSurvivalTest, KnownValues) {
  EXPECT_NEAR(NormalSurvival(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalSurvival(1.96), 0.025, 1e-3);
  EXPECT_NEAR(NormalSurvival(-1.96), 0.975, 1e-3);
  EXPECT_LT(NormalSurvival(5.0), 1e-6);
}

TEST(WilcoxonTest, RejectsMismatchedSizes) {
  EXPECT_FALSE(WilcoxonSignedRank({1, 2, 3}, {1, 2}).ok());
}

TEST(WilcoxonTest, RejectsTooFewEffectivePairs) {
  // All ties except 3 pairs.
  EXPECT_FALSE(WilcoxonSignedRank({1, 1, 1, 2, 3, 4},
                                  {1, 1, 1, 1, 1, 1})
                   .ok());
}

TEST(WilcoxonTest, ClearDominanceIsSignificant) {
  std::vector<double> a;
  std::vector<double> b;
  Rng rng(1);
  for (int i = 0; i < 40; ++i) {
    const double base = rng.UniformDouble();
    b.push_back(base);
    a.push_back(base + 0.1 + 0.01 * rng.UniformDouble());  // Always higher.
  }
  auto result = WilcoxonSignedRank(a, b);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result.value().z, 0.0);
  EXPECT_LT(result.value().p_value, 0.001);
  EXPECT_EQ(result.value().num_effective_pairs, 40u);
}

TEST(WilcoxonTest, SymmetricNoiseIsNotSignificant) {
  std::vector<double> a;
  std::vector<double> b;
  Rng rng(2);
  for (int i = 0; i < 60; ++i) {
    a.push_back(rng.Gaussian());
    b.push_back(rng.Gaussian());
  }
  auto result = WilcoxonSignedRank(a, b);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result.value().p_value, 0.05);
}

TEST(WilcoxonTest, SignOfZTracksDirection) {
  std::vector<double> lo(20);
  std::vector<double> hi(20);
  Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    lo[i] = rng.UniformDouble();
    hi[i] = lo[i] + 0.5;
  }
  auto up = WilcoxonSignedRank(hi, lo);
  auto down = WilcoxonSignedRank(lo, hi);
  ASSERT_TRUE(up.ok());
  ASSERT_TRUE(down.ok());
  EXPECT_GT(up.value().z, 0.0);
  EXPECT_LT(down.value().z, 0.0);
  EXPECT_NEAR(up.value().p_value, down.value().p_value, 1e-12);
}

TEST(WilcoxonTest, TiedPairsAreDropped) {
  std::vector<double> a = {1, 2, 3, 4, 5, 6, 7, 7};
  std::vector<double> b = {0, 1, 2, 3, 4, 5, 7, 7};  // Last two tie.
  auto result = WilcoxonSignedRank(a, b);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().num_effective_pairs, 6u);
}

TEST(WilcoxonTest, TieCorrectionKeepsVariancePositive) {
  // All differences have identical magnitude: maximal ties in ranks.
  std::vector<double> a = {1, 2, 3, 4, 5, 6};
  std::vector<double> b = {0, 1, 2, 3, 4, 5};
  auto result = WilcoxonSignedRank(a, b);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(std::isfinite(result.value().z));
  EXPECT_LT(result.value().p_value, 0.05);  // 6/6 in one direction.
}

}  // namespace
}  // namespace inf2vec
