#include "util/histogram.h"

#include <cmath>

#include <gtest/gtest.h>

namespace inf2vec {
namespace {

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.total_count(), 0u);
  EXPECT_DOUBLE_EQ(h.CdfAt(100), 0.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Max(), 0u);
  EXPECT_DOUBLE_EQ(h.LogLogSlope(), 0.0);
}

TEST(HistogramTest, CountsAndTotal) {
  Histogram h;
  h.Add(1);
  h.Add(1);
  h.Add(5);
  h.Add(2, 3);
  EXPECT_EQ(h.total_count(), 6u);
  EXPECT_EQ(h.CountOf(1), 2u);
  EXPECT_EQ(h.CountOf(2), 3u);
  EXPECT_EQ(h.CountOf(5), 1u);
  EXPECT_EQ(h.CountOf(99), 0u);
  EXPECT_EQ(h.Max(), 5u);
}

TEST(HistogramTest, CdfIsMonotoneAndNormalized) {
  Histogram h;
  h.Add(0, 7);
  h.Add(1, 2);
  h.Add(3, 1);
  EXPECT_DOUBLE_EQ(h.CdfAt(0), 0.7);
  EXPECT_DOUBLE_EQ(h.CdfAt(1), 0.9);
  EXPECT_DOUBLE_EQ(h.CdfAt(2), 0.9);
  EXPECT_DOUBLE_EQ(h.CdfAt(3), 1.0);
  EXPECT_DOUBLE_EQ(h.CdfAt(1000), 1.0);
}

TEST(HistogramTest, MeanIsWeighted) {
  Histogram h;
  h.Add(2, 3);
  h.Add(10, 1);
  EXPECT_DOUBLE_EQ(h.Mean(), (2.0 * 3 + 10.0) / 4.0);
}

TEST(HistogramTest, ItemsSortedByValue) {
  Histogram h;
  h.Add(5);
  h.Add(1);
  h.Add(3);
  const auto items = h.Items();
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items[0].first, 1u);
  EXPECT_EQ(items[1].first, 3u);
  EXPECT_EQ(items[2].first, 5u);
}

TEST(HistogramTest, LogLogSlopeOfExactPowerLaw) {
  // One value per log2 bin with count 1024 * 2^-k: bin density halves twice
  // per doubling of value, i.e. an exact slope of -2 after log binning.
  Histogram h;
  for (int k = 0; k <= 8; ++k) {
    h.Add(uint64_t{1} << k, uint64_t{1024} >> k);
  }
  EXPECT_NEAR(h.LogLogSlope(), -2.0, 1e-9);
}

TEST(HistogramTest, LogLogSlopeOfSampledPowerLawIsSteep) {
  // Integer-sampled count(v) ~ 1000 v^-2: discretization shifts the fitted
  // slope a little, but it stays firmly in the heavy-tail regime.
  Histogram h;
  for (uint64_t v = 1; v <= 100; ++v) {
    const uint64_t count = static_cast<uint64_t>(
        std::round(1000.0 / (static_cast<double>(v) * v)));
    if (count > 0) h.Add(v, count);
  }
  EXPECT_LT(h.LogLogSlope(), -1.5);
  EXPECT_GT(h.LogLogSlope(), -3.0);
}

TEST(HistogramTest, LogLogSlopeOfFlatDistributionIsZero) {
  // 1..63 exactly fills the six lowest log2 bins, so every bin density is
  // equal and the fitted slope is 0.
  Histogram h;
  for (uint64_t v = 1; v <= 63; ++v) h.Add(v, 10);
  EXPECT_NEAR(h.LogLogSlope(), 0.0, 1e-9);
}

TEST(HistogramTest, FixedBoundariesBucketByLowerBound) {
  Histogram h({1, 10, 100});
  EXPECT_EQ(h.boundaries(), (std::vector<uint64_t>{1, 10, 100}));
  h.Add(0);     // Below the first boundary: clamped into the first bucket.
  h.Add(5);     // -> 1
  h.Add(10);    // -> 10
  h.Add(99);    // -> 10
  h.Add(1000);  // -> 100
  EXPECT_EQ(h.total_count(), 5u);
  EXPECT_EQ(h.CountOf(1), 2u);
  EXPECT_EQ(h.CountOf(10), 2u);
  EXPECT_EQ(h.CountOf(100), 1u);
}

TEST(HistogramTest, ExactModeHasNoBoundaries) {
  Histogram h;
  h.Add(12345);
  EXPECT_TRUE(h.boundaries().empty());
  EXPECT_EQ(h.CountOf(12345), 1u);
}

TEST(HistogramTest, MergeAddsExactCountsOrderIndependently) {
  Histogram a;
  a.Add(1, 3);
  a.Add(5, 2);
  Histogram b;
  b.Add(5, 1);
  b.Add(9, 4);
  Histogram ab = a;
  ab.Merge(b);
  Histogram ba = b;
  ba.Merge(a);
  EXPECT_EQ(ab.total_count(), 10u);
  EXPECT_EQ(ab.CountOf(5), 3u);
  EXPECT_EQ(ab.Items(), ba.Items());
}

TEST(HistogramTest, MergeFixedBoundaryShardsMatchesSingleHistogram) {
  const std::vector<uint64_t> boundaries = {1, 2, 5, 10, 20, 50, 100};
  Histogram combined(boundaries);
  Histogram shard_a(boundaries);
  Histogram shard_b(boundaries);
  for (uint64_t v = 1; v <= 200; ++v) {
    combined.Add(v);
    (v % 2 == 0 ? shard_a : shard_b).Add(v);
  }
  Histogram merged(boundaries);
  merged.Merge(shard_a);
  merged.Merge(shard_b);
  EXPECT_EQ(merged.Items(), combined.Items());
  EXPECT_EQ(merged.total_count(), combined.total_count());
}

TEST(HistogramTest, MergeEmptyHistogramIsNoOp) {
  Histogram h;
  h.Add(7, 2);
  h.Merge(Histogram());
  EXPECT_EQ(h.total_count(), 2u);
  EXPECT_EQ(h.CountOf(7), 2u);
}

TEST(HistogramTest, QuantileWalksCumulativeCounts) {
  Histogram h;
  for (uint64_t v = 1; v <= 100; ++v) h.Add(v);
  EXPECT_EQ(h.Quantile(0.0), 1u);
  EXPECT_EQ(h.Quantile(0.5), 50u);
  EXPECT_EQ(h.Quantile(0.9), 90u);
  EXPECT_EQ(h.Quantile(1.0), 100u);
  EXPECT_EQ(Histogram().Quantile(0.5), 0u);
}

TEST(HistogramTest, QuantileOnFixedBucketsReturnsLowerBoundary) {
  Histogram h({1, 10, 100});
  h.Add(3);    // -> 1
  h.Add(40);   // -> 10
  h.Add(500);  // -> 100
  EXPECT_EQ(h.Quantile(0.34), 10u);
  EXPECT_EQ(h.Quantile(1.0), 100u);
}

TEST(HistogramTest, ToTsvOrdersByCountAndRespectsCap) {
  Histogram h;
  h.Add(1, 5);
  h.Add(2, 10);
  h.Add(3, 1);
  const std::string tsv = h.ToTsv(2);
  EXPECT_EQ(tsv, "2\t10\n1\t5\n");
  const std::string full = h.ToTsv(0);
  EXPECT_NE(full.find("3\t1"), std::string::npos);
}

}  // namespace
}  // namespace inf2vec
