// End-to-end tests of the inf2vec_cli command layer: generate a tiny
// dataset, train on it, score/export/evaluate — the full user workflow,
// exercised through the same code paths as the binary.

#include "cli_commands.h"

#include <unistd.h>

#include <filesystem>

#include <gtest/gtest.h>

#include "embedding/model_io.h"
#include "util/flags.h"

namespace inf2vec {
namespace cli {
namespace {

FlagParser ParseArgs(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "inf2vec_cli");
  auto parser = FlagParser::Parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(parser.ok());
  return std::move(parser).value();
}

class CliCommandsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("inf2vec_cli_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  /// Generates a small dataset once per test.
  void Generate() {
    const Status s = RunGenerate(
        ParseArgs({"generate", "--profile", "digg", "--out",
                   dir_.string().c_str(), "--users", "300", "--items", "80",
                   "--seed", "3"}));
    ASSERT_TRUE(s.ok()) << s.ToString();
    ASSERT_TRUE(std::filesystem::exists(Path("graph.tsv")));
    ASSERT_TRUE(std::filesystem::exists(Path("actions.tsv")));
  }

  /// Trains a small model onto model.bin.
  void Train() {
    const Status s = RunTrain(ParseArgs(
        {"train", "--graph", Path("graph.tsv").c_str(), "--actions",
         Path("actions.tsv").c_str(), "--model", Path("model.bin").c_str(),
         "--dim", "8", "--epochs", "2", "--length", "8"}));
    ASSERT_TRUE(s.ok()) << s.ToString();
    ASSERT_TRUE(std::filesystem::exists(Path("model.bin")));
  }

  std::filesystem::path dir_;
};

TEST_F(CliCommandsTest, GenerateWritesLoadableFiles) { Generate(); }

TEST_F(CliCommandsTest, GenerateRejectsUnknownProfile) {
  const Status s = RunGenerate(ParseArgs(
      {"generate", "--profile", "orkut", "--out", dir_.string().c_str()}));
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST_F(CliCommandsTest, GenerateRequiresOut) {
  EXPECT_FALSE(RunGenerate(ParseArgs({"generate"})).ok());
}

TEST_F(CliCommandsTest, TrainProducesLoadableModel) {
  Generate();
  Train();
  auto store = LoadEmbeddings(Path("model.bin"));
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(store.value().num_users(), 300u);
  EXPECT_EQ(store.value().dim(), 8u);
}

TEST_F(CliCommandsTest, TrainValidatesInputs) {
  EXPECT_FALSE(RunTrain(ParseArgs({"train", "--model", "x"})).ok());
  Generate();
  // dim 0 invalid.
  EXPECT_FALSE(RunTrain(ParseArgs(
                   {"train", "--graph", Path("graph.tsv").c_str(),
                    "--actions", Path("actions.tsv").c_str(), "--model",
                    Path("m.bin").c_str(), "--dim", "0"}))
                   .ok());
}

TEST_F(CliCommandsTest, ScoreAndTopWork) {
  Generate();
  Train();
  EXPECT_TRUE(RunScore(ParseArgs({"score", "--model",
                                  Path("model.bin").c_str(), "--source", "1",
                                  "--target", "2"}))
                  .ok());
  EXPECT_TRUE(RunTop(ParseArgs({"top", "--model", Path("model.bin").c_str(),
                                "--source", "1", "--k", "5"}))
                  .ok());
}

TEST_F(CliCommandsTest, ScoreRejectsOutOfRangeUsers) {
  Generate();
  Train();
  EXPECT_FALSE(RunScore(ParseArgs({"score", "--model",
                                   Path("model.bin").c_str(), "--source",
                                   "1", "--target", "999999"}))
                   .ok());
}

TEST_F(CliCommandsTest, EvaluateBothTasks) {
  Generate();
  Train();
  for (const char* task : {"activation", "diffusion"}) {
    const Status s = RunEvaluate(ParseArgs(
        {"evaluate", "--graph", Path("graph.tsv").c_str(), "--actions",
         Path("actions.tsv").c_str(), "--model", Path("model.bin").c_str(),
         "--task", task}));
    EXPECT_TRUE(s.ok()) << task << ": " << s.ToString();
  }
}

TEST_F(CliCommandsTest, EvaluateRejectsUnknownTaskAndAggregation) {
  Generate();
  Train();
  EXPECT_FALSE(RunEvaluate(ParseArgs(
                   {"evaluate", "--graph", Path("graph.tsv").c_str(),
                    "--actions", Path("actions.tsv").c_str(), "--model",
                    Path("model.bin").c_str(), "--task", "prophecy"}))
                   .ok());
  EXPECT_FALSE(RunEvaluate(ParseArgs(
                   {"evaluate", "--graph", Path("graph.tsv").c_str(),
                    "--actions", Path("actions.tsv").c_str(), "--model",
                    Path("model.bin").c_str(), "--aggregation", "median"}))
                   .ok());
}

TEST_F(CliCommandsTest, ExportTextWritesMatrix) {
  Generate();
  Train();
  const Status s = RunExportText(
      ParseArgs({"export-text", "--model", Path("model.bin").c_str(),
                 "--out", Path("emb.txt").c_str()}));
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_TRUE(std::filesystem::exists(Path("emb.txt")));
}

TEST_F(CliCommandsTest, DispatchRoutesAndRejects) {
  EXPECT_FALSE(Dispatch(ParseArgs({})).ok());
  EXPECT_FALSE(Dispatch(ParseArgs({"frobnicate"})).ok());
  EXPECT_NE(UsageText().find("generate"), std::string::npos);
  EXPECT_NE(UsageText().find("update"), std::string::npos);
  EXPECT_NE(UsageText().find("--resume"), std::string::npos);
  EXPECT_NE(UsageText().find("--watch-model"), std::string::npos);
}

TEST_F(CliCommandsTest, CheckpointedTrainAndResumeMatchUninterruptedRun) {
  Generate();
  // Reference: one uninterrupted 4-epoch run.
  ASSERT_TRUE(RunTrain(ParseArgs(
                  {"train", "--graph", Path("graph.tsv").c_str(),
                   "--actions", Path("actions.tsv").c_str(), "--model",
                   Path("full.bin").c_str(), "--dim", "8", "--epochs", "4",
                   "--length", "8"}))
                  .ok());
  // A 2-epoch run that checkpoints, then a --resume run extending to 4.
  const std::string ckpt_dir = Path("ckpts");
  ASSERT_TRUE(RunTrain(ParseArgs(
                  {"train", "--graph", Path("graph.tsv").c_str(),
                   "--actions", Path("actions.tsv").c_str(), "--model",
                   Path("half.bin").c_str(), "--dim", "8", "--epochs", "2",
                   "--length", "8", "--checkpoint-dir", ckpt_dir.c_str()}))
                  .ok());
  ASSERT_TRUE(std::filesystem::exists(ckpt_dir + "/MANIFEST.json"));
  ASSERT_TRUE(RunTrain(ParseArgs(
                  {"train", "--graph", Path("graph.tsv").c_str(),
                   "--actions", Path("actions.tsv").c_str(), "--model",
                   Path("resumed.bin").c_str(), "--dim", "8", "--epochs",
                   "4", "--length", "8", "--checkpoint-dir",
                   ckpt_dir.c_str(), "--resume"}))
                  .ok());

  auto full = LoadEmbeddings(Path("full.bin"));
  auto resumed = LoadEmbeddings(Path("resumed.bin"));
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(resumed.ok());
  // Bit-identical: resuming is indistinguishable from never stopping.
  EXPECT_EQ(full.value(), resumed.value());
}

TEST_F(CliCommandsTest, ResumeRequiresCheckpointDirAndMatchingConfig) {
  Generate();
  EXPECT_FALSE(RunTrain(ParseArgs(
                   {"train", "--graph", Path("graph.tsv").c_str(),
                    "--actions", Path("actions.tsv").c_str(), "--model",
                    Path("m.bin").c_str(), "--resume"}))
                   .ok());
  const std::string ckpt_dir = Path("ckpts2");
  ASSERT_TRUE(RunTrain(ParseArgs(
                  {"train", "--graph", Path("graph.tsv").c_str(),
                   "--actions", Path("actions.tsv").c_str(), "--model",
                   Path("m.bin").c_str(), "--dim", "8", "--epochs", "2",
                   "--length", "8", "--checkpoint-dir", ckpt_dir.c_str()}))
                  .ok());
  // Resuming under a different dim must be refused, not silently retrained.
  const Status s = RunTrain(ParseArgs(
      {"train", "--graph", Path("graph.tsv").c_str(), "--actions",
       Path("actions.tsv").c_str(), "--model", Path("m.bin").c_str(),
       "--dim", "16", "--epochs", "4", "--length", "8", "--checkpoint-dir",
       ckpt_dir.c_str(), "--resume"}));
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

TEST_F(CliCommandsTest, UpdateFoldsDeltaEpisodesIntoAModel) {
  Generate();
  Train();
  // Reusing the training log as the delta is a degenerate but valid delta
  // feed; the point here is the CLI plumbing end to end.
  const Status s = RunUpdate(ParseArgs(
      {"update", "--model", Path("model.bin").c_str(), "--graph",
       Path("graph.tsv").c_str(), "--delta", Path("actions.tsv").c_str(),
       "--out", Path("updated.bin").c_str(), "--epochs", "1"}));
  ASSERT_TRUE(s.ok()) << s.ToString();
  auto base = LoadEmbeddings(Path("model.bin"));
  auto updated = LoadEmbeddings(Path("updated.bin"));
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(updated.ok());
  EXPECT_EQ(updated.value().num_users(), base.value().num_users());
  EXPECT_NE(updated.value(), base.value());  // The delta pass trained.
}

TEST_F(CliCommandsTest, UpdateValidatesItsFlags) {
  EXPECT_FALSE(RunUpdate(ParseArgs({"update"})).ok());
  EXPECT_FALSE(RunUpdate(ParseArgs({"update", "--model", "nope.bin",
                                    "--graph", "nope.tsv", "--delta",
                                    "nope.tsv", "--out", "x.bin"}))
                   .ok());
}

TEST_F(CliCommandsTest, TrainWithBfsContextAndLocalOnly) {
  Generate();
  const Status s = RunTrain(ParseArgs(
      {"train", "--graph", Path("graph.tsv").c_str(), "--actions",
       Path("actions.tsv").c_str(), "--model", Path("m2.bin").c_str(),
       "--dim", "8", "--epochs", "1", "--length", "8", "--bfs-context",
       "--local-only"}));
  // Local-only + BFS can legitimately produce an empty corpus on tiny
  // data; accept either success or the explicit empty-corpus error.
  if (!s.ok()) {
    EXPECT_NE(s.message().find("corpus"), std::string::npos)
        << s.ToString();
  }
}

}  // namespace
}  // namespace cli
}  // namespace inf2vec
