#include "baselines/ic_baseline.h"

#include <gtest/gtest.h>

namespace inf2vec {
namespace {

SocialGraph TriangleGraph() {
  // 0 -> 1, 0 -> 2, 1 -> 2.
  GraphBuilder builder(3);
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 2);
  builder.AddEdge(1, 2);
  return std::move(builder.Build()).value();
}

DiffusionEpisode Episode(ItemId item,
                         std::vector<std::pair<UserId, Timestamp>> rows) {
  DiffusionEpisode e(item);
  for (const auto& [u, t] : rows) e.Add(u, t);
  EXPECT_TRUE(e.Finalize().ok());
  return e;
}

TEST(DegreeModelTest, ProbabilityIsInverseInDegree) {
  const SocialGraph g = TriangleGraph();
  const IcBaselineModel model = CreateDegreeModel(g, 10);
  // InDegree(1) = 1, InDegree(2) = 2.
  EXPECT_DOUBLE_EQ(model.probs().Get(g.EdgeId(0, 1)), 1.0);
  EXPECT_DOUBLE_EQ(model.probs().Get(g.EdgeId(0, 2)), 0.5);
  EXPECT_DOUBLE_EQ(model.probs().Get(g.EdgeId(1, 2)), 0.5);
  EXPECT_EQ(model.name(), "DE");
}

TEST(StaticModelTest, MleMatchesHandCount) {
  const SocialGraph g = TriangleGraph();
  ActionLog log;
  // Episode A: 0 (t1), 1 (t2), 2 (t3): pairs (0->1), (0->2), (1->2).
  log.AddEpisode(Episode(0, {{0, 1}, {1, 2}, {2, 3}}));
  // Episode B: 0 (t1), 2 (t2): pair (0->2). User 1 absent.
  log.AddEpisode(Episode(1, {{0, 1}, {2, 2}}));
  // Episode C: 1 (t1) alone: no pairs, but counts as an action by 1.
  log.AddEpisode(Episode(2, {{1, 1}}));

  const IcBaselineModel model = CreateStaticModel(g, log, 10);
  // A_0 = 2 episodes; (0->1) once -> 0.5; (0->2) twice -> 1.0.
  EXPECT_DOUBLE_EQ(model.probs().Get(g.EdgeId(0, 1)), 0.5);
  EXPECT_DOUBLE_EQ(model.probs().Get(g.EdgeId(0, 2)), 1.0);
  // A_1 = 2 episodes; (1->2) once -> 0.5.
  EXPECT_DOUBLE_EQ(model.probs().Get(g.EdgeId(1, 2)), 0.5);
}

TEST(StaticModelTest, UnobservedEdgesStayZero) {
  const SocialGraph g = TriangleGraph();
  ActionLog log;
  log.AddEpisode(Episode(0, {{2, 1}}));  // No influence at all.
  const IcBaselineModel model = CreateStaticModel(g, log, 10);
  for (uint64_t e = 0; e < g.num_edges(); ++e) {
    EXPECT_DOUBLE_EQ(model.probs().Get(e), 0.0);
  }
}

TEST(IcBaselineModelTest, ScoreActivationIsNoisyOr) {
  const SocialGraph g = TriangleGraph();
  EdgeProbabilities probs(g);
  probs.Set(g.EdgeId(0, 2), 0.5);
  probs.Set(g.EdgeId(1, 2), 0.4);
  const IcBaselineModel model("X", &g, std::move(probs), 10);
  // Eq. 8: 1 - (1-0.5)(1-0.4) = 0.7.
  EXPECT_NEAR(model.ScoreActivation(2, {0, 1}), 0.7, 1e-12);
  EXPECT_NEAR(model.ScoreActivation(2, {0}), 0.5, 1e-12);
}

TEST(IcBaselineModelTest, NonEdgesContributeNothing) {
  const SocialGraph g = TriangleGraph();
  EdgeProbabilities probs(g, 0.9);
  const IcBaselineModel model("X", &g, std::move(probs), 10);
  // 2 has no edge to 1: influencer 2 is a no-op.
  EXPECT_NEAR(model.ScoreActivation(1, {2}), 0.0, 1e-12);
}

TEST(IcBaselineModelTest, ScoreDiffusionRunsMonteCarlo) {
  const SocialGraph g = TriangleGraph();
  EdgeProbabilities probs(g, 1.0);
  const IcBaselineModel model("X", &g, std::move(probs), 50);
  Rng rng(1);
  const std::vector<double> scores = model.ScoreDiffusion({0}, rng);
  EXPECT_DOUBLE_EQ(scores[0], 1.0);
  EXPECT_DOUBLE_EQ(scores[1], 1.0);  // Deterministic with p = 1.
  EXPECT_DOUBLE_EQ(scores[2], 1.0);
}

}  // namespace
}  // namespace inf2vec
