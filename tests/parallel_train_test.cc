// Determinism and equivalence guarantees of the parallel training
// pipeline: num_threads = 1 must stay bit-identical to the pre-parallel
// serial implementation, parallel corpus generation must be reproducible
// for a fixed thread count, and Hogwild training must reach the serial
// objective within tolerance.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/mf_bpr.h"
#include "baselines/node2vec.h"
#include "core/inf2vec_model.h"
#include "synth/world_generator.h"
#include "util/thread_pool.h"

namespace inf2vec {
namespace {

synth::World QuickstartWorld(uint64_t seed) {
  synth::WorldProfile profile = synth::WorldProfile::DiggLike();
  profile.num_users = 300;
  profile.num_items = 60;
  profile.mean_out_degree = 6.0;
  Rng rng(seed);
  Result<synth::World> world = synth::GenerateWorld(profile, rng);
  EXPECT_TRUE(world.ok());
  return std::move(world).value();
}

/// The exact SGD driver loop this library shipped before the Hogwild
/// pipeline existed: one master RNG seeded from the config drives init,
/// shuffles and every TrainPair draw, strictly in corpus order. The
/// num_threads = 1 path of TrainFromCorpus must reproduce this (and
/// therefore any model trained by a pre-parallel build) bit for bit.
EmbeddingStore LegacySerialReference(const InfluenceCorpus& corpus,
                                     uint32_t num_users,
                                     const Inf2vecConfig& config) {
  Rng rng(config.seed);
  EmbeddingStore store(num_users, config.dim);
  store.InitPaperDefault(rng);
  Result<NegativeSampler> sampler = NegativeSampler::Create(
      config.negative_kind, num_users, corpus.target_frequencies);
  EXPECT_TRUE(sampler.ok());
  SgdTrainer trainer(&store, &sampler.value(), config.sgd);
  std::vector<std::pair<UserId, UserId>> pairs = corpus.pairs;
  for (uint32_t epoch = 0; epoch < config.epochs; ++epoch) {
    if (config.shuffle_pairs) rng.Shuffle(pairs);
    for (const auto& [u, v] : pairs) trainer.TrainPair(u, v, rng);
  }
  return store;
}

TEST(ParallelTrainTest, SerialPathIsBitIdenticalToLegacyImplementation) {
  const synth::World world = QuickstartWorld(31);
  Inf2vecConfig config;
  config.dim = 12;
  config.epochs = 3;
  config.context.length = 10;
  config.seed = 99;
  config.num_threads = 1;

  const InfluenceCorpus corpus = BuildInfluenceCorpus(
      world.graph, world.log, config.context, world.graph.num_users(),
      CorpusBuildOptions{.seed = 5});
  const EmbeddingStore reference =
      LegacySerialReference(corpus, world.graph.num_users(), config);

  Result<Inf2vecModel> model = Inf2vecModel::TrainFromCorpus(
      corpus, world.graph.num_users(), config, nullptr);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model.value().embeddings(), reference);
}

TEST(ParallelTrainTest, SerialObjectiveRequestDoesNotPerturbTraining) {
  // want_objective toggles std::log accumulation only; the trained store
  // and the RNG stream must be unaffected.
  const synth::World world = QuickstartWorld(32);
  Inf2vecConfig config;
  config.dim = 8;
  config.epochs = 2;
  config.context.length = 8;
  config.num_threads = 1;
  const InfluenceCorpus corpus = BuildInfluenceCorpus(
      world.graph, world.log, config.context, world.graph.num_users(),
      CorpusBuildOptions{.seed = 6});
  std::vector<double> objectives;
  Result<Inf2vecModel> with = Inf2vecModel::TrainFromCorpus(
      corpus, world.graph.num_users(), config, &objectives);
  Result<Inf2vecModel> without = Inf2vecModel::TrainFromCorpus(
      corpus, world.graph.num_users(), config, nullptr);
  ASSERT_TRUE(with.ok());
  ASSERT_TRUE(without.ok());
  EXPECT_EQ(with.value().embeddings(), without.value().embeddings());
  ASSERT_EQ(objectives.size(), 2u);
  for (double obj : objectives) EXPECT_TRUE(std::isfinite(obj));
}

TEST(ParallelTrainTest, ParallelCorpusIsDeterministicForFixedThreadCount) {
  const synth::World world = QuickstartWorld(33);
  ContextOptions options;
  options.length = 12;
  const uint64_t seed = 123;

  ThreadPool pool_a(3);
  const InfluenceCorpus a = BuildInfluenceCorpus(
      world.graph, world.log, options, world.graph.num_users(),
      CorpusBuildOptions{.seed = seed, .pool = &pool_a});
  ThreadPool pool_b(3);
  const InfluenceCorpus b = BuildInfluenceCorpus(
      world.graph, world.log, options, world.graph.num_users(),
      CorpusBuildOptions{.seed = seed, .pool = &pool_b});
  EXPECT_EQ(a.pairs, b.pairs);
  EXPECT_EQ(a.target_frequencies, b.target_frequencies);
  EXPECT_EQ(a.num_tuples, b.num_tuples);
  EXPECT_GT(a.pairs.size(), 0u);

  // Same world through the serial builder: the parallel corpus carries
  // different RNG streams, so pair-for-pair equality is not expected, but
  // the corpus statistics must agree (same episodes, same Algorithm 1).
  const InfluenceCorpus serial = BuildInfluenceCorpus(
      world.graph, world.log, options, world.graph.num_users(),
      CorpusBuildOptions{.seed = ThreadPool::ShardSeed(seed, 0)});
  EXPECT_EQ(a.num_tuples, serial.num_tuples);
}

TEST(ParallelTrainTest, HogwildObjectiveMatchesSerialWithinTolerance) {
  const synth::World world = QuickstartWorld(34);
  Inf2vecConfig config;
  config.dim = 16;
  config.epochs = 5;
  config.context.length = 10;

  const InfluenceCorpus corpus = BuildInfluenceCorpus(
      world.graph, world.log, config.context, world.graph.num_users(),
      CorpusBuildOptions{.seed = 7});

  config.num_threads = 1;
  std::vector<double> serial_objectives;
  Result<Inf2vecModel> serial = Inf2vecModel::TrainFromCorpus(
      corpus, world.graph.num_users(), config, &serial_objectives);
  ASSERT_TRUE(serial.ok());

  config.num_threads = 4;
  std::vector<double> hogwild_objectives;
  Result<Inf2vecModel> hogwild = Inf2vecModel::TrainFromCorpus(
      corpus, world.graph.num_users(), config, &hogwild_objectives);
  ASSERT_TRUE(hogwild.ok());

  ASSERT_EQ(serial_objectives.size(), hogwild_objectives.size());
  const double serial_final = serial_objectives.back();
  const double hogwild_final = hogwild_objectives.back();
  EXPECT_TRUE(std::isfinite(hogwild_final));
  // Acceptance bound: final epoch objective within 2% of serial.
  EXPECT_LT(std::fabs(hogwild_final - serial_final) /
                std::fabs(serial_final),
            0.02)
      << "serial " << serial_final << " vs hogwild " << hogwild_final;
}

TEST(ParallelTrainTest, EndToEndParallelTrainingLearnsFiniteEmbeddings) {
  const synth::World world = QuickstartWorld(35);
  Inf2vecConfig config;
  config.dim = 12;
  config.epochs = 3;
  config.context.length = 10;
  config.num_threads = 3;
  Result<Inf2vecModel> model =
      Inf2vecModel::Train(world.graph, world.log, config);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  EXPECT_EQ(model.value().config().num_threads, 3u);
  const EmbeddingStore& store = model.value().embeddings();
  for (UserId u = 0; u < store.num_users(); ++u) {
    for (double x : store.Source(u)) EXPECT_TRUE(std::isfinite(x));
  }
}

TEST(ParallelTrainTest, BaselinesTrainHogwildToFiniteEmbeddings) {
  // The eval-harness baselines share the pool wiring: num_threads > 1
  // must train cleanly, and num_threads = 1 must stay their serial path.
  const synth::World world = QuickstartWorld(36);

  MfOptions mf;
  mf.dim = 8;
  mf.epochs = 2;
  mf.num_threads = 3;
  Result<MfBprModel> mf_model =
      MfBprModel::Train(world.graph.num_users(), world.log, mf);
  ASSERT_TRUE(mf_model.ok()) << mf_model.status().ToString();

  Node2vecOptions n2v;
  n2v.dim = 8;
  n2v.epochs = 1;
  n2v.walks_per_node = 2;
  n2v.walk_length = 8;
  n2v.num_threads = 3;
  Result<Node2vecModel> n2v_model = Node2vecModel::Train(world.graph, n2v);
  ASSERT_TRUE(n2v_model.ok()) << n2v_model.status().ToString();

  for (UserId u = 0; u < world.graph.num_users(); ++u) {
    for (double x : mf_model.value().embeddings().Source(u)) {
      ASSERT_TRUE(std::isfinite(x));
    }
    for (double x : n2v_model.value().embeddings().Source(u)) {
      ASSERT_TRUE(std::isfinite(x));
    }
  }
}

}  // namespace
}  // namespace inf2vec
