#include "util/string_util.h"

#include <gtest/gtest.h>

namespace inf2vec {
namespace {

TEST(SplitStringTest, BasicSplit) {
  const auto parts = SplitString("a\tb\tc", '\t');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitStringTest, KeepsEmptyFields) {
  const auto parts = SplitString("a,,c,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(SplitStringTest, NoDelimiterYieldsWhole) {
  const auto parts = SplitString("hello", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "hello");
}

TEST(TrimStringTest, StripsWhitespaceBothSides) {
  EXPECT_EQ(TrimString("  hi \t\n"), "hi");
  EXPECT_EQ(TrimString(""), "");
  EXPECT_EQ(TrimString("   "), "");
  EXPECT_EQ(TrimString("inner space kept"), "inner space kept");
}

TEST(JoinStringsTest, Joins) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinStrings({}, ","), "");
  EXPECT_EQ(JoinStrings({"only"}, ","), "only");
}

TEST(ParseInt64Test, ParsesValidIntegers) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64("42", &v).ok());
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(ParseInt64("-17", &v).ok());
  EXPECT_EQ(v, -17);
  EXPECT_TRUE(ParseInt64("  99  ", &v).ok());
  EXPECT_EQ(v, 99);
}

TEST(ParseInt64Test, RejectsGarbage) {
  int64_t v = 0;
  EXPECT_FALSE(ParseInt64("", &v).ok());
  EXPECT_FALSE(ParseInt64("abc", &v).ok());
  EXPECT_FALSE(ParseInt64("12x", &v).ok());
  EXPECT_FALSE(ParseInt64("1.5", &v).ok());
}

TEST(ParseInt64Test, RejectsOverflow) {
  int64_t v = 0;
  EXPECT_EQ(ParseInt64("99999999999999999999999", &v).code(),
            StatusCode::kOutOfRange);
}

TEST(ParseUint32Test, ParsesAndBoundsChecks) {
  uint32_t v = 0;
  EXPECT_TRUE(ParseUint32("4294967295", &v).ok());
  EXPECT_EQ(v, 4294967295u);
  EXPECT_FALSE(ParseUint32("4294967296", &v).ok());
  EXPECT_FALSE(ParseUint32("-1", &v).ok());
}

TEST(ParseDoubleTest, ParsesValidDoubles) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("3.25", &v).ok());
  EXPECT_DOUBLE_EQ(v, 3.25);
  EXPECT_TRUE(ParseDouble("-1e-3", &v).ok());
  EXPECT_DOUBLE_EQ(v, -1e-3);
}

TEST(ParseDoubleTest, RejectsGarbage) {
  double v = 0;
  EXPECT_FALSE(ParseDouble("", &v).ok());
  EXPECT_FALSE(ParseDouble("x", &v).ok());
  EXPECT_FALSE(ParseDouble("1.5z", &v).ok());
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

}  // namespace
}  // namespace inf2vec
