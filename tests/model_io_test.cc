#include "embedding/model_io.h"

#include <unistd.h>

#include <filesystem>

#include <gtest/gtest.h>

#include "util/io.h"
#include "util/rng.h"

namespace inf2vec {
namespace {

class ModelIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("inf2vec_model_io_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

EmbeddingStore RandomStore(uint32_t users, uint32_t dim, uint64_t seed) {
  EmbeddingStore store(users, dim);
  Rng rng(seed);
  store.InitUniform(-1.0, 1.0, rng);
  for (UserId u = 0; u < users; ++u) {
    store.mutable_source_bias(u) = rng.UniformDouble(-2.0, 2.0);
    store.mutable_target_bias(u) = rng.UniformDouble(-2.0, 2.0);
  }
  return store;
}

TEST_F(ModelIoTest, BinaryRoundTripIsExact) {
  const EmbeddingStore store = RandomStore(17, 9, 1);
  ASSERT_TRUE(SaveEmbeddings(store, Path("m.bin")).ok());
  auto loaded = LoadEmbeddings(Path("m.bin"));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value(), store);
}

TEST_F(ModelIoTest, LoadRejectsWrongMagic) {
  ASSERT_TRUE(WriteFile(Path("bad.bin"), "NOTMAGIC plus data").ok());
  EXPECT_EQ(LoadEmbeddings(Path("bad.bin")).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ModelIoTest, LoadRejectsTruncatedFile) {
  const EmbeddingStore store = RandomStore(5, 4, 2);
  ASSERT_TRUE(SaveEmbeddings(store, Path("m.bin")).ok());
  std::string blob;
  ASSERT_TRUE(ReadFile(Path("m.bin"), &blob).ok());
  blob.resize(blob.size() - 16);
  ASSERT_TRUE(WriteFile(Path("trunc.bin"), blob).ok());
  EXPECT_FALSE(LoadEmbeddings(Path("trunc.bin")).ok());
}

TEST_F(ModelIoTest, LoadRejectsTrailingGarbage) {
  const EmbeddingStore store = RandomStore(5, 4, 3);
  ASSERT_TRUE(SaveEmbeddings(store, Path("m.bin")).ok());
  std::string blob;
  ASSERT_TRUE(ReadFile(Path("m.bin"), &blob).ok());
  blob += "extra";
  ASSERT_TRUE(WriteFile(Path("pad.bin"), blob).ok());
  EXPECT_FALSE(LoadEmbeddings(Path("pad.bin")).ok());
}

TEST_F(ModelIoTest, LoadMissingFileFails) {
  EXPECT_EQ(LoadEmbeddings(Path("none.bin")).status().code(),
            StatusCode::kIOError);
}

TEST_F(ModelIoTest, TextExportHasHeaderAndRows) {
  const EmbeddingStore store = RandomStore(3, 2, 4);
  ASSERT_TRUE(ExportEmbeddingsText(store, Path("m.txt")).ok());
  std::vector<std::string> lines;
  ASSERT_TRUE(ReadLines(Path("m.txt"), &lines).ok());
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[0], "3 2");
  EXPECT_EQ(lines[1].substr(0, 2), "0 ");
}

TEST_F(ModelIoTest, RoundTripPreservesScores) {
  const EmbeddingStore store = RandomStore(8, 5, 5);
  ASSERT_TRUE(SaveEmbeddings(store, Path("m.bin")).ok());
  const EmbeddingStore loaded = std::move(LoadEmbeddings(Path("m.bin"))).value();
  for (UserId u = 0; u < 8; ++u) {
    for (UserId v = 0; v < 8; ++v) {
      EXPECT_DOUBLE_EQ(loaded.Score(u, v), store.Score(u, v));
    }
  }
}

}  // namespace
}  // namespace inf2vec
