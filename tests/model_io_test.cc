#include "embedding/model_io.h"

#include <unistd.h>

#include <filesystem>

#include <gtest/gtest.h>

#include "util/io.h"
#include "util/rng.h"

namespace inf2vec {
namespace {

class ModelIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("inf2vec_model_io_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

EmbeddingStore RandomStore(uint32_t users, uint32_t dim, uint64_t seed) {
  EmbeddingStore store(users, dim);
  Rng rng(seed);
  store.InitUniform(-1.0, 1.0, rng);
  for (UserId u = 0; u < users; ++u) {
    store.mutable_source_bias(u) = rng.UniformDouble(-2.0, 2.0);
    store.mutable_target_bias(u) = rng.UniformDouble(-2.0, 2.0);
  }
  return store;
}

TEST_F(ModelIoTest, BinaryRoundTripIsExact) {
  const EmbeddingStore store = RandomStore(17, 9, 1);
  ASSERT_TRUE(SaveEmbeddings(store, Path("m.bin")).ok());
  auto loaded = LoadEmbeddings(Path("m.bin"));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value(), store);
}

TEST_F(ModelIoTest, LoadRejectsWrongMagic) {
  ASSERT_TRUE(WriteFile(Path("bad.bin"), "NOTMAGIC plus data").ok());
  EXPECT_EQ(LoadEmbeddings(Path("bad.bin")).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ModelIoTest, LoadRejectsTruncatedFile) {
  const EmbeddingStore store = RandomStore(5, 4, 2);
  ASSERT_TRUE(SaveEmbeddings(store, Path("m.bin")).ok());
  std::string blob;
  ASSERT_TRUE(ReadFile(Path("m.bin"), &blob).ok());
  blob.resize(blob.size() - 16);
  ASSERT_TRUE(WriteFile(Path("trunc.bin"), blob).ok());
  EXPECT_FALSE(LoadEmbeddings(Path("trunc.bin")).ok());
}

TEST_F(ModelIoTest, LoadRejectsTrailingGarbage) {
  const EmbeddingStore store = RandomStore(5, 4, 3);
  ASSERT_TRUE(SaveEmbeddings(store, Path("m.bin")).ok());
  std::string blob;
  ASSERT_TRUE(ReadFile(Path("m.bin"), &blob).ok());
  blob += "extra";
  ASSERT_TRUE(WriteFile(Path("pad.bin"), blob).ok());
  EXPECT_FALSE(LoadEmbeddings(Path("pad.bin")).ok());
}

TEST_F(ModelIoTest, LoadMissingFileFails) {
  EXPECT_EQ(LoadEmbeddings(Path("none.bin")).status().code(),
            StatusCode::kIOError);
}

TEST_F(ModelIoTest, TextExportHasHeaderAndRows) {
  const EmbeddingStore store = RandomStore(3, 2, 4);
  ASSERT_TRUE(ExportEmbeddingsText(store, Path("m.txt")).ok());
  std::vector<std::string> lines;
  ASSERT_TRUE(ReadLines(Path("m.txt"), &lines).ok());
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[0], "3 2");
  EXPECT_EQ(lines[1].substr(0, 2), "0 ");
}

TEST_F(ModelIoTest, RoundTripPreservesScores) {
  const EmbeddingStore store = RandomStore(8, 5, 5);
  ASSERT_TRUE(SaveEmbeddings(store, Path("m.bin")).ok());
  const EmbeddingStore loaded = std::move(LoadEmbeddings(Path("m.bin"))).value();
  for (UserId u = 0; u < 8; ++u) {
    for (UserId v = 0; v < 8; ++v) {
      EXPECT_DOUBLE_EQ(loaded.Score(u, v), store.Score(u, v));
    }
  }
}

TEST_F(ModelIoTest, V2RoundTripPreservesMetadata) {
  const EmbeddingStore store = RandomStore(11, 5, 7);
  ModelMetadata metadata;
  metadata.aggregation = "Latest";
  metadata.dim = 5;
  metadata.context_length = 50;
  metadata.alpha = 0.25;
  metadata.epochs = 12;
  metadata.learning_rate = 0.01;
  metadata.num_negatives = 8;
  metadata.seed = 777;
  metadata.num_threads = 4;
  metadata.git_sha = "deadbeef1234";
  const std::string path = Path("v2.bin");
  ASSERT_TRUE(SaveModelArtifact(store, metadata, path).ok());

  Result<ModelArtifact> loaded = LoadModelArtifact(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().store, store);
  const ModelMetadata& got = loaded.value().metadata;
  EXPECT_EQ(got.format_version, 2u);
  EXPECT_EQ(got.aggregation, "Latest");
  EXPECT_EQ(got.dim, 5u);
  EXPECT_EQ(got.context_length, 50u);
  EXPECT_EQ(got.alpha, 0.25);
  EXPECT_EQ(got.epochs, 12u);
  EXPECT_EQ(got.learning_rate, 0.01);
  EXPECT_EQ(got.num_negatives, 8u);
  EXPECT_EQ(got.seed, 777u);
  EXPECT_EQ(got.num_threads, 4u);
  EXPECT_EQ(got.git_sha, "deadbeef1234");
}

TEST_F(ModelIoTest, DefaultSavePathWritesV2ReadableByLoadEmbeddings) {
  const EmbeddingStore store = RandomStore(6, 3, 2);
  const std::string path = Path("default.bin");
  ASSERT_TRUE(SaveEmbeddings(store, path).ok());

  // LoadEmbeddings sees the same table; LoadModelArtifact sees default
  // (unknown-provenance) metadata.
  Result<EmbeddingStore> loaded = LoadEmbeddings(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value(), store);
  Result<ModelArtifact> artifact = LoadModelArtifact(path);
  ASSERT_TRUE(artifact.ok());
  EXPECT_EQ(artifact.value().metadata.format_version, 2u);
  EXPECT_EQ(artifact.value().metadata.aggregation, "Ave");
}

TEST_F(ModelIoTest, LegacyV1FilesStillLoad) {
  const EmbeddingStore store = RandomStore(9, 4, 3);
  const std::string path = Path("v1.bin");
  ASSERT_TRUE(SaveEmbeddingsV1(store, path).ok());

  Result<EmbeddingStore> loaded = LoadEmbeddings(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value(), store);

  Result<ModelArtifact> artifact = LoadModelArtifact(path);
  ASSERT_TRUE(artifact.ok());
  EXPECT_EQ(artifact.value().store, store);
  EXPECT_EQ(artifact.value().metadata.format_version, 1u);
}

TEST_F(ModelIoTest, V2RejectsCorruptMetadata) {
  const EmbeddingStore store = RandomStore(5, 3, 4);
  const std::string path = Path("corrupt.bin");
  ASSERT_TRUE(SaveModelArtifact(store, ModelMetadata(), path).ok());

  // Flip a byte inside the JSON metadata block (right after the 8-byte
  // magic + 4-byte length): the parse must fail loudly, not load junk.
  std::string mangled;
  ASSERT_TRUE(ReadFile(path, &mangled).ok());
  mangled[13] = '\x01';
  ASSERT_TRUE(WriteFile(path, mangled).ok());
  EXPECT_FALSE(LoadModelArtifact(path).ok());
  EXPECT_FALSE(LoadEmbeddings(path).ok());
}

TEST_F(ModelIoTest, MetadataJsonRoundTripTolerantOfMissingKeys) {
  ModelMetadata metadata;
  metadata.aggregation = "Sum";
  metadata.seed = 9;
  Result<ModelMetadata> round =
      ModelMetadata::FromJson(metadata.ToJson());
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round.value().aggregation, "Sum");
  EXPECT_EQ(round.value().seed, 9u);

  // An empty object parses to defaults (forward compatibility).
  Result<ModelMetadata> empty =
      ModelMetadata::FromJson(obs::JsonValue::Object());
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty.value().aggregation, "Ave");
}

}  // namespace
}  // namespace inf2vec
