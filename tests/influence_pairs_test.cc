#include "diffusion/influence_pairs.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace inf2vec {
namespace {

/// The running example of the paper's Fig. 5: users u1..u5 (ids 0..4),
/// social edges chosen so the episode (u4, u2, u3, u1, u5) yields pairs
/// {(u4->u5), (u2->u3), (u4->u1), (u3->u1)}.
SocialGraph Fig5Graph() {
  GraphBuilder builder(5);
  builder.AddEdge(3, 4);  // u4 -> u5
  builder.AddEdge(1, 2);  // u2 -> u3
  builder.AddEdge(3, 0);  // u4 -> u1
  builder.AddEdge(2, 0);  // u3 -> u1
  builder.AddEdge(0, 1);  // u1 -> u2 (exists but wrong order in episode)
  return std::move(builder.Build()).value();
}

DiffusionEpisode Fig5Episode() {
  DiffusionEpisode e(0);
  e.Add(3, 1);  // u4
  e.Add(1, 2);  // u2
  e.Add(2, 3);  // u3
  e.Add(0, 4);  // u1
  e.Add(4, 5);  // u5
  EXPECT_TRUE(e.Finalize().ok());
  return e;
}

TEST(InfluencePairsTest, Fig5ExampleMatchesPaper) {
  const SocialGraph g = Fig5Graph();
  const DiffusionEpisode e = Fig5Episode();
  std::vector<InfluencePair> pairs = ExtractInfluencePairs(g, e);
  std::sort(pairs.begin(), pairs.end(),
            [](const InfluencePair& a, const InfluencePair& b) {
              return a.source != b.source ? a.source < b.source
                                          : a.target < b.target;
            });
  const std::vector<InfluencePair> expected = {
      {1, 2}, {2, 0}, {3, 0}, {3, 4}};
  EXPECT_EQ(pairs, expected);
}

TEST(InfluencePairsTest, NoEdgeNoPair) {
  GraphBuilder builder(3);
  builder.AddEdge(0, 1);
  const SocialGraph g = std::move(builder.Build()).value();
  DiffusionEpisode e(0);
  e.Add(2, 1);  // Not linked to anyone.
  e.Add(1, 2);
  ASSERT_TRUE(e.Finalize().ok());
  EXPECT_TRUE(ExtractInfluencePairs(g, e).empty());
}

TEST(InfluencePairsTest, TieTimesFormNoPair) {
  GraphBuilder builder(2);
  builder.AddEdge(0, 1);
  const SocialGraph g = std::move(builder.Build()).value();
  DiffusionEpisode e(0);
  e.Add(0, 5);
  e.Add(1, 5);  // Same timestamp: strict < fails.
  ASSERT_TRUE(e.Finalize().ok());
  EXPECT_TRUE(ExtractInfluencePairs(g, e).empty());
}

TEST(InfluencePairsTest, DirectionFollowsEdgeNotTime) {
  // Edge only 1 -> 0; user 0 acts first, so no pair (0 cannot influence 1
  // without an edge 0 -> 1, and 1 -> 0 has the wrong time order).
  GraphBuilder builder(2);
  builder.AddEdge(1, 0);
  const SocialGraph g = std::move(builder.Build()).value();
  DiffusionEpisode e(0);
  e.Add(0, 1);
  e.Add(1, 2);
  ASSERT_TRUE(e.Finalize().ok());
  EXPECT_TRUE(ExtractInfluencePairs(g, e).empty());
}

ActionLog TwoEpisodeLog() {
  ActionLog log;
  {
    DiffusionEpisode e(0);
    e.Add(3, 1);
    e.Add(1, 2);
    e.Add(2, 3);
    e.Add(0, 4);
    e.Add(4, 5);
    EXPECT_TRUE(e.Finalize().ok());
    log.AddEpisode(std::move(e));
  }
  {
    DiffusionEpisode e(1);
    e.Add(3, 1);
    e.Add(4, 2);  // Pair (u4 -> u5) again.
    EXPECT_TRUE(e.Finalize().ok());
    log.AddEpisode(std::move(e));
  }
  return log;
}

TEST(PairFrequencyTableTest, CountsSourcesAndTargets) {
  const SocialGraph g = Fig5Graph();
  const PairFrequencyTable table(g, TwoEpisodeLog());
  EXPECT_EQ(table.total_pairs(), 5u);
  EXPECT_EQ(table.SourceCount(3), 3u);  // u4: (->u5) x2, (->u1).
  EXPECT_EQ(table.SourceCount(1), 1u);
  EXPECT_EQ(table.TargetCount(0), 2u);  // u1 influenced by u3 and u4.
  EXPECT_EQ(table.TargetCount(4), 2u);
  EXPECT_EQ(table.SourceCount(4), 0u);
}

TEST(PairFrequencyTableTest, TopPairsOrderedByMultiplicity) {
  const SocialGraph g = Fig5Graph();
  const PairFrequencyTable table(g, TwoEpisodeLog());
  const auto top = table.TopPairs(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].first, (InfluencePair{3, 4}));
  EXPECT_EQ(top[0].second, 2u);
  EXPECT_EQ(top[1].second, 1u);
}

TEST(PairFrequencyTableTest, FrequencyDistributionsMatchCounts) {
  const SocialGraph g = Fig5Graph();
  const PairFrequencyTable table(g, TwoEpisodeLog());
  const Histogram src = table.SourceFrequencyDistribution();
  // Sources: u4 3 times, u2 once, u3 once.
  EXPECT_EQ(src.CountOf(3), 1u);
  EXPECT_EQ(src.CountOf(1), 2u);
  EXPECT_EQ(src.total_count(), 3u);
}

TEST(ActiveFriendCountDistributionTest, Fig3StyleCdf) {
  const SocialGraph g = Fig5Graph();
  ActionLog log;
  {
    DiffusionEpisode e(0);
    e.Add(3, 1);
    e.Add(1, 2);
    e.Add(2, 3);
    e.Add(0, 4);
    e.Add(4, 5);
    EXPECT_TRUE(e.Finalize().ok());
    log.AddEpisode(std::move(e));
  }
  const Histogram h = ActiveFriendCountDistribution(g, log);
  // u4: 0 active friends; u2: 0; u3: 1 (u2); u1: 2 (u4, u3); u5: 1 (u4).
  EXPECT_EQ(h.total_count(), 5u);
  EXPECT_EQ(h.CountOf(0), 2u);
  EXPECT_EQ(h.CountOf(1), 2u);
  EXPECT_EQ(h.CountOf(2), 1u);
  EXPECT_DOUBLE_EQ(h.CdfAt(0), 0.4);
}

}  // namespace
}  // namespace inf2vec
