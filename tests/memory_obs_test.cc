// Memory-plane tests: byte-accounting gauges and their registry, RAII
// reservations, the /proc sampler, the serving budget check, the /memz
// payload schema, and the owner-side accounting (seed cache, embedding
// table, tracez ring). The concurrency test hammers gauges while /memz
// scrapes run — run under -DINF2VEC_SANITIZE=thread to prove the plane
// is race-free (`ctest -L mem`).

#include "obs/memory.h"

#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "embedding/embedding_store.h"
#include "embedding/model_io.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/request_obs.h"
#include "obs/snapshotter.h"
#include "serve/influence_service.h"
#include "serve/seed_cache.h"
#include "util/rng.h"

namespace inf2vec {
namespace obs {
namespace {

/// Every test starts from zeroed gauges and no budget; the handles owners
/// cached earlier stay valid across Reset().
class MemoryObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MemoryRegistry::Default().Reset();
    SetMemoryBudget({0, 0});
  }
  void TearDown() override {
    MemoryRegistry::Default().Reset();
    SetMemoryBudget({0, 0});
  }
};

TEST_F(MemoryObsTest, GaugeTracksDeltasHighWaterAndClampsAtZero) {
  MemoryRegistry registry;
  MemoryGauge* gauge = registry.GetGauge("test.owner");
  EXPECT_EQ(gauge->bytes(), 0u);

  gauge->Add(1000);
  gauge->Add(500);
  EXPECT_EQ(gauge->bytes(), 1500u);
  EXPECT_EQ(gauge->high_water_bytes(), 1500u);

  gauge->Add(-700);
  EXPECT_EQ(gauge->bytes(), 800u);
  EXPECT_EQ(gauge->high_water_bytes(), 1500u) << "high water never recedes";

  gauge->Set(2000);
  EXPECT_EQ(gauge->bytes(), 2000u);
  EXPECT_EQ(gauge->high_water_bytes(), 2000u);

  // A stray double-free in owner accounting must not report negative
  // memory.
  gauge->Add(-9999);
  EXPECT_EQ(gauge->bytes(), 0u);
}

TEST_F(MemoryObsTest, RegistryHandlesAreStableAndTotalSumsGauges) {
  MemoryRegistry registry;
  MemoryGauge* a = registry.GetGauge("owner.a");
  MemoryGauge* b = registry.GetGauge("owner.b");
  EXPECT_NE(a, b);
  EXPECT_EQ(a, registry.GetGauge("owner.a")) << "same name => same handle";

  a->Add(100);
  b->Add(250);
  EXPECT_EQ(registry.AccountedBytes(), 350u);
  b->Add(-250);
  EXPECT_EQ(registry.AccountedBytes(), 100u);

  registry.Reset();
  EXPECT_EQ(registry.AccountedBytes(), 0u);
  EXPECT_EQ(a->bytes(), 0u) << "handles survive Reset zeroed";
  a->Add(7);
  EXPECT_EQ(registry.AccountedBytes(), 7u);
}

TEST_F(MemoryObsTest, ProvidersCountInScrapeButNotInAccountedBytes) {
  MemoryRegistry registry;
  registry.GetGauge("push.owner")->Add(1000);
  registry.RegisterProvider("ring.owner", []() { return 4096u; });

  // The budget fast path reads push gauges only.
  EXPECT_EQ(registry.AccountedBytes(), 1000u);

  const MemoryRegistry::Snapshot snapshot = registry.Scrape();
  EXPECT_EQ(snapshot.total_bytes, 5096u);
  ASSERT_EQ(snapshot.entries.size(), 2u);
  // Entries are name-sorted.
  EXPECT_EQ(snapshot.entries[0].name, "push.owner");
  EXPECT_FALSE(snapshot.entries[0].provider);
  EXPECT_EQ(snapshot.entries[1].name, "ring.owner");
  EXPECT_TRUE(snapshot.entries[1].provider);
  EXPECT_EQ(snapshot.entries[1].bytes, 4096u);

  registry.UnregisterProvider("ring.owner");
  EXPECT_EQ(registry.Scrape().total_bytes, 1000u);
}

TEST_F(MemoryObsTest, ProviderHighWaterIsScrapeTimeMax) {
  MemoryRegistry registry;
  uint64_t live = 100;
  registry.RegisterProvider("ring", [&live]() { return live; });
  EXPECT_EQ(registry.Scrape().entries[0].high_water_bytes, 100u);
  live = 900;
  EXPECT_EQ(registry.Scrape().entries[0].high_water_bytes, 900u);
  live = 50;
  const MemoryRegistry::Snapshot snapshot = registry.Scrape();
  EXPECT_EQ(snapshot.entries[0].bytes, 50u);
  EXPECT_EQ(snapshot.entries[0].high_water_bytes, 900u);
}

TEST_F(MemoryObsTest, ScopedBytesReportsAndReleases) {
  MemoryRegistry registry;
  MemoryGauge* gauge = registry.GetGauge("scoped.owner");
  {
    ScopedBytes scoped(gauge, 4096);
    EXPECT_EQ(gauge->bytes(), 4096u);
    EXPECT_EQ(scoped.bytes(), 4096u);

    scoped.Resize(1024);
    EXPECT_EQ(gauge->bytes(), 1024u);

    // Move transfers the reservation; the source must not double-free.
    ScopedBytes stolen(std::move(scoped));
    EXPECT_EQ(scoped.bytes(), 0u);  // NOLINT(bugprone-use-after-move)
    EXPECT_EQ(gauge->bytes(), 1024u);

    ScopedBytes assigned;
    assigned = std::move(stolen);
    EXPECT_EQ(gauge->bytes(), 1024u);

    assigned.Release();
    EXPECT_EQ(gauge->bytes(), 0u);
    assigned.Release();  // Idempotent.
    EXPECT_EQ(gauge->bytes(), 0u);
  }
  EXPECT_EQ(gauge->bytes(), 0u);

  // Destructor path: the reservation dies with the scope.
  {
    ScopedBytes scoped(gauge, 512);
    EXPECT_EQ(gauge->bytes(), 512u);
  }
  EXPECT_EQ(gauge->bytes(), 0u);
}

TEST_F(MemoryObsTest, MoveAssignmentFreesTheOverwrittenReservation) {
  MemoryRegistry registry;
  MemoryGauge* gauge = registry.GetGauge("scoped.owner");
  ScopedBytes first(gauge, 100);
  ScopedBytes second(gauge, 30);
  EXPECT_EQ(gauge->bytes(), 130u);
  first = std::move(second);  // The 100-byte reservation must be freed.
  EXPECT_EQ(gauge->bytes(), 30u);
}

TEST_F(MemoryObsTest, GaugeWritesThroughToMetricsRegistry) {
  MemoryRegistry registry;
  registry.GetGauge("writethrough.owner")->Set(777);
  // mem.<name>.bytes lands in the default MetricsRegistry, whence
  // Prometheus exports it as inf2vec_mem_writethrough_owner_bytes.
  EXPECT_EQ(MetricsRegistry::Default()
                .GetGauge("mem.writethrough.owner.bytes")
                ->Value(),
            777.0);
}

TEST_F(MemoryObsTest, SampleProcessMemoryReadsProc) {
  const MemorySample sample = SampleProcessMemory();
  // /proc/self/status always exists on Linux; a process running this test
  // binary has nonzero RSS and a peak at least as large.
  ASSERT_TRUE(sample.sampled);
  EXPECT_GT(sample.rss_bytes, 0u);
  EXPECT_GE(sample.peak_rss_bytes, sample.rss_bytes);
  EXPECT_GE(sample.vm_size_bytes, sample.rss_bytes);
}

TEST_F(MemoryObsTest, BudgetGatesOnAccountedPlusHeadroomPlusExtra) {
  EXPECT_FALSE(OverMemoryBudget()) << "no budget configured = unlimited";

  MemoryGauge* gauge = MemoryRegistry::Default().GetGauge("budget.owner");
  gauge->Set(600);
  SetMemoryBudget({1000, 100});
  const MemoryBudget budget = GetMemoryBudget();
  EXPECT_EQ(budget.budget_bytes, 1000u);
  EXPECT_EQ(budget.headroom_bytes, 100u);

  EXPECT_FALSE(OverMemoryBudget()) << "600 + 100 <= 1000";
  // The hot-swap preflight: doubling residency would blow the budget.
  EXPECT_TRUE(OverMemoryBudget(/*extra_bytes=*/600));

  gauge->Set(950);
  EXPECT_TRUE(OverMemoryBudget()) << "950 + 100 > 1000";

  SetMemoryBudget({0, 0});
  EXPECT_FALSE(OverMemoryBudget()) << "clearing the budget lifts the gate";
}

TEST_F(MemoryObsTest, MemzJsonMatchesSchema) {
  MemoryRegistry::Default().GetGauge("schema.owner")->Set(1234);
  MemoryRegistry::Default().RegisterProvider("schema.ring",
                                             []() { return 10u; });
  SetMemoryBudget({1u << 30, 1u << 20});

  const JsonValue memz = MemzJson();
  EXPECT_EQ(memz.Find("schema_version")->AsInt(), 1);

  const JsonValue* accounted = memz.Find("accounted");
  ASSERT_NE(accounted, nullptr);
  EXPECT_GE(accounted->Find("total_bytes")->AsInt(), 1234);
  const JsonValue* gauge =
      accounted->Find("gauges")->Find("schema.owner");
  ASSERT_NE(gauge, nullptr);
  EXPECT_EQ(gauge->Find("bytes")->AsInt(), 1234);
  EXPECT_EQ(gauge->Find("high_water_bytes")->AsInt(), 1234);
  const JsonValue* ring = accounted->Find("gauges")->Find("schema.ring");
  ASSERT_NE(ring, nullptr);
  EXPECT_TRUE(ring->Find("provider")->AsBool());

  const JsonValue* process = memz.Find("process");
  ASSERT_NE(process, nullptr);
  EXPECT_TRUE(process->Find("sampled")->AsBool());
  EXPECT_GT(process->Find("rss_bytes")->AsInt(), 0);

  ASSERT_NE(memz.Find("coverage"), nullptr);
  EXPECT_GE(memz.Find("coverage")->Find("accounted_over_rss")->AsDouble(),
            0.0);

  const JsonValue* budget = memz.Find("budget");
  ASSERT_NE(budget, nullptr) << "budget block present when one is set";
  EXPECT_EQ(budget->Find("budget_bytes")->AsInt(), 1 << 30);
  // The displayed figure must be the same number the shed check reads
  // (push gauges only), or operators cannot reason about a 503.
  EXPECT_EQ(
      budget->Find("accounted_bytes")->AsInt(),
      static_cast<int64_t>(MemoryRegistry::Default().AccountedBytes()));
  EXPECT_FALSE(budget->Find("over_budget")->AsBool());

  ASSERT_NE(memz.Find("heap_profiler"), nullptr);

  SetMemoryBudget({0, 0});
  EXPECT_EQ(MemzJson().Find("budget"), nullptr)
      << "no budget block when unlimited";
}

TEST_F(MemoryObsTest, MemorySeriesJsonIsCompact) {
  MemoryRegistry::Default().GetGauge("series.owner")->Set(4096);
  const JsonValue series = MemorySeriesJson();
  EXPECT_GE(series.Find("accounted_bytes")->AsInt(), 4096);
  EXPECT_GT(series.Find("rss_bytes")->AsInt(), 0);
  EXPECT_EQ(series.Find("gauges")->Find("series.owner")->AsInt(), 4096);
}

TEST_F(MemoryObsTest, SnapshotterLinesCarryTheMemorySeries) {
  MemoryRegistry::Default().GetGauge("snap.owner")->Set(8192);

  const char* tmpdir = std::getenv("TMPDIR");
  const std::string path =
      std::string(tmpdir ? tmpdir : "/tmp") + "/memz_snap.jsonl";
  MetricsRegistry registry;
  registry.GetCounter("work.done")->Increment(1);
  MetricsSnapshotter snapshotter({path, /*interval_ms=*/60000}, &registry);
  ASSERT_TRUE(snapshotter.Start().ok());
  snapshotter.Stop();

  std::ifstream in(path);
  std::string line;
  size_t lines = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++lines;
    Result<JsonValue> parsed = ParseJson(line);
    ASSERT_TRUE(parsed.ok()) << line;
    const JsonValue* memory = parsed.value().Find("memory");
    ASSERT_NE(memory, nullptr) << "every tick carries the memory series";
    EXPECT_GE(memory->Find("accounted_bytes")->AsInt(), 8192);
    EXPECT_GT(memory->Find("rss_bytes")->AsInt(), 0);
    EXPECT_EQ(memory->Find("gauges")->Find("snap.owner")->AsInt(), 8192);
  }
  EXPECT_GE(lines, 1u);
  std::remove(path.c_str());
}

TEST_F(MemoryObsTest, ConcurrentScrapesAndUpdatesAreRaceFree) {
  constexpr int kWriters = 4;
  constexpr int kScrapers = 2;
  constexpr int kIterations = 2000;

  SetMemoryBudget({1u << 20, 0});
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([w]() {
      MemoryGauge* gauge = MemoryRegistry::Default().GetGauge(
          "race.owner." + std::to_string(w % 2));
      for (int i = 0; i < kIterations; ++i) {
        gauge->Add(64);
        gauge->Add(-64);
      }
    });
  }
  for (int s = 0; s < kScrapers; ++s) {
    threads.emplace_back([&stop]() {
      while (!stop.load(std::memory_order_relaxed)) {
        const JsonValue memz = MemzJson();
        ASSERT_NE(memz.Find("accounted"), nullptr);
        (void)MemoryRegistry::Default().Scrape();
        (void)OverMemoryBudget(1024);
      }
    });
  }
  for (int w = 0; w < kWriters; ++w) threads[w].join();
  stop.store(true);
  for (size_t t = kWriters; t < threads.size(); ++t) threads[t].join();

  // Every Add was paired with its negation: the plane nets to zero.
  EXPECT_EQ(MemoryRegistry::Default().GetGauge("race.owner.0")->bytes(), 0u);
  EXPECT_EQ(MemoryRegistry::Default().GetGauge("race.owner.1")->bytes(), 0u);
  SetMemoryBudget({0, 0});
}

// ---- Owner-side accounting -------------------------------------------

EmbeddingStore MakeStore(uint32_t users, uint32_t dim) {
  EmbeddingStore store(users, dim);
  Rng rng(99);
  store.InitUniform(-0.5, 0.5, rng);
  return store;
}

TEST_F(MemoryObsTest, SeedCacheAccountsLiveBytesIncrementally) {
  const EmbeddingStore store = MakeStore(64, 8);
  MemoryGauge* gauge =
      MemoryRegistry::Default().GetGauge("serve.seed_cache");
  {
    serve::SeedBlockCache cache(/*capacity=*/2);
    EXPECT_EQ(cache.total_bytes(), 0u);

    bool hit = false;
    ASSERT_NE(cache.Get(store, {1, 2, 3}, &hit), nullptr);
    EXPECT_FALSE(hit);
    const uint64_t one_entry = cache.total_bytes();
    EXPECT_GT(one_entry, 0u);
    EXPECT_EQ(gauge->bytes(), one_entry);

    // A hit must not change the accounting.
    ASSERT_NE(cache.Get(store, {1, 2, 3}, &hit), nullptr);
    EXPECT_TRUE(hit);
    EXPECT_EQ(cache.total_bytes(), one_entry);

    ASSERT_NE(cache.Get(store, {4, 5}, &hit), nullptr);
    const uint64_t two_entries = cache.total_bytes();
    EXPECT_GT(two_entries, one_entry);
    EXPECT_EQ(gauge->bytes(), two_entries);

    // Third distinct set evicts the LRU entry: bytes stay bounded by the
    // two retained entries, never grow monotonically.
    ASSERT_NE(cache.Get(store, {6, 7, 8, 9}, &hit), nullptr);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_LE(cache.total_bytes(), two_entries + (two_entries - one_entry));
    EXPECT_EQ(gauge->bytes(), cache.total_bytes());

    // The metric-gauge export tracks the same figure.
    EXPECT_EQ(MetricsRegistry::Default()
                  .GetGauge("serve.seed_cache_bytes")
                  ->Value(),
              static_cast<double>(cache.total_bytes()));
  }
  EXPECT_EQ(gauge->bytes(), 0u) << "destroyed cache gives its bytes back";
}

TEST_F(MemoryObsTest, InfluenceServiceAccountsItsTables) {
  MemoryGauge* table =
      MemoryRegistry::Default().GetGauge("serve.embedding_table");
  MemoryGauge* qtable =
      MemoryRegistry::Default().GetGauge("serve.quantized_table");
  {
    ModelArtifact artifact;
    artifact.store = MakeStore(128, 16);
    artifact.metadata.dim = 16;
    const uint64_t expected = artifact.store.ApproxBytes();

    serve::ServiceOptions options;
    options.quantize = serve::QuantMode::kInt8;
    auto service_or =
        serve::InfluenceService::FromArtifact(std::move(artifact), options);
    ASSERT_TRUE(service_or.ok()) << service_or.status().ToString();
    EXPECT_EQ(table->bytes(), expected);
    EXPECT_GT(qtable->bytes(), 0u);
    EXPECT_LT(qtable->bytes(), expected)
        << "int8 rows must be smaller than the fp64 table";
    EXPECT_EQ(service_or.value().AccountedBytes(),
              table->bytes() + qtable->bytes());
  }
  EXPECT_EQ(table->bytes(), 0u);
  EXPECT_EQ(qtable->bytes(), 0u);
}

TEST_F(MemoryObsTest, TracezRingAccountsRecordsAndReleasesOnDestruction) {
  MemoryGauge* gauge =
      MemoryRegistry::Default().GetGauge("obs.tracez_ring");
  {
    TracezBuffer tracez(/*recent_capacity=*/4, /*slow_capacity=*/2,
                        /*slow_threshold_us=*/0);
    EXPECT_EQ(tracez.ApproxBytes(), 0u);

    for (int i = 0; i < 16; ++i) {
      RequestTraceRecord record;
      record.request_id = "req-" + std::to_string(i);
      record.method = "GET";
      record.endpoint = "/topk";
      record.status = 200;
      record.total_us = static_cast<uint64_t>(100 + i);
      record.attrs.emplace_back("seed_count", "4");
      tracez.Record(std::move(record));
    }
    // Both rings are full and bounded; the incremental accounting must
    // agree with the gauge exactly (not merely approximately).
    EXPECT_GT(tracez.ApproxBytes(), 0u);
    EXPECT_EQ(gauge->bytes(), tracez.ApproxBytes());
  }
  EXPECT_EQ(gauge->bytes(), 0u);
}

}  // namespace
}  // namespace obs
}  // namespace inf2vec
