// The shard-split subsystem: balanced range tiling, bit-exact slicing of
// fp64 and int8 tables, the I2VSHRD1 identity section (round-trip, CRC
// corruption rejection, range-consistency validation), the seed-block /
// request / response wire codecs, and the load-time guards that keep a
// shard slice out of plain serve and a whole model out of shard serve.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "embedding/model_io.h"
#include "embedding/quantized_store.h"
#include "obs/json.h"
#include "serve/influence_service.h"
#include "serve/seed_cache.h"
#include "shard/shard_service.h"
#include "shard/shard_split.h"
#include "shard/wire.h"
#include "util/rng.h"

namespace inf2vec {
namespace shard {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

EmbeddingStore MakeStore(uint32_t num_users, uint32_t dim, uint64_t seed) {
  EmbeddingStore store(num_users, dim);
  Rng rng(seed);
  store.InitUniform(-0.5, 0.5, rng);
  for (UserId u = 0; u < num_users; ++u) {
    store.mutable_source_bias(u) = rng.UniformDouble(-0.2, 0.2);
    store.mutable_target_bias(u) = rng.UniformDouble(-0.2, 0.2);
  }
  return store;
}

ModelMetadata MakeMetadata(uint32_t dim) {
  ModelMetadata metadata;
  metadata.aggregation = "Ave";
  metadata.dim = dim;
  return metadata;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(ComputeShardRangesTest, BalancedContiguousTiling) {
  for (uint32_t total : {1u, 2u, 7u, 64u, 100u, 1000u}) {
    for (uint32_t n : {1u, 2u, 3u, 5u, 7u}) {
      if (n > total) continue;
      const std::vector<ShardRange> ranges = ComputeShardRanges(total, n);
      ASSERT_EQ(ranges.size(), n);
      uint32_t expected_begin = 0;
      for (const ShardRange& range : ranges) {
        EXPECT_EQ(range.begin, expected_begin);
        EXPECT_GT(range.end, range.begin);
        // Balanced: every shard holds floor or ceil of total / n users.
        const uint32_t size = range.end - range.begin;
        EXPECT_GE(size, total / n);
        EXPECT_LE(size, total / n + (total % n == 0 ? 0 : 1));
        expected_begin = range.end;
      }
      EXPECT_EQ(expected_begin, total);
    }
  }
}

TEST(ComputeShardRangesTest, FirstRemainderShardsGetOneExtra) {
  const std::vector<ShardRange> ranges = ComputeShardRanges(10, 3);
  ASSERT_EQ(ranges.size(), 3u);
  EXPECT_EQ(ranges[0].end - ranges[0].begin, 4u);
  EXPECT_EQ(ranges[1].end - ranges[1].begin, 3u);
  EXPECT_EQ(ranges[2].end - ranges[2].begin, 3u);
}

TEST(ModelContentHashTest, SensitiveToEveryPayloadComponent) {
  const EmbeddingStore base = MakeStore(16, 4, 1);
  const uint64_t hash = ComputeModelContentHash(base);
  EXPECT_EQ(ComputeModelContentHash(base), hash);  // deterministic

  EmbeddingStore vec = MakeStore(16, 4, 1);
  vec.Source(7)[2] += 1e-9;
  EXPECT_NE(ComputeModelContentHash(vec), hash);

  EmbeddingStore bias = MakeStore(16, 4, 1);
  bias.mutable_target_bias(3) += 1e-9;
  EXPECT_NE(ComputeModelContentHash(bias), hash);

  EXPECT_NE(ComputeModelContentHash(MakeStore(17, 4, 1)), hash);
}

TEST(ShardSplitTest, Fp64SlicesAreBitExactAndStamped) {
  const EmbeddingStore full = MakeStore(25, 6, 2);
  const uint64_t hash = ComputeModelContentHash(full);
  const std::string model_path = TempPath("shard_split_fp64.i2v");
  ASSERT_TRUE(SaveModelArtifact(full, MakeMetadata(6), model_path).ok());

  Result<std::vector<std::string>> paths =
      SplitModelArtifact(model_path, ::testing::TempDir(), 3);
  ASSERT_TRUE(paths.ok()) << paths.status().ToString();
  ASSERT_EQ(paths.value().size(), 3u);

  const std::vector<ShardRange> ranges = ComputeShardRanges(25, 3);
  for (uint32_t i = 0; i < 3; ++i) {
    Result<ModelArtifact> slice = LoadModelArtifact(paths.value()[i]);
    ASSERT_TRUE(slice.ok()) << slice.status().ToString();
    ASSERT_TRUE(slice.value().shard.has_value());
    const ShardSliceInfo& info = *slice.value().shard;
    EXPECT_EQ(info.shard_index, i);
    EXPECT_EQ(info.num_shards, 3u);
    EXPECT_EQ(info.begin_user, ranges[i].begin);
    EXPECT_EQ(info.end_user, ranges[i].end);
    EXPECT_EQ(info.total_users, 25u);
    EXPECT_EQ(info.model_hash, hash);

    const EmbeddingStore& store = slice.value().store;
    ASSERT_EQ(store.num_users(), ranges[i].end - ranges[i].begin);
    for (UserId local = 0; local < store.num_users(); ++local) {
      const UserId global = ranges[i].begin + local;
      EXPECT_EQ(std::memcmp(store.Source(local).data(),
                            full.Source(global).data(), 6 * sizeof(double)),
                0);
      EXPECT_EQ(std::memcmp(store.Target(local).data(),
                            full.Target(global).data(), 6 * sizeof(double)),
                0);
      EXPECT_EQ(store.source_bias(local), full.source_bias(global));
      EXPECT_EQ(store.target_bias(local), full.target_bias(global));
    }
  }
}

TEST(ShardSplitTest, QuantizedSectionSlicedRowLocal) {
  const EmbeddingStore full = MakeStore(20, 8, 3);
  const QuantizedEmbeddingStore quantized =
      QuantizedEmbeddingStore::FromStore(full);
  const std::string model_path = TempPath("shard_split_int8.i2v");
  ASSERT_TRUE(
      SaveModelArtifact(full, MakeMetadata(8), model_path, &quantized).ok());

  Result<std::vector<std::string>> paths =
      SplitModelArtifact(model_path, ::testing::TempDir(), 4);
  ASSERT_TRUE(paths.ok()) << paths.status().ToString();

  const std::vector<ShardRange> ranges = ComputeShardRanges(20, 4);
  for (uint32_t i = 0; i < 4; ++i) {
    Result<ModelArtifact> slice = LoadModelArtifact(paths.value()[i]);
    ASSERT_TRUE(slice.ok()) << slice.status().ToString();
    ASSERT_TRUE(slice.value().quantized.has_value());
    const QuantizedEmbeddingStore& qslice = *slice.value().quantized;
    for (UserId local = 0; local < qslice.num_users(); ++local) {
      const UserId global = ranges[i].begin + local;
      EXPECT_EQ(std::memcmp(qslice.Source(local).data(),
                            quantized.Source(global).data(), 8),
                0);
      EXPECT_EQ(std::memcmp(qslice.Target(local).data(),
                            quantized.Target(global).data(), 8),
                0);
      EXPECT_EQ(qslice.source_scale(local), quantized.source_scale(global));
      EXPECT_EQ(qslice.target_scale(local), quantized.target_scale(global));
      EXPECT_EQ(qslice.source_bias(local), quantized.source_bias(global));
      EXPECT_EQ(qslice.target_bias(local), quantized.target_bias(global));
    }
  }
}

TEST(ShardSplitTest, RefusesToSplitAShardArtifact) {
  const EmbeddingStore full = MakeStore(12, 4, 4);
  const std::string model_path = TempPath("shard_split_nested.i2v");
  ASSERT_TRUE(SaveModelArtifact(full, MakeMetadata(4), model_path).ok());
  Result<std::vector<std::string>> paths =
      SplitModelArtifact(model_path, ::testing::TempDir(), 2);
  ASSERT_TRUE(paths.ok());

  Result<std::vector<std::string>> nested =
      SplitModelArtifact(paths.value()[0], ::testing::TempDir(), 2);
  EXPECT_FALSE(nested.ok());
  EXPECT_EQ(nested.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ShardSplitTest, MoreShardsThanUsersRejected) {
  const EmbeddingStore full = MakeStore(3, 4, 5);
  const std::string model_path = TempPath("shard_split_tiny.i2v");
  ASSERT_TRUE(SaveModelArtifact(full, MakeMetadata(4), model_path).ok());
  Result<std::vector<std::string>> paths =
      SplitModelArtifact(model_path, ::testing::TempDir(), 5);
  EXPECT_FALSE(paths.ok());
}

TEST(ShardSectionTest, CorruptedSectionBytesRejectedByCrc) {
  const EmbeddingStore full = MakeStore(10, 4, 6);
  const std::string model_path = TempPath("shard_crc_model.i2v");
  ASSERT_TRUE(SaveModelArtifact(full, MakeMetadata(4), model_path).ok());
  Result<std::vector<std::string>> paths =
      SplitModelArtifact(model_path, ::testing::TempDir(), 2);
  ASSERT_TRUE(paths.ok());

  // The I2VSHRD1 section is the trailing 40 bytes: 8 magic + 28 fields
  // (including the model hash) + 4 CRC. Flipping any field byte must be
  // caught by the CRC; flipping a CRC byte must also fail.
  const std::string clean = ReadFileBytes(paths.value()[0]);
  ASSERT_GE(clean.size(), 40u);
  for (const size_t back_off : {32u, 20u, 12u, 2u}) {
    std::string corrupt = clean;
    corrupt[corrupt.size() - back_off] ^= 0x01;
    const std::string path = TempPath("shard_crc_corrupt.i2v");
    WriteFileBytes(path, corrupt);
    Result<ModelArtifact> loaded = LoadModelArtifact(path);
    EXPECT_FALSE(loaded.ok())
        << "byte flip at -" << back_off << " went undetected";
  }
  // Control: the untouched artifact loads.
  WriteFileBytes(TempPath("shard_crc_corrupt.i2v"), clean);
  EXPECT_TRUE(LoadModelArtifact(TempPath("shard_crc_corrupt.i2v")).ok());
}

TEST(ShardSectionTest, TruncatedTrailingSectionRejected) {
  const EmbeddingStore full = MakeStore(10, 4, 7);
  const std::string model_path = TempPath("shard_trunc_model.i2v");
  ASSERT_TRUE(SaveModelArtifact(full, MakeMetadata(4), model_path).ok());
  Result<std::vector<std::string>> paths =
      SplitModelArtifact(model_path, ::testing::TempDir(), 2);
  ASSERT_TRUE(paths.ok());

  const std::string clean = ReadFileBytes(paths.value()[0]);
  const std::string path = TempPath("shard_trunc.i2v");
  WriteFileBytes(path, clean.substr(0, clean.size() - 5));
  EXPECT_FALSE(LoadModelArtifact(path).ok());
}

TEST(ShardSectionTest, PlainServeRejectsShardArtifact) {
  const EmbeddingStore full = MakeStore(10, 4, 8);
  const std::string model_path = TempPath("shard_guard_model.i2v");
  ASSERT_TRUE(SaveModelArtifact(full, MakeMetadata(4), model_path).ok());
  Result<std::vector<std::string>> paths =
      SplitModelArtifact(model_path, ::testing::TempDir(), 2);
  ASSERT_TRUE(paths.ok());

  Result<serve::InfluenceService> plain =
      serve::InfluenceService::Load(paths.value()[0], {});
  EXPECT_FALSE(plain.ok());
  EXPECT_EQ(plain.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ShardSectionTest, ShardServeRejectsWholeModelArtifact) {
  const EmbeddingStore full = MakeStore(10, 4, 9);
  const std::string model_path = TempPath("shard_guard_whole.i2v");
  ASSERT_TRUE(SaveModelArtifact(full, MakeMetadata(4), model_path).ok());
  Result<ShardService> service = ShardService::Load(model_path, {});
  EXPECT_FALSE(service.ok());
  EXPECT_EQ(service.status().code(), StatusCode::kFailedPrecondition);
}

// --- Wire codecs ---

TEST(WireTest, Fp64SeedBlockRoundTripsBitExact) {
  const EmbeddingStore store = MakeStore(12, 5, 10);
  const std::vector<UserId> seeds = {3, 7, 3, 11};
  serve::SeedBlock block = serve::GatherSeedBlock(store, seeds);

  // Through Dump + ParseJson, like the real wire (%.17g round-trips every
  // finite double exactly).
  Result<obs::JsonValue> json =
      obs::ParseJson(SeedBlockToJson(block).Dump(0));
  ASSERT_TRUE(json.ok()) << json.status().ToString();
  Result<serve::SeedBlock> decoded = SeedBlockFromJson(json.value());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();

  const serve::SeedBlock& out = decoded.value();
  EXPECT_EQ(out.dim, block.dim);
  EXPECT_EQ(out.stride, block.stride);
  EXPECT_FALSE(out.quantized);
  EXPECT_EQ(out.seeds, block.seeds);
  ASSERT_EQ(out.sources.size(), block.sources.size());
  EXPECT_EQ(std::memcmp(out.sources.data(), block.sources.data(),
                        block.sources.size() * sizeof(double)),
            0);
  EXPECT_EQ(out.source_biases, block.source_biases);
}

TEST(WireTest, QuantizedSeedBlockRoundTripsBitExact) {
  const EmbeddingStore store = MakeStore(12, 5, 11);
  const QuantizedEmbeddingStore quantized =
      QuantizedEmbeddingStore::FromStore(store);
  const std::vector<UserId> seeds = {0, 9, 4};
  serve::SeedBlock block = serve::GatherSeedBlock(quantized, seeds);

  Result<obs::JsonValue> json =
      obs::ParseJson(SeedBlockToJson(block).Dump(0));
  ASSERT_TRUE(json.ok());
  Result<serve::SeedBlock> decoded = SeedBlockFromJson(json.value());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();

  const serve::SeedBlock& out = decoded.value();
  EXPECT_TRUE(out.quantized);
  EXPECT_EQ(out.q_stride, block.q_stride);
  ASSERT_EQ(out.q_sources.size(), block.q_sources.size());
  EXPECT_EQ(std::memcmp(out.q_sources.data(), block.q_sources.data(),
                        block.q_sources.size()),
            0);
  EXPECT_EQ(out.q_scales, block.q_scales);
  EXPECT_EQ(out.q_biases, block.q_biases);
}

TEST(WireTest, TopKRequestResponseRoundTrip) {
  const EmbeddingStore store = MakeStore(8, 3, 12);
  ShardTopKRequest request;
  request.k = 5;
  request.aggregation = Aggregation::kMax;
  request.deadline_us = 250000;
  request.exclude = {1, 2, 7};
  request.block = serve::GatherSeedBlock(store, {1, 2});

  Result<obs::JsonValue> json =
      obs::ParseJson(ShardTopKRequestToJson(request).Dump(0));
  ASSERT_TRUE(json.ok());
  Result<ShardTopKRequest> decoded = ShardTopKRequestFromJson(json.value());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().k, 5u);
  ASSERT_TRUE(decoded.value().aggregation.has_value());
  EXPECT_EQ(*decoded.value().aggregation, Aggregation::kMax);
  EXPECT_EQ(decoded.value().deadline_us, 250000u);
  EXPECT_EQ(decoded.value().exclude, request.exclude);
  EXPECT_EQ(decoded.value().block.seeds, request.block.seeds);

  ShardTopKResponse response;
  response.shard_index = 2;
  response.scanned = 123;
  response.entries = {{4, 0.5}, {9, 0.5}, {1, -0.25}};
  Result<obs::JsonValue> response_json =
      obs::ParseJson(ShardTopKResponseToJson(response).Dump(0));
  ASSERT_TRUE(response_json.ok());
  Result<ShardTopKResponse> decoded_response =
      ShardTopKResponseFromJson(response_json.value());
  ASSERT_TRUE(decoded_response.ok())
      << decoded_response.status().ToString();
  EXPECT_EQ(decoded_response.value().shard_index, 2u);
  EXPECT_EQ(decoded_response.value().scanned, 123u);
  ASSERT_EQ(decoded_response.value().entries.size(), 3u);
  EXPECT_EQ(decoded_response.value().entries[1].user, 9u);
  EXPECT_EQ(decoded_response.value().entries[1].score, 0.5);
}

TEST(WireTest, MalformedBlocksRejected) {
  obs::JsonValue bad = obs::JsonValue::Object();
  bad.Set("dim", 4);
  EXPECT_FALSE(SeedBlockFromJson(bad).ok());

  // Row length disagreeing with dim.
  const EmbeddingStore store = MakeStore(6, 4, 13);
  serve::SeedBlock block = serve::GatherSeedBlock(store, {1});
  obs::JsonValue json = SeedBlockToJson(block);
  json.Set("dim", 3);
  EXPECT_FALSE(SeedBlockFromJson(json).ok());
}

}  // namespace
}  // namespace shard
}  // namespace inf2vec
