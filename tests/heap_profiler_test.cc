// Sampling heap-profiler tests. The attribution pin is the acceptance
// criterion from the memory-plane issue: with a fine sample period, at
// least half of the sampled live bytes must fold to embedding-table /
// quantized-table allocation sites — the frames an operator needs to see
// when asking "why is this serving process 8 GB?". Uses the process-wide
// profiler singleton, so tests run sequentially and each resets it.

#include "obs/heap_profiler.h"

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "embedding/embedding_store.h"
#include "embedding/quantized_store.h"
#include "obs/json.h"
#include "util/rng.h"

namespace inf2vec {
namespace obs {
namespace {

/// Folded format: "frame;frame;frame <bytes>" per line. Sums every
/// line's weight into `*total_out` and the weight of lines whose stack
/// mentions any of `needles` into the return value.
uint64_t FoldedBytesMatching(const std::string& folded,
                             const std::vector<std::string>& needles,
                             uint64_t* total_out) {
  uint64_t matched = 0;
  uint64_t total = 0;
  std::istringstream in(folded);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const size_t space = line.rfind(' ');
    EXPECT_NE(space, std::string::npos) << "bad folded line: " << line;
    if (space == std::string::npos) continue;
    const uint64_t bytes = std::stoull(line.substr(space + 1));
    total += bytes;
    for (const std::string& needle : needles) {
      if (line.find(needle) != std::string::npos) {
        matched += bytes;
        break;
      }
    }
  }
  if (total_out != nullptr) *total_out = total;
  return matched;
}

class HeapProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    HeapProfiler& profiler = HeapProfiler::Default();
    if (profiler.running()) ASSERT_TRUE(profiler.Stop().ok());
    profiler.Reset();
  }
  void TearDown() override {
    HeapProfiler& profiler = HeapProfiler::Default();
    (void)profiler.Stop();
    profiler.Reset();
  }
};

TEST_F(HeapProfilerTest, LifecycleAndDoubleStartRefused) {
  HeapProfiler& profiler = HeapProfiler::Default();
  EXPECT_FALSE(profiler.running());

  ASSERT_TRUE(profiler.Start().ok());
  EXPECT_TRUE(profiler.running());
  EXPECT_EQ(profiler.sample_period_bytes(), 512u * 1024u);
  EXPECT_FALSE(profiler.Start().ok()) << "already running";

  ASSERT_TRUE(profiler.Stop().ok());
  EXPECT_FALSE(profiler.running());

  // Samples stay inspectable after Stop; Reset drops them.
  profiler.Reset();
  EXPECT_EQ(profiler.total_samples(), 0u);
  EXPECT_EQ(profiler.sampled_live_bytes(), 0u);
}

TEST_F(HeapProfilerTest, ZeroPeriodFallsBackToDefault) {
  HeapProfiler& profiler = HeapProfiler::Default();
  HeapProfiler::Options options;
  options.sample_period_bytes = 0;
  ASSERT_TRUE(profiler.Start(options).ok());
  EXPECT_EQ(profiler.sample_period_bytes(), 512u * 1024u);
}

TEST_F(HeapProfilerTest, LargeAllocationsAreAlwaysSampled) {
  HeapProfiler& profiler = HeapProfiler::Default();
  HeapProfiler::Options options;
  options.sample_period_bytes = 64 * 1024;
  ASSERT_TRUE(profiler.Start(options).ok());

  // 8 MB >> period: sampled with probability 1, weighted exactly.
  constexpr size_t kBig = 8u << 20;
  auto block = std::make_unique<std::vector<double>>(kBig / sizeof(double));
  EXPECT_GE(profiler.total_samples(), 1u);
  EXPECT_GE(profiler.sampled_live_bytes(), static_cast<uint64_t>(kBig));
  const uint64_t live_with_block = profiler.sampled_live_bytes();

  // Freeing the block must give its sampled bytes back.
  block.reset();
  EXPECT_LE(profiler.sampled_live_bytes(), live_with_block - kBig);
  // Cumulative attribution keeps the freed allocation.
  EXPECT_GE(profiler.sampled_alloc_bytes(), static_cast<uint64_t>(kBig));
}

TEST_F(HeapProfilerTest, AttributesEmbeddingTablesToTheirAllocationSites) {
  HeapProfiler& profiler = HeapProfiler::Default();
  HeapProfiler::Options options;
  options.sample_period_bytes = 64 * 1024;
  ASSERT_TRUE(profiler.Start(options).ok());

  // ~26 MB of fp64 table plus the int8 copy: the embedding stores are the
  // overwhelming majority of what this test allocates while sampling.
  constexpr uint32_t kUsers = 25000;
  constexpr uint32_t kDim = 64;
  EmbeddingStore store(kUsers, kDim);
  Rng rng(7);
  store.InitUniform(-0.5, 0.5, rng);
  const QuantizedEmbeddingStore quantized =
      QuantizedEmbeddingStore::FromStore(store);
  ASSERT_GT(quantized.num_users(), 0u);

  ASSERT_TRUE(profiler.Stop().ok());
  ASSERT_GT(profiler.total_samples(), 0u);

  const std::string folded = profiler.FoldedLive();
  ASSERT_FALSE(folded.empty());
  uint64_t total = 0;
  const uint64_t matched = FoldedBytesMatching(
      folded,
      {"EmbeddingStore", "QuantizedEmbeddingStore", "AlignedAllocator"},
      &total);
  ASSERT_GT(total, 0u);
  // The acceptance bar: at least half the sampled live bytes must land on
  // embedding / quantized-store sites. (In practice nearly all do; 50%
  // keeps the test robust to allocator and libstdc++ noise.)
  EXPECT_GE(matched, total / 2)
      << "only " << matched << " of " << total
      << " sampled live bytes fold to embedding-store frames:\n"
      << folded;

  // The live profile also shrinks when the tables go away.
  const uint64_t live_before = profiler.sampled_live_bytes();
  {
    EmbeddingStore doomed(kUsers, kDim);
    (void)doomed;
  }  // Allocated after Stop(): must not perturb sampled bytes.
  EXPECT_EQ(profiler.sampled_live_bytes(), live_before)
      << "stopped profiler must not record new allocations";
}

TEST_F(HeapProfilerTest, DescribeJsonCarriesCountersAndState) {
  HeapProfiler& profiler = HeapProfiler::Default();
  HeapProfiler::Options options;
  options.sample_period_bytes = 128 * 1024;
  ASSERT_TRUE(profiler.Start(options).ok());
  std::vector<uint8_t> block(4u << 20);
  ASSERT_GT(block.size(), 0u);

  const JsonValue describe = profiler.DescribeJson();
  EXPECT_TRUE(describe.Find("running")->AsBool());
  EXPECT_EQ(describe.Find("sample_period_bytes")->AsInt(), 128 * 1024);
  EXPECT_GE(describe.Find("samples")->AsInt(), 1);
  EXPECT_GE(describe.Find("sampled_live_bytes")->AsInt(),
            static_cast<int64_t>(block.size()));
  EXPECT_GE(describe.Find("sampled_alloc_bytes")->AsInt(),
            describe.Find("sampled_live_bytes")->AsInt());

  ASSERT_TRUE(profiler.Stop().ok());
  EXPECT_FALSE(profiler.DescribeJson().Find("running")->AsBool());
}

TEST_F(HeapProfilerTest, FoldedAllocKeepsFreedAllocations) {
  HeapProfiler& profiler = HeapProfiler::Default();
  HeapProfiler::Options options;
  options.sample_period_bytes = 64 * 1024;
  ASSERT_TRUE(profiler.Start(options).ok());

  { std::vector<double> transient((16u << 20) / sizeof(double)); }
  ASSERT_TRUE(profiler.Stop().ok());

  uint64_t live_total = 0;
  uint64_t alloc_total = 0;
  FoldedBytesMatching(profiler.FoldedLive(), {}, &live_total);
  FoldedBytesMatching(profiler.FoldedAlloc(), {}, &alloc_total);
  // The 16 MB transient is gone from the live profile but stays in the
  // cumulative one — the "who allocated the most" question.
  EXPECT_GE(alloc_total, live_total + (16u << 20) - (1u << 20));
}

}  // namespace
}  // namespace obs
}  // namespace inf2vec
