#include "action/action_log.h"

#include <set>

#include <gtest/gtest.h>

namespace inf2vec {
namespace {

DiffusionEpisode MakeEpisode(ItemId item,
                             std::vector<std::pair<UserId, Timestamp>> rows) {
  DiffusionEpisode e(item);
  for (const auto& [u, t] : rows) e.Add(u, t);
  EXPECT_TRUE(e.Finalize().ok());
  return e;
}

TEST(DiffusionEpisodeTest, FinalizeSortsByTime) {
  const DiffusionEpisode e = MakeEpisode(1, {{5, 30}, {2, 10}, {9, 20}});
  ASSERT_EQ(e.size(), 3u);
  EXPECT_EQ(e.adoptions()[0].user, 2u);
  EXPECT_EQ(e.adoptions()[1].user, 9u);
  EXPECT_EQ(e.adoptions()[2].user, 5u);
}

TEST(DiffusionEpisodeTest, FinalizeKeepsEarliestDuplicate) {
  const DiffusionEpisode e = MakeEpisode(1, {{7, 50}, {7, 10}, {3, 30}});
  ASSERT_EQ(e.size(), 2u);
  EXPECT_EQ(e.adoptions()[0].user, 7u);
  EXPECT_EQ(e.adoptions()[0].time, 10);
  EXPECT_EQ(e.adoptions()[1].user, 3u);
}

TEST(DiffusionEpisodeTest, StableOrderForTies) {
  const DiffusionEpisode e = MakeEpisode(1, {{1, 10}, {2, 10}, {3, 10}});
  ASSERT_EQ(e.size(), 3u);
  EXPECT_EQ(e.adoptions()[0].user, 1u);
  EXPECT_EQ(e.adoptions()[2].user, 3u);
}

TEST(DiffusionEpisodeTest, ContainsChecksUsers) {
  const DiffusionEpisode e = MakeEpisode(1, {{4, 1}, {8, 2}});
  EXPECT_TRUE(e.Contains(4));
  EXPECT_TRUE(e.Contains(8));
  EXPECT_FALSE(e.Contains(5));
}

TEST(ActionLogTest, CountsActionsAndUsers) {
  ActionLog log;
  log.AddEpisode(MakeEpisode(0, {{1, 1}, {2, 2}}));
  log.AddEpisode(MakeEpisode(1, {{2, 1}, {3, 2}, {4, 3}}));
  EXPECT_EQ(log.num_episodes(), 2u);
  EXPECT_EQ(log.num_actions(), 5u);
  EXPECT_EQ(log.NumActiveUsers(10), 4u);

  const std::vector<uint64_t> counts = log.UserActionCounts(10);
  EXPECT_EQ(counts[2], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[0], 0u);
}

TEST(SplitLogTest, FractionsRespected) {
  ActionLog log;
  for (ItemId i = 0; i < 100; ++i) {
    log.AddEpisode(MakeEpisode(i, {{i % 10, 1}, {(i + 1) % 10, 2}}));
  }
  Rng rng(1);
  const LogSplit split = SplitLog(log, 0.8, 0.1, rng);
  EXPECT_EQ(split.train.num_episodes(), 80u);
  EXPECT_EQ(split.tune.num_episodes(), 10u);
  EXPECT_EQ(split.test.num_episodes(), 10u);
}

TEST(SplitLogTest, PartitionIsCompleteAndDisjoint) {
  ActionLog log;
  for (ItemId i = 0; i < 37; ++i) {
    log.AddEpisode(MakeEpisode(i, {{1, 1}, {2, 2}}));
  }
  Rng rng(2);
  const LogSplit split = SplitLog(log, 0.6, 0.2, rng);
  std::set<ItemId> items;
  for (const auto& e : split.train.episodes()) items.insert(e.item());
  for (const auto& e : split.tune.episodes()) items.insert(e.item());
  for (const auto& e : split.test.episodes()) items.insert(e.item());
  EXPECT_EQ(items.size(), 37u);
  EXPECT_EQ(split.train.num_episodes() + split.tune.num_episodes() +
                split.test.num_episodes(),
            37u);
}

TEST(SplitLogTest, DeterministicGivenSeed) {
  ActionLog log;
  for (ItemId i = 0; i < 20; ++i) {
    log.AddEpisode(MakeEpisode(i, {{1, 1}, {2, 2}}));
  }
  Rng rng1(5);
  Rng rng2(5);
  const LogSplit a = SplitLog(log, 0.5, 0.25, rng1);
  const LogSplit b = SplitLog(log, 0.5, 0.25, rng2);
  ASSERT_EQ(a.test.num_episodes(), b.test.num_episodes());
  for (size_t i = 0; i < a.test.num_episodes(); ++i) {
    EXPECT_EQ(a.test.episodes()[i].item(), b.test.episodes()[i].item());
  }
}

TEST(SplitLogTest, ZeroTuneFraction) {
  ActionLog log;
  for (ItemId i = 0; i < 10; ++i) {
    log.AddEpisode(MakeEpisode(i, {{1, 1}, {2, 2}}));
  }
  Rng rng(3);
  const LogSplit split = SplitLog(log, 0.8, 0.0, rng);
  EXPECT_EQ(split.train.num_episodes(), 8u);
  EXPECT_EQ(split.tune.num_episodes(), 0u);
  EXPECT_EQ(split.test.num_episodes(), 2u);
}

}  // namespace
}  // namespace inf2vec
