#include "eval/activation_task.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace inf2vec {
namespace {

/// Oracle that knows the true episode membership it was given.
class OracleModel : public InfluenceModel {
 public:
  explicit OracleModel(std::set<UserId> positives, bool inverted = false)
      : positives_(std::move(positives)), inverted_(inverted) {}

  std::string name() const override { return "Oracle"; }
  double ScoreActivation(UserId v,
                         const std::vector<UserId>&) const override {
    const double s = positives_.contains(v) ? 1.0 : 0.0;
    return inverted_ ? -s : s;
  }
  std::vector<double> ScoreDiffusion(const std::vector<UserId>&,
                                     Rng&) const override {
    return {};
  }

 private:
  std::set<UserId> positives_;
  bool inverted_;
};

SocialGraph StarGraph() {
  // 0 -> {1, 2, 3, 4}.
  GraphBuilder builder(5);
  for (UserId v = 1; v < 5; ++v) builder.AddEdge(0, v);
  return std::move(builder.Build()).value();
}

DiffusionEpisode StarEpisode() {
  // 0 adopts, then 1 and 2 follow; 3, 4 exposed but never adopt.
  DiffusionEpisode e(0);
  e.Add(0, 1);
  e.Add(1, 2);
  e.Add(2, 3);
  EXPECT_TRUE(e.Finalize().ok());
  return e;
}

TEST(BuildActivationCasesTest, PositivesAndNegativesIdentified) {
  const SocialGraph g = StarGraph();
  const std::vector<ActivationCase> cases =
      BuildActivationCases(g, StarEpisode());
  // Positives: 1 and 2 (influencer 0). Negatives: 3 and 4 (exposed).
  // User 0 has no earlier-adopting friends: not a candidate.
  ASSERT_EQ(cases.size(), 4u);
  int positives = 0;
  for (const ActivationCase& c : cases) {
    EXPECT_NE(c.candidate, 0u);
    EXPECT_EQ(c.influencers, std::vector<UserId>{0});
    positives += c.activated ? 1 : 0;
  }
  EXPECT_EQ(positives, 2);
}

TEST(BuildActivationCasesTest, InfluencersChronological) {
  // 1 -> 3 and 2 -> 3; both adopt before 3.
  GraphBuilder builder(4);
  builder.AddEdge(1, 3);
  builder.AddEdge(2, 3);
  const SocialGraph g = std::move(builder.Build()).value();
  DiffusionEpisode e(0);
  e.Add(2, 1);  // 2 first.
  e.Add(1, 5);
  e.Add(3, 9);
  ASSERT_TRUE(e.Finalize().ok());
  const std::vector<ActivationCase> cases = BuildActivationCases(g, e);
  const auto it = std::find_if(cases.begin(), cases.end(), [](const auto& c) {
    return c.candidate == 3;
  });
  ASSERT_NE(it, cases.end());
  EXPECT_EQ(it->influencers, (std::vector<UserId>{2, 1}));
  EXPECT_TRUE(it->activated);
}

TEST(BuildActivationCasesTest, AdopterWithOnlyLaterFriendsExcluded) {
  GraphBuilder builder(2);
  builder.AddEdge(0, 1);
  const SocialGraph g = std::move(builder.Build()).value();
  DiffusionEpisode e(0);
  e.Add(1, 1);  // 1 adopts BEFORE its only in-neighbor 0.
  e.Add(0, 2);
  ASSERT_TRUE(e.Finalize().ok());
  const std::vector<ActivationCase> cases = BuildActivationCases(g, e);
  for (const ActivationCase& c : cases) EXPECT_NE(c.candidate, 1u);
}

TEST(EvaluateActivationTest, OracleGetsPerfectAuc) {
  const SocialGraph g = StarGraph();
  ActionLog test;
  test.AddEpisode(StarEpisode());
  const OracleModel oracle({1, 2});
  const RankingMetrics m = EvaluateActivation(oracle, g, test);
  EXPECT_EQ(m.num_queries, 1u);
  EXPECT_DOUBLE_EQ(m.auc, 1.0);
  EXPECT_DOUBLE_EQ(m.map, 1.0);
}

TEST(EvaluateActivationTest, AntiOracleGetsZeroAuc) {
  const SocialGraph g = StarGraph();
  ActionLog test;
  test.AddEpisode(StarEpisode());
  const OracleModel anti({1, 2}, /*inverted=*/true);
  const RankingMetrics m = EvaluateActivation(anti, g, test);
  EXPECT_DOUBLE_EQ(m.auc, 0.0);
}

TEST(EvaluateActivationPerEpisodeTest, MeanMatchesAggregateEvaluation) {
  const SocialGraph g = StarGraph();
  ActionLog test;
  test.AddEpisode(StarEpisode());
  {
    DiffusionEpisode second(1);
    second.Add(0, 1);
    second.Add(3, 2);
    ASSERT_TRUE(second.Finalize().ok());
    test.AddEpisode(std::move(second));
  }
  const OracleModel oracle({1, 2, 3});
  const RankingMetrics aggregate = EvaluateActivation(oracle, g, test);
  const std::vector<RankingMetrics> per_episode =
      EvaluateActivationPerEpisode(oracle, g, test);
  ASSERT_EQ(per_episode.size(), aggregate.num_queries);
  double auc_mean = 0.0;
  double map_mean = 0.0;
  for (const RankingMetrics& m : per_episode) {
    auc_mean += m.auc;
    map_mean += m.map;
  }
  auc_mean /= per_episode.size();
  map_mean /= per_episode.size();
  EXPECT_NEAR(auc_mean, aggregate.auc, 1e-12);
  EXPECT_NEAR(map_mean, aggregate.map, 1e-12);
}

TEST(EvaluateActivationPerEpisodeTest, AlignedAcrossModels) {
  // Episode usability must not depend on the model, so two models yield
  // vectors of identical length (the pairing the Wilcoxon test needs).
  const SocialGraph g = StarGraph();
  ActionLog test;
  test.AddEpisode(StarEpisode());
  const OracleModel a({1, 2});
  const OracleModel b({3, 4});
  EXPECT_EQ(EvaluateActivationPerEpisode(a, g, test).size(),
            EvaluateActivationPerEpisode(b, g, test).size());
}

TEST(EvaluateActivationTest, EpisodesWithoutCasesSkipped) {
  const SocialGraph g = StarGraph();
  ActionLog test;
  DiffusionEpisode lonely(1);
  lonely.Add(3, 1);  // No in-neighbors adopt; 3's followers don't exist.
  ASSERT_TRUE(lonely.Finalize().ok());
  test.AddEpisode(std::move(lonely));
  const OracleModel oracle({1});
  const RankingMetrics m = EvaluateActivation(oracle, g, test);
  EXPECT_EQ(m.num_queries, 0u);
}

}  // namespace
}  // namespace inf2vec
