// Metrics-snapshotter tests: the background thread turns a registry into a
// JSONL time series with monotone seq/uptime/counters, per-line deltas, and
// a guaranteed final line on Stop() even for runs shorter than the
// interval.

#include "obs/snapshotter.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace inf2vec {
namespace obs {
namespace {

std::string TempPath(const std::string& stem) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir ? dir : "/tmp") + "/" + stem;
}

std::vector<JsonValue> ReadLines(const std::string& path) {
  std::ifstream in(path);
  std::vector<JsonValue> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    Result<JsonValue> parsed = ParseJson(line);
    EXPECT_TRUE(parsed.ok()) << "bad JSONL line: " << line;
    if (parsed.ok()) lines.push_back(std::move(parsed.value()));
  }
  return lines;
}

TEST(MetricsSnapshotterTest, WritesFinalLineOnImmediateStop) {
  const std::string path = TempPath("snap_immediate.jsonl");
  MetricsRegistry registry;
  registry.GetCounter("fast.count")->Increment(3);

  MetricsSnapshotter snapshotter({path, /*interval_ms=*/60000}, &registry);
  ASSERT_TRUE(snapshotter.Start().ok());
  snapshotter.Stop();

  // A 60s interval never fires, but Stop() still flushes one line.
  const std::vector<JsonValue> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(snapshotter.lines_written(), 1u);
  EXPECT_EQ(lines[0].Find("schema_version")->AsInt(), 1);
  EXPECT_EQ(lines[0].Find("seq")->AsInt(), 0);
  EXPECT_EQ(lines[0].Find("counters")->Find("fast.count")->AsInt(), 3);
  std::remove(path.c_str());
}

TEST(MetricsSnapshotterTest, SeriesIsMonotoneWithCorrectDeltas) {
  const std::string path = TempPath("snap_series.jsonl");
  MetricsRegistry registry;
  Counter* pairs = registry.GetCounter("sgd.pairs_trained");
  Gauge* lr = registry.GetGauge("train.learning_rate");

  MetricsSnapshotter snapshotter({path, /*interval_ms=*/10}, &registry);
  ASSERT_TRUE(snapshotter.Start().ok());
  for (int i = 0; i < 5; ++i) {
    pairs->Increment(100);
    lr->Set(0.025 - 0.001 * i);
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
  }
  snapshotter.Stop();
  snapshotter.Stop();  // Idempotent.
  EXPECT_FALSE(snapshotter.running());

  const std::vector<JsonValue> lines = ReadLines(path);
  ASSERT_GE(lines.size(), 2u) << "10ms interval over ~75ms must tick";
  EXPECT_EQ(snapshotter.lines_written(), lines.size());

  int64_t previous_uptime = -1;
  int64_t previous_count = 0;
  int64_t delta_sum = 0;
  for (size_t i = 0; i < lines.size(); ++i) {
    const JsonValue& line = lines[i];
    EXPECT_EQ(line.Find("schema_version")->AsInt(), 1);
    EXPECT_EQ(line.Find("seq")->AsInt(), static_cast<int64_t>(i));
    const int64_t uptime = line.Find("uptime_ms")->AsInt();
    EXPECT_GE(uptime, previous_uptime);
    previous_uptime = uptime;

    const int64_t count =
        line.Find("counters")->Find("sgd.pairs_trained")->AsInt();
    EXPECT_GE(count, previous_count) << "cumulative counter went backwards";
    const int64_t delta =
        line.Find("deltas")->Find("sgd.pairs_trained")->AsInt();
    EXPECT_EQ(delta, count - previous_count)
        << "delta must equal the cumulative step at seq " << i;
    previous_count = count;
    delta_sum += delta;
  }
  // Deltas telescope back to the final cumulative value.
  EXPECT_EQ(delta_sum, previous_count);
  EXPECT_EQ(previous_count, 500);
  // Gauges are last-write-wins; the final line carries the final set.
  EXPECT_NEAR(lines.back().Find("gauges")->Find("train.learning_rate")
                  ->AsDouble(),
              0.021, 1e-12);
  std::remove(path.c_str());
}

TEST(MetricsSnapshotterTest, StartTruncatesPreviousSeries) {
  const std::string path = TempPath("snap_truncate.jsonl");
  MetricsRegistry registry;
  {
    MetricsSnapshotter first({path, 60000}, &registry);
    ASSERT_TRUE(first.Start().ok());
  }  // Destructor stops and writes the final line.
  {
    MetricsSnapshotter second({path, 60000}, &registry);
    ASSERT_TRUE(second.Start().ok());
    second.Stop();
  }
  // The second run starts its own series at seq 0 in a truncated file.
  const std::vector<JsonValue> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].Find("seq")->AsInt(), 0);
  std::remove(path.c_str());
}

TEST(MetricsSnapshotterTest, StartFailsOnUnwritablePath) {
  MetricsRegistry registry;
  MetricsSnapshotter snapshotter(
      {"/no-such-directory/nested/snap.jsonl", 1000}, &registry);
  EXPECT_FALSE(snapshotter.Start().ok());
  EXPECT_FALSE(snapshotter.running());
  snapshotter.Stop();  // Safe on a never-started snapshotter.
}

}  // namespace
}  // namespace obs
}  // namespace inf2vec
