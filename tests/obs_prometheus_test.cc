// Prometheus exposition tests: name sanitization onto the metric-name
// grammar, counter _total convention (TYPE line and sample line must share
// the suffixed name), gauge round-trippable formatting, and histogram
// bucket rows that are cumulative and monotone with a trailing +Inf/_sum/
// _count trio.

#include "obs/prometheus.h"

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "obs/metrics.h"

namespace inf2vec {
namespace obs {
namespace {

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

TEST(PrometheusNameTest, MapsDotsAndPrefixes) {
  EXPECT_EQ(PrometheusName("sgd.pairs_trained"),
            "inf2vec_sgd_pairs_trained");
  EXPECT_EQ(PrometheusName("threadpool.shard_wait_us"),
            "inf2vec_threadpool_shard_wait_us");
}

TEST(PrometheusNameTest, SanitizesInvalidCharacters) {
  EXPECT_EQ(PrometheusName("a-b c/d"), "inf2vec_a_b_c_d");
  EXPECT_EQ(PrometheusName("weird!@#"), "inf2vec_weird___");
  // Leading digits are fine behind the inf2vec_ prefix; colons survive.
  EXPECT_EQ(PrometheusName("0day:x"), "inf2vec_0day:x");
}

TEST(PrometheusRenderTest, CounterTypeLineMatchesSampleName) {
  MetricsRegistry registry;
  EnableMetrics(true);
  registry.GetCounter("sgd.pairs_trained")->Increment(123);
  const std::string text = RenderPrometheus(registry.Scrape());
  EnableMetrics(false);

  EXPECT_TRUE(
      Contains(text, "# TYPE inf2vec_sgd_pairs_trained_total counter\n"))
      << text;
  EXPECT_TRUE(Contains(text, "\ninf2vec_sgd_pairs_trained_total 123\n") ||
              text.rfind("inf2vec_sgd_pairs_trained_total 123\n") == 0 ||
              Contains(text, "counter\ninf2vec_sgd_pairs_trained_total 123"))
      << text;
}

TEST(PrometheusRenderTest, GaugeRendersRoundTrippableValue) {
  MetricsRegistry registry;
  registry.GetGauge("train.learning_rate")->Set(0.025);
  const std::string text = RenderPrometheus(registry.Scrape());
  EXPECT_TRUE(Contains(text, "# TYPE inf2vec_train_learning_rate gauge\n"))
      << text;
  EXPECT_TRUE(Contains(text, "inf2vec_train_learning_rate 0.025")) << text;
}

TEST(PrometheusRenderTest, HistogramBucketsAreCumulativeAndMonotone) {
  MetricsRegistry registry;
  EnableMetrics(true);
  HistogramMetric* h =
      registry.GetHistogram("rpc.latency_us", {10, 100, 1000});
  h->Record(5);     // -> bucket 0 (le 10 region, keyed by lower boundary).
  h->Record(50);    // -> bucket 10.
  h->Record(50);    // -> bucket 10.
  h->Record(5000);  // -> bucket 1000.
  EnableMetrics(false);

  const std::string text = RenderPrometheus(registry.Scrape());
  EXPECT_TRUE(Contains(text, "# TYPE inf2vec_rpc_latency_us histogram\n"))
      << text;
  EXPECT_TRUE(Contains(text, "inf2vec_rpc_latency_us_bucket{le=\"+Inf\"} 4"))
      << text;
  EXPECT_TRUE(Contains(text, "inf2vec_rpc_latency_us_count 4")) << text;

  // Walk the bucket rows in order: cumulative counts never decrease and
  // end at total_count.
  std::istringstream lines(text);
  std::string line;
  uint64_t previous = 0;
  uint64_t last_seen = 0;
  int bucket_rows = 0;
  while (std::getline(lines, line)) {
    const std::string prefix = "inf2vec_rpc_latency_us_bucket{le=";
    if (line.rfind(prefix, 0) != 0) continue;
    ++bucket_rows;
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const uint64_t value = std::stoull(line.substr(space + 1));
    EXPECT_GE(value, previous) << "bucket counts must be cumulative: "
                               << text;
    previous = value;
    last_seen = value;
  }
  EXPECT_GE(bucket_rows, 2) << text;
  EXPECT_EQ(last_seen, 4u) << text;
}

TEST(PrometheusRenderTest, DeterministicForEqualSnapshots) {
  MetricsRegistry registry;
  EnableMetrics(true);
  registry.GetCounter("b.second")->Increment(2);
  registry.GetCounter("a.first")->Increment(1);
  registry.GetGauge("c.third")->Set(3.5);
  EnableMetrics(false);

  const std::string once = RenderPrometheus(registry.Scrape());
  const std::string twice = RenderPrometheus(registry.Scrape());
  EXPECT_EQ(once, twice);
  // Name-sorted: a.first renders before b.second.
  EXPECT_LT(once.find("inf2vec_a_first_total"),
            once.find("inf2vec_b_second_total"));
}

TEST(PrometheusRenderTest, EmptySnapshotRendersEmpty) {
  MetricsRegistry registry;
  EXPECT_EQ(RenderPrometheus(registry.Scrape()), "");
}

}  // namespace
}  // namespace obs
}  // namespace inf2vec
