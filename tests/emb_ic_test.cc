#include "baselines/emb_ic.h"

#include <cmath>

#include <gtest/gtest.h>

namespace inf2vec {
namespace {

DiffusionEpisode Episode(ItemId item,
                         std::vector<std::pair<UserId, Timestamp>> rows) {
  DiffusionEpisode e(item);
  for (const auto& [u, t] : rows) e.Add(u, t);
  EXPECT_TRUE(e.Finalize().ok());
  return e;
}

/// Two-edge graph where edge (0,1) always succeeds and edge (0,2) always
/// fails across many episodes.
struct Fixture {
  Fixture() {
    GraphBuilder builder(3);
    builder.AddEdge(0, 1);
    builder.AddEdge(0, 2);
    graph = std::move(builder.Build()).value();
    for (ItemId i = 0; i < 20; ++i) {
      log.AddEpisode(Episode(i, {{0, 1}, {1, 2}}));  // 1 follows, 2 never.
    }
  }
  SocialGraph graph;
  ActionLog log;
};

TEST(EmbIcTrainerTest, LearnsToSeparateGoodAndBadEdges) {
  Fixture f;
  EmbIcOptions options;
  options.dim = 8;
  options.em_iterations = 25;
  options.learning_rate = 0.2;
  EmbIcTrainer trainer(f.graph, f.log, options);
  for (uint32_t i = 0; i < options.em_iterations; ++i) {
    trainer.RunEmIteration();
  }
  const double p_good =
      trainer.EdgeProbability(static_cast<uint64_t>(f.graph.EdgeId(0, 1)));
  const double p_bad =
      trainer.EdgeProbability(static_cast<uint64_t>(f.graph.EdgeId(0, 2)));
  EXPECT_GT(p_good, p_bad + 0.2)
      << "good=" << p_good << " bad=" << p_bad;
}

TEST(EmbIcTrainerTest, LikelihoodTrendsUpward) {
  Fixture f;
  EmbIcOptions options;
  options.dim = 8;
  options.learning_rate = 0.1;
  EmbIcTrainer trainer(f.graph, f.log, options);
  const double first = trainer.RunEmIteration();
  double last = first;
  for (int i = 0; i < 15; ++i) last = trainer.RunEmIteration();
  EXPECT_GT(last, first);
}

TEST(EmbIcTrainerTest, MaterializedProbabilitiesAreValid) {
  Fixture f;
  EmbIcOptions options;
  options.dim = 4;
  EmbIcTrainer trainer(f.graph, f.log, options);
  trainer.RunEmIteration();
  const EdgeProbabilities probs = trainer.MaterializeProbabilities();
  ASSERT_EQ(probs.size(), f.graph.num_edges());
  for (uint64_t e = 0; e < probs.size(); ++e) {
    EXPECT_GT(probs.Get(e), 0.0);
    EXPECT_LT(probs.Get(e), 1.0);
  }
}

TEST(EmbIcModelTest, TrainRejectsBadInput) {
  Fixture f;
  ActionLog empty;
  EmbIcOptions options;
  EXPECT_FALSE(EmbIcModel::Train(f.graph, empty, options).ok());
  options.dim = 0;
  EXPECT_FALSE(EmbIcModel::Train(f.graph, f.log, options).ok());
}

TEST(EmbIcModelTest, ScoresThroughIcSemantics) {
  Fixture f;
  EmbIcOptions options;
  options.dim = 8;
  options.em_iterations = 20;
  options.learning_rate = 0.2;
  options.mc_simulations = 200;
  auto model = EmbIcModel::Train(f.graph, f.log, options);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model.value().name(), "Emb-IC");

  // Activation: user 1 (always influenced) must outscore user 2 (never).
  const double s1 = model.value().ScoreActivation(1, {0});
  const double s2 = model.value().ScoreActivation(2, {0});
  EXPECT_GT(s1, s2);

  // Diffusion scores live in [0, 1] and seeds are 1.
  Rng rng(1);
  const std::vector<double> scores = model.value().ScoreDiffusion({0}, rng);
  EXPECT_DOUBLE_EQ(scores[0], 1.0);
  for (double s : scores) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(NaiveEmbIcReplicaTest, CountsCoOccurrenceTrialTerms) {
  // One episode of 3 adopters: positives = 3 ordered pairs; failures are
  // sampled (3 draws per adopter, only non-adopters kept).
  ActionLog log;
  log.AddEpisode(Episode(0, {{0, 1}, {1, 2}, {2, 3}}));
  EmbIcOptions options;
  options.dim = 4;
  const NaiveEmbIcReplica replica(50, log, options);
  EXPECT_GE(replica.num_trial_terms(), 3u);
  EXPECT_LE(replica.num_trial_terms(), 3u + 9u);
}

TEST(NaiveEmbIcReplicaTest, IterationsRunAndLikelihoodIsFinite) {
  Fixture f;
  EmbIcOptions options;
  options.dim = 6;
  options.learning_rate = 0.05;
  NaiveEmbIcReplica replica(f.graph.num_users(), f.log, options);
  double ll = 0.0;
  for (int i = 0; i < 3; ++i) {
    ll = replica.RunEmIteration();
    EXPECT_TRUE(std::isfinite(ll));
  }
  EXPECT_LT(ll, 0.0);  // Log-likelihood of probabilities is negative.
}

TEST(EmbIcModelTest, ExposesEmbeddingsForVisualization) {
  Fixture f;
  EmbIcOptions options;
  options.dim = 6;
  options.em_iterations = 2;
  auto model = EmbIcModel::Train(f.graph, f.log, options);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model.value().embeddings().dim(), 6u);
  EXPECT_EQ(model.value().embeddings().num_users(), 3u);
}

}  // namespace
}  // namespace inf2vec
