#include "embedding/negative_sampler.h"

#include <vector>

#include <gtest/gtest.h>

namespace inf2vec {
namespace {

TEST(NegativeSamplerTest, CreateRejectsZeroUsers) {
  EXPECT_FALSE(
      NegativeSampler::Create(NegativeSamplerKind::kUniform, 0, {}).ok());
}

TEST(NegativeSamplerTest, UnigramRequiresMatchingFrequencyVector) {
  EXPECT_FALSE(NegativeSampler::Create(NegativeSamplerKind::kUnigram075, 5,
                                       {1, 2, 3})
                   .ok());
}

TEST(NegativeSamplerTest, SampleAvoidsExclusions) {
  const NegativeSampler sampler = NegativeSampler::CreateUniform(5);
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    const UserId w = sampler.Sample(rng, 1, 3);
    EXPECT_NE(w, 1u);
    EXPECT_NE(w, 3u);
    EXPECT_LT(w, 5u);
  }
}

TEST(NegativeSamplerTest, SampleManyProducesCount) {
  const NegativeSampler sampler = NegativeSampler::CreateUniform(10);
  Rng rng(2);
  std::vector<UserId> out;
  sampler.SampleMany(rng, 0, 1, 7, &out);
  EXPECT_EQ(out.size(), 7u);
  sampler.SampleMany(rng, 0, 1, 0, &out);
  EXPECT_TRUE(out.empty());
}

TEST(NegativeSamplerTest, UniformCoversAllUsers) {
  const NegativeSampler sampler = NegativeSampler::CreateUniform(6);
  Rng rng(3);
  std::vector<int> counts(6, 0);
  for (int i = 0; i < 12000; ++i) ++counts[sampler.Sample(rng, 6, 6)];
  for (int c : counts) EXPECT_NEAR(c, 2000, 300);
}

TEST(NegativeSamplerTest, UnigramPrefersFrequentTargets) {
  // User 0 appears 100x as a target, user 1 never.
  auto sampler = NegativeSampler::Create(NegativeSamplerKind::kUnigram075, 3,
                                         {100, 0, 0});
  ASSERT_TRUE(sampler.ok());
  Rng rng(4);
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 10000; ++i) {
    ++counts[sampler.value().Sample(rng, 3, 3)];
  }
  // weights: 101^0.75 ~ 31.9 vs 1 vs 1 -> user 0 gets ~94%.
  EXPECT_GT(counts[0], 8800);
  EXPECT_GT(counts[1], 50);  // +1 smoothing keeps everyone sampleable.
  EXPECT_GT(counts[2], 50);
}

TEST(NegativeSamplerTest, UnigramFlatFrequenciesStayUniform) {
  auto sampler = NegativeSampler::Create(NegativeSamplerKind::kUnigram075, 4,
                                         {5, 5, 5, 5});
  ASSERT_TRUE(sampler.ok());
  Rng rng(5);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 8000; ++i) ++counts[sampler.value().Sample(rng, 4, 4)];
  for (int c : counts) EXPECT_NEAR(c, 2000, 300);
}

TEST(NegativeSamplerTest, DegenerateUniverseStillReturns) {
  // Two users, both excluded: the bounded retry must still terminate.
  const NegativeSampler sampler = NegativeSampler::CreateUniform(2);
  Rng rng(6);
  const UserId w = sampler.Sample(rng, 0, 1);
  EXPECT_LT(w, 2u);
}

}  // namespace
}  // namespace inf2vec
