// Failure-injection tests: corrupted files, hostile inputs, and degenerate
// data shapes must produce Status errors (or well-defined no-ops) — never
// crashes or silent garbage.

#include <unistd.h>

#include <filesystem>

#include <gtest/gtest.h>

#include "action/action_log_io.h"
#include "baselines/ic_baseline.h"
#include "diffusion/influence_pairs.h"
#include "diffusion/propagation_network.h"
#include "embedding/model_io.h"
#include "eval/activation_task.h"
#include "graph/graph_io.h"
#include "util/io.h"
#include "util/rng.h"

namespace inf2vec {
namespace {

class FailureInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("inf2vec_fail_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(FailureInjectionTest, TruncatedModelAtEveryBoundaryFailsCleanly) {
  EmbeddingStore store(6, 3);
  Rng rng(1);
  store.InitUniform(-1, 1, rng);
  ASSERT_TRUE(SaveEmbeddings(store, Path("m.bin")).ok());
  std::string blob;
  ASSERT_TRUE(ReadFile(Path("m.bin"), &blob).ok());

  // Truncate at a spread of byte offsets including header boundaries.
  for (size_t cut : {0ul, 4ul, 8ul, 15ul, 16ul, 17ul, blob.size() / 2,
                     blob.size() - 1}) {
    ASSERT_TRUE(WriteFile(Path("cut.bin"), blob.substr(0, cut)).ok());
    auto loaded = LoadEmbeddings(Path("cut.bin"));
    EXPECT_FALSE(loaded.ok()) << "cut at " << cut << " loaded silently";
  }
}

TEST_F(FailureInjectionTest, HeaderCorruptionDetected) {
  EmbeddingStore store(4, 2);
  ASSERT_TRUE(SaveEmbeddings(store, Path("m.bin")).ok());
  std::string blob;
  ASSERT_TRUE(ReadFile(Path("m.bin"), &blob).ok());
  // Claim absurd dimensions: size check must catch the mismatch.
  std::string corrupt = blob;
  corrupt[8] = static_cast<char>(0xff);  // num_users low byte.
  ASSERT_TRUE(WriteFile(Path("c.bin"), corrupt).ok());
  EXPECT_FALSE(LoadEmbeddings(Path("c.bin")).ok());
}

TEST_F(FailureInjectionTest, GraphLoaderRejectsHostileRows) {
  const std::vector<std::string> bad_rows = {
      "-1\t2",                     // Negative id.
      "1\t99999999999999999999",   // Overflow.
      "1.5\t2",                    // Non-integer.
      "justonefield",              // Missing column.
  };
  for (const std::string& row : bad_rows) {
    ASSERT_TRUE(WriteLines(Path("g.tsv"), {row}).ok());
    EXPECT_FALSE(LoadEdgeListAutoSize(Path("g.tsv")).ok())
        << "accepted: " << row;
  }
  // Whitespace-only lines are blank lines: skipped, not an error.
  ASSERT_TRUE(WriteLines(Path("g.tsv"), {"\t", "0\t1"}).ok());
  auto ok = LoadEdgeListAutoSize(Path("g.tsv"));
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value().num_edges(), 1u);
}

TEST_F(FailureInjectionTest, ActionLogLoaderRejectsHostileRows) {
  for (const std::string& row :
       {std::string("1\t2"), std::string("a\t0\t1"),
        std::string("1\t0\tnotatime"), std::string("-5\t0\t1")}) {
    ASSERT_TRUE(WriteLines(Path("a.tsv"), {row}).ok());
    EXPECT_FALSE(LoadActionLog(Path("a.tsv")).ok()) << "accepted: " << row;
  }
}

TEST_F(FailureInjectionTest, EpisodeWithIdenticalTimesYieldsNoPairs) {
  GraphBuilder builder(4);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  const SocialGraph g = std::move(builder.Build()).value();
  DiffusionEpisode e(0);
  for (UserId u = 0; u < 4; ++u) e.Add(u, 42);
  ASSERT_TRUE(e.Finalize().ok());
  EXPECT_TRUE(ExtractInfluencePairs(g, e).empty());
  const PropagationNetwork net(g, e);
  EXPECT_EQ(net.num_edges(), 0u);
  EXPECT_TRUE(net.IsAcyclic());
}

TEST_F(FailureInjectionTest, EvaluationOnForeignUsersIsSafe) {
  // Action log mentions users beyond the graph's id space: pair
  // extraction and evaluation must skip them rather than index OOB.
  GraphBuilder builder(3);
  builder.AddEdge(0, 1);
  const SocialGraph g = std::move(builder.Build()).value();
  DiffusionEpisode e(0);
  e.Add(0, 1);
  e.Add(1, 2);
  e.Add(250, 3);  // Beyond num_users.
  ASSERT_TRUE(e.Finalize().ok());
  ActionLog log;
  log.AddEpisode(std::move(e));

  EXPECT_EQ(ExtractInfluencePairs(g, log.episodes()[0]).size(), 1u);
  const IcBaselineModel de = CreateDegreeModel(g, 5);
  const RankingMetrics m = EvaluateActivation(de, g, log);
  EXPECT_LE(m.auc, 1.0);
}

TEST_F(FailureInjectionTest, EmptyGraphWithEpisodesDegradesGracefully) {
  GraphBuilder builder(5);
  const SocialGraph g = std::move(builder.Build()).value();  // No edges.
  DiffusionEpisode e(0);
  e.Add(0, 1);
  e.Add(1, 2);
  ASSERT_TRUE(e.Finalize().ok());
  ActionLog log;
  log.AddEpisode(std::move(e));
  const PairFrequencyTable table(g, log);
  EXPECT_EQ(table.total_pairs(), 0u);
  const IcBaselineModel st = CreateStaticModel(g, log, 5);
  const RankingMetrics m = EvaluateActivation(st, g, log);
  EXPECT_EQ(m.num_queries, 0u);  // Nobody is exposed without edges.
}

TEST_F(FailureInjectionTest, RandomBinaryGarbageNeverLoadsAsModel) {
  Rng rng(9);
  for (int trial = 0; trial < 10; ++trial) {
    std::string garbage;
    const size_t len = 16 + rng.UniformU64(256);
    for (size_t i = 0; i < len; ++i) {
      garbage.push_back(static_cast<char>(rng.UniformU64(256)));
    }
    ASSERT_TRUE(WriteFile(Path("junk.bin"), garbage).ok());
    auto loaded = LoadEmbeddings(Path("junk.bin"));
    EXPECT_FALSE(loaded.ok());
  }
}

}  // namespace
}  // namespace inf2vec
