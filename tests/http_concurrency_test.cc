// Concurrency + wire-conformance tests for the epoll StatsServer: raw
// keep-alive sockets driving pipelining order, Connection: close,
// per-request X-Request-Id under connection reuse, bounded-admission 429
// shedding, POST body framing, and typed rejection of malformed input
// (431/400/413/501/505) — the suite the TSan build runs with >= 8
// concurrent keep-alive clients.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/http_client.h"
#include "obs/http_server.h"
#include "obs/metrics.h"
#include "obs/request_obs.h"

namespace inf2vec {
namespace obs {
namespace {

/// Keep-alive conformance harness over the shared obs::HttpClient's
/// raw-wire surface (SendRaw / ReadResponse / AtEof) — framing stays
/// hand-driven so these tests keep asserting exact wire behavior, with
/// a bounded per-operation deadline instead of blocking reads.
class ClientConn {
 public:
  explicit ClientConn(uint16_t port) : client_(port) {
    client_.Connect(kDeadlineMs);
  }

  bool ok() const { return client_.connected(); }

  bool SendRaw(const std::string& bytes) {
    return client_.SendRaw(bytes, kDeadlineMs);
  }

  using Response = HttpClientResponse;

  /// Reads exactly one Content-Length-framed response off the connection.
  /// Returns false on EOF / malformed framing.
  bool ReadResponse(Response* out) {
    return client_.ReadResponse(out, kDeadlineMs);
  }

  /// True when the peer closed (EOF) with no further response bytes.
  bool AtEof() { return client_.AtEof(); }

 private:
  static constexpr uint64_t kDeadlineMs = 10000;
  HttpClient client_;
};

std::string Get(const std::string& target, const std::string& extra = "") {
  return "GET " + target + " HTTP/1.1\r\nHost: t\r\n" + extra + "\r\n";
}

TEST(HttpKeepAliveTest, SequentialRequestsReuseOneConnection) {
  MetricsRegistry registry;
  StatsServer server(StatsServerOptions{}, &registry);
  ASSERT_TRUE(server.Start().ok());

  ClientConn conn(server.port());
  ASSERT_TRUE(conn.ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(conn.SendRaw(Get("/healthz")));
    ClientConn::Response response;
    ASSERT_TRUE(conn.ReadResponse(&response));
    EXPECT_EQ(response.status, 200);
    EXPECT_EQ(response.body, "ok\n");
    EXPECT_NE(response.headers.find("Connection: keep-alive"),
              std::string::npos);
  }
  server.Stop();
}

TEST(HttpKeepAliveTest, PipelinedResponsesPreserveRequestOrder) {
  MetricsRegistry registry;
  StatsServerOptions options;
  options.num_workers = 4;  // Out-of-order completion is possible...
  StatsServer server(options, &registry);
  // ...because the first request sleeps while the rest finish instantly.
  server.Route("GET", "/tagged", [](const HttpRequest& request) {
    const std::string tag = request.QueryOr("tag", "?");
    if (tag == "0") {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    return HttpResponse::Text(200, "tag=" + tag);
  });
  ASSERT_TRUE(server.Start().ok());

  ClientConn conn(server.port());
  ASSERT_TRUE(conn.ok());
  std::string burst;
  for (int i = 0; i < 6; ++i) burst += Get("/tagged?tag=" + std::to_string(i));
  ASSERT_TRUE(conn.SendRaw(burst));
  for (int i = 0; i < 6; ++i) {
    ClientConn::Response response;
    ASSERT_TRUE(conn.ReadResponse(&response));
    EXPECT_EQ(response.status, 200);
    EXPECT_EQ(response.body, "tag=" + std::to_string(i));
  }
  server.Stop();
}

TEST(HttpKeepAliveTest, ConnectionCloseIsHonored) {
  MetricsRegistry registry;
  StatsServer server(StatsServerOptions{}, &registry);
  ASSERT_TRUE(server.Start().ok());

  ClientConn conn(server.port());
  ASSERT_TRUE(conn.ok());
  // Two pipelined requests, the FIRST asking for close: the server must
  // answer it, close, and never process the second.
  ASSERT_TRUE(conn.SendRaw(Get("/healthz", "Connection: close\r\n") +
                           Get("/healthz")));
  ClientConn::Response response;
  ASSERT_TRUE(conn.ReadResponse(&response));
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.headers.find("Connection: close"), std::string::npos);
  EXPECT_TRUE(conn.AtEof());
  server.Stop();
}

TEST(HttpKeepAliveTest, Http10DefaultsToCloseUnlessKeepAliveRequested) {
  MetricsRegistry registry;
  StatsServer server(StatsServerOptions{}, &registry);
  ASSERT_TRUE(server.Start().ok());

  {
    ClientConn conn(server.port());
    ASSERT_TRUE(conn.SendRaw("GET /healthz HTTP/1.0\r\nHost: t\r\n\r\n"));
    ClientConn::Response response;
    ASSERT_TRUE(conn.ReadResponse(&response));
    EXPECT_EQ(response.status, 200);
    EXPECT_NE(response.headers.find("Connection: close"), std::string::npos);
    EXPECT_TRUE(conn.AtEof());
  }
  {
    ClientConn conn(server.port());
    ASSERT_TRUE(conn.SendRaw(
        "GET /healthz HTTP/1.0\r\nHost: t\r\nConnection: keep-alive\r\n\r\n"));
    ClientConn::Response response;
    ASSERT_TRUE(conn.ReadResponse(&response));
    EXPECT_EQ(response.status, 200);
    EXPECT_NE(response.headers.find("Connection: keep-alive"),
              std::string::npos);
    // Still usable.
    ASSERT_TRUE(conn.SendRaw(Get("/healthz")));
    ASSERT_TRUE(conn.ReadResponse(&response));
    EXPECT_EQ(response.status, 200);
  }
  server.Stop();
}

TEST(HttpKeepAliveTest, RequestIdStaysPerRequestAcrossConnectionReuse) {
  MetricsRegistry registry;
  RpczRegistry rpcz(&registry);
  StatsServer server(StatsServerOptions{}, &registry);
  server.SetRequestObservability({&rpcz, nullptr, nullptr});
  ASSERT_TRUE(server.Start().ok());

  ClientConn conn(server.port());
  ASSERT_TRUE(conn.ok());
  // Distinct inbound ids on one connection come back on their own
  // responses — ids are request-scoped, never connection-scoped.
  ASSERT_TRUE(conn.SendRaw(Get("/healthz", "X-Request-Id: req-a\r\n")));
  ClientConn::Response first;
  ASSERT_TRUE(conn.ReadResponse(&first));
  EXPECT_NE(first.headers.find("X-Request-Id: req-a"), std::string::npos);

  ASSERT_TRUE(conn.SendRaw(Get("/healthz", "X-Request-Id: req-b\r\n")));
  ClientConn::Response second;
  ASSERT_TRUE(conn.ReadResponse(&second));
  EXPECT_NE(second.headers.find("X-Request-Id: req-b"), std::string::npos);
  EXPECT_EQ(second.headers.find("req-a"), std::string::npos);

  // And with no inbound id, each request on the connection gets a fresh
  // generated one.
  ASSERT_TRUE(conn.SendRaw(Get("/healthz") + Get("/healthz")));
  ClientConn::Response third, fourth;
  ASSERT_TRUE(conn.ReadResponse(&third));
  ASSERT_TRUE(conn.ReadResponse(&fourth));
  const auto extract_id = [](const std::string& headers) {
    const size_t at = headers.find("X-Request-Id: ");
    EXPECT_NE(at, std::string::npos) << headers;
    const size_t end = headers.find("\r\n", at);
    return headers.substr(at + 14, end - at - 14);
  };
  EXPECT_NE(extract_id(third.headers), extract_id(fourth.headers));
  server.Stop();
}

TEST(HttpConcurrencyTest, EightConcurrentKeepAliveClientsStayCoherent) {
  MetricsRegistry registry;
  StatsServerOptions options;
  options.num_workers = 4;
  StatsServer server(options, &registry);
  std::atomic<uint64_t> handled{0};
  server.Route("GET", "/work", [&handled](const HttpRequest& request) {
    handled.fetch_add(1, std::memory_order_relaxed);
    return HttpResponse::Text(200, "w" + request.QueryOr("i", ""));
  });
  ASSERT_TRUE(server.Start().ok());

  constexpr int kClients = 8;
  constexpr int kRequestsPerClient = 50;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      ClientConn conn(server.port());
      if (!conn.ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int i = 0; i < kRequestsPerClient; ++i) {
        const std::string tag = std::to_string(c * 1000 + i);
        if (!conn.SendRaw(Get("/work?i=" + tag))) {
          failures.fetch_add(1);
          return;
        }
        ClientConn::Response response;
        if (!conn.ReadResponse(&response) || response.status != 200 ||
            response.body != "w" + tag) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(handled.load(), kClients * kRequestsPerClient);
  server.Stop();
}

TEST(HttpConcurrencyTest, AdmissionOverflowShedsWith429) {
  MetricsRegistry registry;
  StatsServerOptions options;
  options.num_workers = 2;
  options.max_inflight = 1;
  StatsServer server(options, &registry);
  std::mutex mu;
  std::condition_variable cv;
  bool entered = false, release = false;
  server.Route("GET", "/slow", [&](const HttpRequest&) {
    std::unique_lock<std::mutex> lock(mu);
    entered = true;
    cv.notify_all();
    cv.wait(lock, [&] { return release; });
    return HttpResponse::Text(200, "done");
  });
  ASSERT_TRUE(server.Start().ok());

  ClientConn blocked(server.port());
  ASSERT_TRUE(blocked.SendRaw(Get("/slow")));
  {
    // The one admission slot is held by a handler that cannot finish yet.
    std::unique_lock<std::mutex> lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5),
                            [&] { return entered; }));
  }

  // A second connection's request must shed immediately with the typed
  // envelope — no queueing behind the stuck handler.
  ClientConn shed(server.port());
  ASSERT_TRUE(shed.SendRaw(Get("/healthz")));
  ClientConn::Response shed_response;
  ASSERT_TRUE(shed.ReadResponse(&shed_response));
  EXPECT_EQ(shed_response.status, 429);
  EXPECT_NE(shed_response.body.find("\"code\":\"OVERLOADED\""),
            std::string::npos)
      << shed_response.body;
  EXPECT_NE(shed_response.headers.find("Retry-After"), std::string::npos);
  // The shed connection survives for a retry.
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  ClientConn::Response unblocked;
  ASSERT_TRUE(blocked.ReadResponse(&unblocked));
  EXPECT_EQ(unblocked.status, 200);
  ASSERT_TRUE(shed.SendRaw(Get("/healthz")));
  ClientConn::Response retried;
  ASSERT_TRUE(shed.ReadResponse(&retried));
  EXPECT_EQ(retried.status, 200);
  server.Stop();
}

TEST(HttpPostTest, BodyArrivingInFragmentsReachesHandlerIntact) {
  MetricsRegistry registry;
  StatsServer server(StatsServerOptions{}, &registry);
  server.Route("POST", "/sink", [](const HttpRequest& request) {
    return HttpResponse::Text(200, request.method + ":" + request.body);
  });
  ASSERT_TRUE(server.Start().ok());

  ClientConn conn(server.port());
  const std::string body = "hello body bytes";
  const std::string head = "POST /sink HTTP/1.1\r\nHost: t\r\nContent-Length: " +
                           std::to_string(body.size()) + "\r\n\r\n";
  // Head first, then the body in two fragments — exercises the
  // reading_body resume path across epoll wakeups.
  ASSERT_TRUE(conn.SendRaw(head));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(conn.SendRaw(body.substr(0, 5)));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(conn.SendRaw(body.substr(5)));
  ClientConn::Response response;
  ASSERT_TRUE(conn.ReadResponse(&response));
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body, "POST:" + body);
  server.Stop();
}

TEST(HttpPostTest, UnroutedMethodAnswers405WithAllow) {
  MetricsRegistry registry;
  StatsServer server(StatsServerOptions{}, &registry);
  ASSERT_TRUE(server.Start().ok());

  ClientConn conn(server.port());
  ASSERT_TRUE(conn.SendRaw(
      "POST /healthz HTTP/1.1\r\nHost: t\r\nContent-Length: 2\r\n\r\nhi"));
  ClientConn::Response response;
  ASSERT_TRUE(conn.ReadResponse(&response));
  EXPECT_EQ(response.status, 405);
  EXPECT_NE(response.headers.find("Allow: GET"), std::string::npos);
  EXPECT_NE(response.body.find("\"code\":\"METHOD_NOT_ALLOWED\""),
            std::string::npos)
      << response.body;
  server.Stop();
}

// --- Malformed-input rejection (the read-until-EOF bugfix) -------------

struct MalformedCase {
  const char* name;
  std::string raw;
  int expected_status;
  const char* expected_code;
};

TEST(HttpMalformedInputTest, TypedRejectionsInsteadOfSilentEofReads) {
  MetricsRegistry registry;
  StatsServer server(StatsServerOptions{}, &registry);
  ASSERT_TRUE(server.Start().ok());

  const std::vector<MalformedCase> cases = {
      {"garbage request line", "NONSENSE\r\n\r\n", 400, "BAD_REQUEST"},
      {"relative target", "GET healthz HTTP/1.1\r\n\r\n", 400, "BAD_REQUEST"},
      {"unsupported version", "GET / HTTP/2.0\r\n\r\n", 505,
       "HTTP_VERSION_NOT_SUPPORTED"},
      {"malformed content-length",
       "POST /x HTTP/1.1\r\nContent-Length: abc\r\n\r\n", 400, "BAD_REQUEST"},
      {"negative content-length",
       "POST /x HTTP/1.1\r\nContent-Length: -5\r\n\r\n", 400, "BAD_REQUEST"},
      {"conflicting content-lengths",
       "POST /x HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 7\r\n\r\n",
       400, "BAD_REQUEST"},
      {"oversized declared body",
       "POST /x HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n", 413,
       "BODY_TOO_LARGE"},
      {"chunked transfer",
       "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", 501,
       "NOT_IMPLEMENTED"},
  };
  for (const MalformedCase& c : cases) {
    SCOPED_TRACE(c.name);
    ClientConn conn(server.port());
    ASSERT_TRUE(conn.ok());
    ASSERT_TRUE(conn.SendRaw(c.raw));
    ClientConn::Response response;
    ASSERT_TRUE(conn.ReadResponse(&response));
    EXPECT_EQ(response.status, c.expected_status);
    EXPECT_NE(response.body.find(std::string("\"code\":\"") +
                                 c.expected_code + "\""),
              std::string::npos)
        << response.body;
    // Parse errors poison the connection: it closes after the error.
    EXPECT_TRUE(conn.AtEof());
  }
  server.Stop();
}

TEST(HttpMalformedInputTest, OversizedRequestHeadAnswers431) {
  MetricsRegistry registry;
  StatsServerOptions options;
  options.max_request_head_bytes = 512;
  StatsServer server(options, &registry);
  ASSERT_TRUE(server.Start().ok());

  // Never terminates the head; the server must 431 once the cap is
  // blown, NOT read quietly forever.
  ClientConn conn(server.port());
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(conn.SendRaw("GET /" + std::string(1024, 'a') + " HTTP/1.1\r\n"));
  ClientConn::Response response;
  ASSERT_TRUE(conn.ReadResponse(&response));
  EXPECT_EQ(response.status, 431);
  EXPECT_NE(response.body.find("\"code\":\"HEADER_TOO_LARGE\""),
            std::string::npos)
      << response.body;
  EXPECT_TRUE(conn.AtEof());

  // An oversized-but-terminated head gets the same typed answer.
  ClientConn terminated(server.port());
  ASSERT_TRUE(terminated.SendRaw("GET / HTTP/1.1\r\nX-Pad: " +
                                 std::string(1024, 'b') + "\r\n\r\n"));
  ClientConn::Response second;
  ASSERT_TRUE(terminated.ReadResponse(&second));
  EXPECT_EQ(second.status, 431);
  server.Stop();
}

}  // namespace
}  // namespace obs
}  // namespace inf2vec
