#include "core/item_clustering.h"

#include <gtest/gtest.h>

namespace inf2vec {
namespace {

DiffusionEpisode Episode(ItemId item, std::vector<UserId> users) {
  DiffusionEpisode e(item);
  Timestamp t = 0;
  for (UserId u : users) e.Add(u, ++t);
  EXPECT_TRUE(e.Finalize().ok());
  return e;
}

/// Two disjoint audiences: items 0..9 adopted by users 0-4, items 10..19
/// by users 5-9.
ActionLog TwoAudienceLog() {
  ActionLog log;
  for (ItemId i = 0; i < 10; ++i) {
    log.AddEpisode(Episode(i, {0, 1, 2, 3, 4}));
  }
  for (ItemId i = 10; i < 20; ++i) {
    log.AddEpisode(Episode(i, {5, 6, 7, 8, 9}));
  }
  return log;
}

TEST(ItemClusteringTest, FitRejectsBadInput) {
  ItemClusteringOptions options;
  ActionLog empty;
  EXPECT_FALSE(ItemClustering::Fit(empty, 10, options).ok());
  options.num_clusters = 0;
  EXPECT_FALSE(ItemClustering::Fit(TwoAudienceLog(), 10, options).ok());
}

TEST(ItemClusteringTest, SeparatesDisjointAudiences) {
  ItemClusteringOptions options;
  options.num_clusters = 2;
  auto clustering = ItemClustering::Fit(TwoAudienceLog(), 10, options);
  ASSERT_TRUE(clustering.ok());
  // All first-half episodes share a cluster; second half the other.
  const uint32_t first = clustering.value().ClusterOfEpisode(0);
  const uint32_t second = clustering.value().ClusterOfEpisode(10);
  EXPECT_NE(first, second);
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(clustering.value().ClusterOfEpisode(i), first);
  }
  for (size_t i = 10; i < 20; ++i) {
    EXPECT_EQ(clustering.value().ClusterOfEpisode(i), second);
  }
}

TEST(ItemClusteringTest, AssignAdoptersMatchesTrainingClusters) {
  ItemClusteringOptions options;
  options.num_clusters = 2;
  auto clustering = ItemClustering::Fit(TwoAudienceLog(), 10, options);
  ASSERT_TRUE(clustering.ok());
  const uint32_t first = clustering.value().ClusterOfEpisode(0);
  const uint32_t second = clustering.value().ClusterOfEpisode(10);
  EXPECT_EQ(clustering.value().AssignAdopters({0, 1, 2}), first);
  EXPECT_EQ(clustering.value().AssignAdopters({7, 8}), second);
}

TEST(ItemClusteringTest, ClampsClusterCountToEpisodes) {
  ActionLog log;
  log.AddEpisode(Episode(0, {0, 1}));
  log.AddEpisode(Episode(1, {2, 3}));
  ItemClusteringOptions options;
  options.num_clusters = 50;
  auto clustering = ItemClustering::Fit(log, 10, options);
  ASSERT_TRUE(clustering.ok());
  EXPECT_EQ(clustering.value().num_clusters(), 2u);
}

TEST(ItemClusteringTest, ClusterSizesSumToEpisodes) {
  ItemClusteringOptions options;
  options.num_clusters = 4;
  auto clustering = ItemClustering::Fit(TwoAudienceLog(), 10, options);
  ASSERT_TRUE(clustering.ok());
  uint32_t total = 0;
  for (uint32_t s : clustering.value().ClusterSizes()) total += s;
  EXPECT_EQ(total, 20u);
}

TEST(ItemClusteringTest, DeterministicGivenSeed) {
  ItemClusteringOptions options;
  options.num_clusters = 3;
  options.seed = 9;
  auto a = ItemClustering::Fit(TwoAudienceLog(), 10, options);
  auto b = ItemClustering::Fit(TwoAudienceLog(), 10, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().assignments(), b.value().assignments());
}

TEST(ItemClusteringTest, EmptyAdopterSetMapsSomewhereValid) {
  ItemClusteringOptions options;
  options.num_clusters = 2;
  auto clustering = ItemClustering::Fit(TwoAudienceLog(), 10, options);
  ASSERT_TRUE(clustering.ok());
  EXPECT_LT(clustering.value().AssignAdopters({}), 2u);
}

}  // namespace
}  // namespace inf2vec
