#include "embedding/hierarchical_softmax.h"

#include <cmath>

#include <gtest/gtest.h>

namespace inf2vec {
namespace {

TEST(HuffmanTreeTest, RejectsEmptyInput) {
  EXPECT_FALSE(HuffmanTree::Build({}).ok());
}

TEST(HuffmanTreeTest, SingleLeafHasEmptyPath) {
  auto tree = HuffmanTree::Build({7});
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree.value().num_leaves(), 1u);
  EXPECT_TRUE(tree.value().PathOf(0).empty());
}

TEST(HuffmanTreeTest, TwoLeavesShareTheRoot) {
  auto tree = HuffmanTree::Build({3, 5});
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree.value().num_internal(), 1u);
  ASSERT_EQ(tree.value().PathOf(0).size(), 1u);
  ASSERT_EQ(tree.value().PathOf(1).size(), 1u);
  // The two leaves take opposite branches of the same node.
  EXPECT_EQ(tree.value().PathOf(0)[0], tree.value().PathOf(1)[0]);
  EXPECT_NE(tree.value().CodeOf(0)[0], tree.value().CodeOf(1)[0]);
}

TEST(HuffmanTreeTest, FrequentLeavesGetShorterCodes) {
  // One dominant user and many rare ones.
  std::vector<uint64_t> freq(64, 1);
  freq[10] = 100000;
  auto tree = HuffmanTree::Build(freq);
  ASSERT_TRUE(tree.ok());
  const size_t dominant_len = tree.value().CodeOf(10).size();
  size_t max_rare = 0;
  for (UserId v = 0; v < 64; ++v) {
    if (v != 10) max_rare = std::max(max_rare, tree.value().CodeOf(v).size());
  }
  EXPECT_LT(dominant_len, max_rare);
  EXPECT_LE(dominant_len, 2u);
}

TEST(HuffmanTreeTest, CodesAreUniquePrefixFree) {
  auto tree = HuffmanTree::Build({5, 3, 8, 1, 9, 2, 7, 4});
  ASSERT_TRUE(tree.ok());
  // Prefix-freeness: the (path, code) pair of one leaf never equals the
  // prefix of another along the same internal nodes. Equivalent check:
  // all (path[0..], code[0..]) full sequences are distinct.
  std::vector<std::string> encodings;
  for (UserId v = 0; v < 8; ++v) {
    std::string enc;
    const auto& path = tree.value().PathOf(v);
    const auto& code = tree.value().CodeOf(v);
    ASSERT_EQ(path.size(), code.size());
    for (size_t i = 0; i < path.size(); ++i) {
      enc += std::to_string(path[i]) + (code[i] ? "R" : "L");
    }
    encodings.push_back(enc);
  }
  std::sort(encodings.begin(), encodings.end());
  EXPECT_EQ(std::unique(encodings.begin(), encodings.end()),
            encodings.end());
}

TEST(HuffmanTreeTest, BalancedCountsGiveLogDepth) {
  auto tree = HuffmanTree::Build(std::vector<uint64_t>(256, 10));
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree.value().MaxCodeLength(), 8u);  // Perfectly balanced.
}

class HsTrainerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store_ = std::make_unique<EmbeddingStore>(8, 4);
    Rng rng(3);
    store_->InitUniform(-0.3, 0.3, rng);
    auto tree = HuffmanTree::Build({4, 1, 9, 2, 6, 3, 5, 7});
    ASSERT_TRUE(tree.ok());
    tree_ = std::make_unique<HuffmanTree>(std::move(tree).value());
  }

  std::unique_ptr<EmbeddingStore> store_;
  std::unique_ptr<HuffmanTree> tree_;
};

TEST_F(HsTrainerTest, ProbabilitiesNormalizeExactly) {
  // HS defines a proper distribution: sum_v P(v | u) = 1.
  HierarchicalSoftmaxTrainer trainer(store_.get(), tree_.get(), 0.05);
  for (UserId u = 0; u < 8; ++u) {
    double total = 0.0;
    for (UserId v = 0; v < 8; ++v) {
      total += std::exp(trainer.LogProbability(u, v));
    }
    EXPECT_NEAR(total, 1.0, 1e-9) << "for source " << u;
  }
}

TEST_F(HsTrainerTest, TrainingRaisesTargetProbability) {
  HierarchicalSoftmaxTrainer trainer(store_.get(), tree_.get(), 0.1);
  const double before = trainer.LogProbability(0, 5);
  for (int i = 0; i < 100; ++i) trainer.TrainPair(0, 5);
  const double after = trainer.LogProbability(0, 5);
  EXPECT_GT(after, before);
  EXPECT_GT(std::exp(after), 0.8);  // Dominates after heavy training.
}

TEST_F(HsTrainerTest, TrainingStaysNormalized) {
  HierarchicalSoftmaxTrainer trainer(store_.get(), tree_.get(), 0.1);
  for (int i = 0; i < 50; ++i) {
    trainer.TrainPair(0, 5);
    trainer.TrainPair(1, 2);
  }
  double total = 0.0;
  for (UserId v = 0; v < 8; ++v) {
    total += std::exp(trainer.LogProbability(0, v));
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST_F(HsTrainerTest, TrainPairReturnsEnteringObjective) {
  HierarchicalSoftmaxTrainer trainer(store_.get(), tree_.get(), 0.0);
  const double expected = trainer.LogProbability(2, 6);
  EXPECT_NEAR(trainer.TrainPair(2, 6), expected, 1e-12);
}

TEST_F(HsTrainerTest, DifferentSourcesLearnIndependently) {
  HierarchicalSoftmaxTrainer trainer(store_.get(), tree_.get(), 0.1);
  const double other_before = trainer.LogProbability(7, 3);
  for (int i = 0; i < 30; ++i) trainer.TrainPair(0, 5);
  // Source 7 untouched directly (internal vectors move, but its own
  // source vector must be identical).
  const double other_after = trainer.LogProbability(7, 3);
  // Probabilities may shift via shared internal nodes, but must remain a
  // valid distribution.
  double total = 0.0;
  for (UserId v = 0; v < 8; ++v) {
    total += std::exp(trainer.LogProbability(7, v));
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  (void)other_before;
  (void)other_after;
}

}  // namespace
}  // namespace inf2vec
