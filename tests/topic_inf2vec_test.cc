#include "core/topic_inf2vec.h"

#include <cmath>

#include <gtest/gtest.h>

#include "eval/topic_eval.h"
#include "synth/world_generator.h"

namespace inf2vec {
namespace {

synth::World SmallWorld(uint64_t seed) {
  synth::WorldProfile profile = synth::WorldProfile::DiggLike();
  profile.num_users = 400;
  profile.num_items = 120;
  Rng rng(seed);
  auto world = synth::GenerateWorld(profile, rng);
  EXPECT_TRUE(world.ok());
  return std::move(world).value();
}

TopicInf2vecConfig FastConfig() {
  TopicInf2vecConfig config;
  config.base.dim = 12;
  config.base.epochs = 3;
  config.base.context.length = 10;
  config.clustering.num_clusters = 4;
  config.min_cluster_episodes = 5;
  return config;
}

TEST(TopicInf2vecTest, TrainRejectsBadWeight) {
  const synth::World w = SmallWorld(1);
  TopicInf2vecConfig config = FastConfig();
  config.topic_weight = 1.5;
  EXPECT_FALSE(TopicInf2vecModel::Train(w.graph, w.log, config).ok());
}

TEST(TopicInf2vecTest, TrainsGlobalAndTopicModels) {
  const synth::World w = SmallWorld(2);
  auto model = TopicInf2vecModel::Train(w.graph, w.log, FastConfig());
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  EXPECT_EQ(model.value().num_topics(), 4u);
  // At least one cluster should be big enough to get its own model.
  int trained = 0;
  for (uint32_t c = 0; c < model.value().num_topics(); ++c) {
    trained += model.value().topic_model(c) != nullptr ? 1 : 0;
  }
  EXPECT_GT(trained, 0);
}

TEST(TopicInf2vecTest, ZeroWeightEqualsGlobalScore) {
  const synth::World w = SmallWorld(3);
  TopicInf2vecConfig config = FastConfig();
  config.topic_weight = 0.0;
  auto model = TopicInf2vecModel::Train(w.graph, w.log, config);
  ASSERT_TRUE(model.ok());
  for (UserId u = 0; u < 20; ++u) {
    EXPECT_DOUBLE_EQ(model.value().Score(0, u, (u + 1) % 20),
                     model.value().global_model().Score(u, (u + 1) % 20));
  }
}

TEST(TopicInf2vecTest, ScoreInterpolatesWhenTopicModelExists) {
  const synth::World w = SmallWorld(4);
  TopicInf2vecConfig config = FastConfig();
  config.topic_weight = 0.5;
  auto model = TopicInf2vecModel::Train(w.graph, w.log, config);
  ASSERT_TRUE(model.ok());
  for (uint32_t c = 0; c < model.value().num_topics(); ++c) {
    if (model.value().topic_model(c) == nullptr) continue;
    const double expected =
        0.5 * model.value().global_model().Score(1, 2) +
        0.5 * model.value().topic_model(c)->Score(1, 2);
    EXPECT_NEAR(model.value().Score(c, 1, 2), expected, 1e-12);
    return;
  }
  GTEST_SKIP() << "no cluster reached min_cluster_episodes";
}

TEST(TopicInf2vecTest, InferTopicIsInRange) {
  const synth::World w = SmallWorld(5);
  auto model = TopicInf2vecModel::Train(w.graph, w.log, FastConfig());
  ASSERT_TRUE(model.ok());
  EXPECT_LT(model.value().InferTopic({0, 1, 2}), model.value().num_topics());
}

TEST(TopicInf2vecTest, ScoreActivationAggregates) {
  const synth::World w = SmallWorld(6);
  auto model = TopicInf2vecModel::Train(w.graph, w.log, FastConfig());
  ASSERT_TRUE(model.ok());
  const double a = model.value().Score(0, 3, 7);
  const double b = model.value().Score(0, 4, 7);
  EXPECT_NEAR(model.value().ScoreActivation(0, 7, {3, 4}), (a + b) / 2.0,
              1e-12);
}

TEST(TopicInf2vecTest, TopicAwareEvaluationRuns) {
  const synth::World w = SmallWorld(7);
  Rng rng(8);
  const LogSplit split = SplitLog(w.log, 0.8, 0.0, rng);
  auto model = TopicInf2vecModel::Train(w.graph, split.train, FastConfig());
  ASSERT_TRUE(model.ok());
  const RankingMetrics m =
      EvaluateActivationTopicAware(model.value(), w.graph, split.test);
  EXPECT_GT(m.num_queries, 0u);
  EXPECT_GT(m.auc, 0.0);
  EXPECT_LE(m.auc, 1.0);
  EXPECT_TRUE(std::isfinite(m.map));
}

}  // namespace
}  // namespace inf2vec
