// Parser hardening tests for obs/json: full round trips through
// Dump+ParseJson, and the malformed-input catalogue — truncated
// documents, bad escapes, and overflowing numbers must all surface as
// Status errors, never crashes or silent garbage.

#include "obs/json.h"

#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace inf2vec {
namespace obs {
namespace {

JsonValue MakeNestedDoc() {
  JsonValue inner = JsonValue::Object();
  inner.Set("pi", 3.25);
  inner.Set("count", static_cast<uint64_t>(1) << 62);
  inner.Set("negative", static_cast<int64_t>(-42));
  inner.Set("label", "quotes \" backslash \\ newline \n tab \t");
  inner.Set("flag", true);
  inner.Set("nothing", JsonValue());

  JsonValue list = JsonValue::Array();
  list.Append(1);
  list.Append("two");
  list.Append(JsonValue::Array());
  list.Append(inner);

  JsonValue root = JsonValue::Object();
  root.Set("schema_version", 1);
  root.Set("values", std::move(list));
  root.Set("nested", std::move(inner));
  return root;
}

TEST(ObsJsonTest, RoundTripsNestedDocumentPretty) {
  const JsonValue doc = MakeNestedDoc();
  Result<JsonValue> parsed = ParseJson(doc.Dump(2));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().Dump(2), doc.Dump(2));
}

TEST(ObsJsonTest, RoundTripsNestedDocumentCompact) {
  const JsonValue doc = MakeNestedDoc();
  Result<JsonValue> parsed = ParseJson(doc.Dump(0));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().Dump(0), doc.Dump(0));
}

TEST(ObsJsonTest, PreservesIntegerDoubleDistinction) {
  Result<JsonValue> parsed = ParseJson("{\"i\": 7, \"d\": 7.0}");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().Find("i")->kind(), JsonValue::Kind::kInt);
  EXPECT_EQ(parsed.value().Find("d")->kind(), JsonValue::Kind::kDouble);
  EXPECT_EQ(parsed.value().Find("i")->AsInt(), 7);
}

TEST(ObsJsonTest, RejectsTruncatedDocuments) {
  const std::vector<std::string> truncated = {
      "",
      "{",
      "{\"a\"",
      "{\"a\":",
      "{\"a\": 1",
      "{\"a\": 1,",
      "[1, 2",
      "[1, 2,",
      "\"unterminated",
      "{\"outer\": {\"inner\": [1, {\"deep\": ",
  };
  for (const std::string& text : truncated) {
    Result<JsonValue> parsed = ParseJson(text);
    EXPECT_FALSE(parsed.ok()) << "accepted truncated input: " << text;
  }
}

TEST(ObsJsonTest, RejectsBadEscapes) {
  const std::vector<std::string> bad = {
      "\"\\q\"",          // Unknown escape.
      "\"\\u12\"",        // Truncated \u escape.
      "\"trailing\\\"",   // Escape swallows the closing quote.
      "{\"k\\x\": 1}",    // Bad escape inside an object key.
  };
  for (const std::string& text : bad) {
    Result<JsonValue> parsed = ParseJson(text);
    EXPECT_FALSE(parsed.ok()) << "accepted bad escape: " << text;
  }
}

TEST(ObsJsonTest, RejectsOverflowingNumbers) {
  // Exponents far past the double range must error out, not round to
  // infinity or crash.
  for (const std::string& text :
       {std::string("1e999"), std::string("-1e999"),
        std::string("[1, 2, 1e999]"), std::string("{\"x\": -1e999}")}) {
    Result<JsonValue> parsed = ParseJson(text);
    EXPECT_FALSE(parsed.ok()) << "accepted overflowing number: " << text;
  }
}

TEST(ObsJsonTest, IntegerOverflowFallsBackToDouble) {
  // Wider than int64 but still representable as a finite double: the
  // parser degrades to kDouble instead of wrapping or erroring.
  Result<JsonValue> parsed = ParseJson("123456789012345678901234567890");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().kind(), JsonValue::Kind::kDouble);
  EXPECT_GT(parsed.value().AsDouble(), 1e29);
}

TEST(ObsJsonTest, RejectsMalformedNumbers) {
  for (const std::string& text :
       {std::string("-"), std::string("1.2.3"), std::string("nan"),
        std::string("inf"), std::string("1e"), std::string("--1")}) {
    Result<JsonValue> parsed = ParseJson(text);
    EXPECT_FALSE(parsed.ok()) << "accepted malformed number: " << text;
  }
}

TEST(ObsJsonTest, RejectsTrailingGarbage) {
  EXPECT_FALSE(ParseJson("{} extra").ok());
  EXPECT_FALSE(ParseJson("1 2").ok());
  EXPECT_TRUE(ParseJson("{}  \n\t ").ok());  // Trailing whitespace is fine.
}

TEST(ObsJsonTest, EscapeHelperCoversControlCharacters) {
  const std::string escaped = JsonEscape(std::string("a\"b\\c\x01d\n"));
  Result<JsonValue> parsed = ParseJson("\"" + escaped + "\"");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().AsString(), std::string("a\"b\\c\x01d\n"));
}

}  // namespace
}  // namespace obs
}  // namespace inf2vec
