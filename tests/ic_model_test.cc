#include "diffusion/ic_model.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace inf2vec {
namespace {

SocialGraph ChainGraph() {
  GraphBuilder builder(5);
  for (UserId u = 0; u < 4; ++u) builder.AddEdge(u, u + 1);
  return std::move(builder.Build()).value();
}

TEST(SimulateCascadeTest, ProbabilityOneActivatesReachableSet) {
  const SocialGraph g = ChainGraph();
  const EdgeProbabilities probs(g, 1.0);
  Rng rng(1);
  const CascadeResult r = SimulateCascade(g, probs, {0}, rng);
  ASSERT_EQ(r.activated.size(), 5u);
  for (size_t i = 0; i < r.activated.size(); ++i) {
    EXPECT_EQ(r.activated[i], static_cast<UserId>(i));
    EXPECT_EQ(r.rounds[i], static_cast<uint32_t>(i));
  }
}

TEST(SimulateCascadeTest, ProbabilityZeroActivatesOnlySeeds) {
  const SocialGraph g = ChainGraph();
  const EdgeProbabilities probs(g, 0.0);
  Rng rng(2);
  const CascadeResult r = SimulateCascade(g, probs, {0, 2}, rng);
  EXPECT_EQ(r.activated, (std::vector<UserId>{0, 2}));
  EXPECT_EQ(r.rounds, (std::vector<uint32_t>{0, 0}));
}

TEST(SimulateCascadeTest, DuplicateSeedsCollapse) {
  const SocialGraph g = ChainGraph();
  const EdgeProbabilities probs(g, 0.0);
  Rng rng(3);
  const CascadeResult r = SimulateCascade(g, probs, {1, 1, 1}, rng);
  EXPECT_EQ(r.activated.size(), 1u);
}

TEST(SimulateCascadeTest, ActivationStopsWhenFrontierDies) {
  // 0 -> 1 with p=1; 1 -> 2 with p=0.
  GraphBuilder builder(3);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  const SocialGraph g = std::move(builder.Build()).value();
  EdgeProbabilities probs(g, 0.0);
  probs.Set(static_cast<uint64_t>(g.EdgeId(0, 1)), 1.0);
  Rng rng(4);
  const CascadeResult r = SimulateCascade(g, probs, {0}, rng);
  EXPECT_EQ(r.activated, (std::vector<UserId>{0, 1}));
}

TEST(SimulateCascadeTest, SingleActivationChancePerEdge) {
  // With p = 0.5 on one edge, activation frequency over many runs ~ 0.5;
  // the newly-activated node must not retry in later rounds.
  GraphBuilder builder(2);
  builder.AddEdge(0, 1);
  const SocialGraph g = std::move(builder.Build()).value();
  const EdgeProbabilities probs(g, 0.5);
  Rng rng(5);
  int activations = 0;
  constexpr int kRuns = 20000;
  for (int i = 0; i < kRuns; ++i) {
    activations += SimulateCascade(g, probs, {0}, rng).activated.size() == 2
                       ? 1
                       : 0;
  }
  EXPECT_NEAR(static_cast<double>(activations) / kRuns, 0.5, 0.02);
}

TEST(EstimateActivationProbabilitiesTest, MatchesClosedFormOnChain) {
  // Chain with p = 0.5 everywhere: P(node k active | seed 0) = 0.5^k.
  const SocialGraph g = ChainGraph();
  const EdgeProbabilities probs(g, 0.5);
  Rng rng(6);
  const std::vector<double> freq =
      EstimateActivationProbabilities(g, probs, {0}, 40000, rng);
  EXPECT_DOUBLE_EQ(freq[0], 1.0);
  EXPECT_NEAR(freq[1], 0.5, 0.02);
  EXPECT_NEAR(freq[2], 0.25, 0.02);
  EXPECT_NEAR(freq[3], 0.125, 0.015);
}

TEST(EstimateActivationProbabilitiesTest, SeedsAlwaysOne) {
  const SocialGraph g = ChainGraph();
  const EdgeProbabilities probs(g, 0.3);
  Rng rng(7);
  const std::vector<double> freq =
      EstimateActivationProbabilities(g, probs, {2, 4}, 100, rng);
  EXPECT_DOUBLE_EQ(freq[2], 1.0);
  EXPECT_DOUBLE_EQ(freq[4], 1.0);
  EXPECT_DOUBLE_EQ(freq[0], 0.0);  // Unreachable from seeds.
}

TEST(EstimateActivationProbabilitiesTest, ZeroSimulationsYieldZeros) {
  const SocialGraph g = ChainGraph();
  const EdgeProbabilities probs(g, 0.5);
  Rng rng(8);
  const std::vector<double> freq =
      EstimateActivationProbabilities(g, probs, {0}, 0, rng);
  for (double f : freq) EXPECT_DOUBLE_EQ(f, 0.0);
}

TEST(EdgeProbabilitiesTest, ConstructorsAndAccess) {
  const SocialGraph g = ChainGraph();
  EdgeProbabilities zero(g);
  EXPECT_EQ(zero.size(), g.num_edges());
  EXPECT_DOUBLE_EQ(zero.Get(0), 0.0);
  EdgeProbabilities uniform(g, 0.7);
  EXPECT_DOUBLE_EQ(uniform.Get(2), 0.7);
  uniform.Set(2, 0.1);
  EXPECT_DOUBLE_EQ(uniform.Get(2), 0.1);
}

TEST(SimulateCascadeTest, MergingFrontiersDiamond) {
  // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3: node 3 activates once even if both
  // parents fire.
  GraphBuilder builder(4);
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 2);
  builder.AddEdge(1, 3);
  builder.AddEdge(2, 3);
  const SocialGraph g = std::move(builder.Build()).value();
  const EdgeProbabilities probs(g, 1.0);
  Rng rng(9);
  const CascadeResult r = SimulateCascade(g, probs, {0}, rng);
  EXPECT_EQ(r.activated.size(), 4u);
  EXPECT_EQ(std::count(r.activated.begin(), r.activated.end(), 3u), 1);
  EXPECT_EQ(r.rounds.back(), 2u);
}

}  // namespace
}  // namespace inf2vec
