#include "util/logging.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace inf2vec {
namespace {

/// Restores the global threshold after each test.
class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override { SetMinLogLevel(LogLevel::kInfo); }
};

TEST_F(LoggingTest, LevelNamesRoundTrip) {
  const LogLevel levels[] = {LogLevel::kDebug, LogLevel::kInfo,
                             LogLevel::kWarning, LogLevel::kError,
                             LogLevel::kFatal};
  for (LogLevel level : levels) {
    LogLevel parsed = LogLevel::kFatal;
    ASSERT_TRUE(ParseLogLevel(LogLevelName(level), &parsed))
        << LogLevelName(level);
    EXPECT_EQ(parsed, level);
  }
}

TEST_F(LoggingTest, ParseRejectsUnknownNamesWithoutTouchingOutput) {
  LogLevel out = LogLevel::kWarning;
  EXPECT_FALSE(ParseLogLevel("verbose", &out));
  EXPECT_FALSE(ParseLogLevel("INFO", &out));  // Exact lower-case only.
  EXPECT_FALSE(ParseLogLevel("", &out));
  EXPECT_EQ(out, LogLevel::kWarning);
}

TEST_F(LoggingTest, SetMinLogLevelTakesEffect) {
  SetMinLogLevel(LogLevel::kError);
  EXPECT_EQ(internal_logging::MinLogLevel(), LogLevel::kError);
  SetMinLogLevel(LogLevel::kDebug);
  EXPECT_EQ(internal_logging::MinLogLevel(), LogLevel::kDebug);
}

TEST_F(LoggingTest, LevelCanChangeWhileOtherThreadsLog) {
  // Regression test for the old "set the level before spawning threads"
  // caveat: the threshold is a relaxed atomic, so concurrent readers (the
  // INF2VEC_LOG level check) and writers are race-free. Run under
  // -DINF2VEC_SANITIZE=thread to get the actual data-race check.
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([] {
      for (int i = 0; i < 2000; ++i) {
        // Debug is below the default threshold most of the time, so this
        // exercises the hot read path without spamming test output.
        INF2VEC_LOG(Debug) << "worker message " << i;
      }
    });
  }
  for (int i = 0; i < 200; ++i) {
    SetMinLogLevel(i % 2 == 0 ? LogLevel::kError : LogLevel::kWarning);
  }
  for (std::thread& w : workers) w.join();
  SetMinLogLevel(LogLevel::kInfo);
}

}  // namespace
}  // namespace inf2vec
