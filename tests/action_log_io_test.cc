#include "action/action_log_io.h"

#include <unistd.h>

#include <filesystem>

#include <gtest/gtest.h>

#include "util/io.h"

namespace inf2vec {
namespace {

class ActionLogIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("inf2vec_action_io_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(ActionLogIoTest, LoadGroupsRowsIntoEpisodes) {
  ASSERT_TRUE(WriteLines(Path("log.tsv"), {"# user item time", "1\t0\t10",
                                           "2\t0\t5", "3\t1\t7"})
                  .ok());
  auto log = LoadActionLog(Path("log.tsv"));
  ASSERT_TRUE(log.ok());
  EXPECT_EQ(log.value().num_episodes(), 2u);
  // Episode 0 sorted by time: user 2 (t=5) before user 1 (t=10).
  const DiffusionEpisode& e0 = log.value().episodes()[0];
  EXPECT_EQ(e0.item(), 0u);
  ASSERT_EQ(e0.size(), 2u);
  EXPECT_EQ(e0.adoptions()[0].user, 2u);
}

TEST_F(ActionLogIoTest, RoundTrip) {
  DiffusionEpisode e0(0);
  e0.Add(1, 100);
  e0.Add(2, 200);
  ASSERT_TRUE(e0.Finalize().ok());
  DiffusionEpisode e1(1);
  e1.Add(3, 50);
  ASSERT_TRUE(e1.Finalize().ok());
  ActionLog log;
  log.AddEpisode(std::move(e0));
  log.AddEpisode(std::move(e1));

  ASSERT_TRUE(SaveActionLog(log, Path("log.tsv")).ok());
  auto loaded = LoadActionLog(Path("log.tsv"));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().num_episodes(), 2u);
  EXPECT_EQ(loaded.value().num_actions(), 3u);
  EXPECT_EQ(loaded.value().episodes()[0].adoptions()[1].time, 200);
}

TEST_F(ActionLogIoTest, RejectsMalformedRows) {
  ASSERT_TRUE(WriteLines(Path("bad.tsv"), {"1\t2"}).ok());
  EXPECT_FALSE(LoadActionLog(Path("bad.tsv")).ok());
  ASSERT_TRUE(WriteLines(Path("bad2.tsv"), {"a\tb\tc"}).ok());
  EXPECT_FALSE(LoadActionLog(Path("bad2.tsv")).ok());
}

TEST_F(ActionLogIoTest, MissingFileFails) {
  EXPECT_EQ(LoadActionLog(Path("missing.tsv")).status().code(),
            StatusCode::kIOError);
}

TEST_F(ActionLogIoTest, DuplicateUserKeepsEarliest) {
  ASSERT_TRUE(
      WriteLines(Path("dup.tsv"), {"1\t0\t10", "1\t0\t3", "2\t0\t5"}).ok());
  auto log = LoadActionLog(Path("dup.tsv"));
  ASSERT_TRUE(log.ok());
  const DiffusionEpisode& e = log.value().episodes()[0];
  ASSERT_EQ(e.size(), 2u);
  EXPECT_EQ(e.adoptions()[0].user, 1u);
  EXPECT_EQ(e.adoptions()[0].time, 3);
}

}  // namespace
}  // namespace inf2vec
