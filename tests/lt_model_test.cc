#include "diffusion/lt_model.h"

#include <gtest/gtest.h>

namespace inf2vec {
namespace {

SocialGraph ChainGraph() {
  GraphBuilder builder(5);
  for (UserId u = 0; u < 4; ++u) builder.AddEdge(u, u + 1);
  return std::move(builder.Build()).value();
}

TEST(LtWeightsTest, UniformByInDegree) {
  // Diamond: 0 -> {1, 2} -> 3.
  GraphBuilder builder(4);
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 2);
  builder.AddEdge(1, 3);
  builder.AddEdge(2, 3);
  const SocialGraph g = std::move(builder.Build()).value();
  const LtWeights w = LtWeights::UniformByInDegree(g);
  EXPECT_DOUBLE_EQ(w.Get(g.EdgeId(0, 1)), 1.0);
  EXPECT_DOUBLE_EQ(w.Get(g.EdgeId(1, 3)), 0.5);
  EXPECT_DOUBLE_EQ(w.Get(g.EdgeId(2, 3)), 0.5);
}

TEST(LtWeightsTest, NormalizeCapsInWeightSums) {
  GraphBuilder builder(3);
  builder.AddEdge(0, 2);
  builder.AddEdge(1, 2);
  const SocialGraph g = std::move(builder.Build()).value();
  LtWeights w(g);
  w.Set(g.EdgeId(0, 2), 0.9);
  w.Set(g.EdgeId(1, 2), 0.9);
  w.NormalizeInWeights(g);
  EXPECT_NEAR(w.Get(g.EdgeId(0, 2)) + w.Get(g.EdgeId(1, 2)), 1.0, 1e-12);
  // Already-feasible sums are untouched.
  LtWeights w2(g);
  w2.Set(g.EdgeId(0, 2), 0.3);
  w2.NormalizeInWeights(g);
  EXPECT_DOUBLE_EQ(w2.Get(g.EdgeId(0, 2)), 0.3);
}

TEST(LtCascadeTest, FullWeightChainActivatesEveryone) {
  // Weight 1.0 on each chain edge: threshold <= 1 always met.
  const SocialGraph g = ChainGraph();
  LtWeights w(g);
  for (UserId u = 0; u < 4; ++u) w.Set(g.EdgeId(u, u + 1), 1.0);
  Rng rng(1);
  const CascadeResult r = SimulateLtCascade(g, w, {0}, rng);
  ASSERT_EQ(r.activated.size(), 5u);
  EXPECT_EQ(r.rounds.back(), 4u);
}

TEST(LtCascadeTest, ZeroWeightsActivateOnlySeeds) {
  const SocialGraph g = ChainGraph();
  const LtWeights w(g);
  Rng rng(2);
  const CascadeResult r = SimulateLtCascade(g, w, {1, 3}, rng);
  EXPECT_EQ(r.activated, (std::vector<UserId>{1, 3}));
}

TEST(LtCascadeTest, ActivationRateMatchesWeight) {
  // Single edge weight 0.3: activation iff threshold <= 0.3 -> P = 0.3.
  GraphBuilder builder(2);
  builder.AddEdge(0, 1);
  const SocialGraph g = std::move(builder.Build()).value();
  LtWeights w(g);
  w.Set(g.EdgeId(0, 1), 0.3);
  Rng rng(3);
  int hits = 0;
  constexpr int kRuns = 20000;
  for (int i = 0; i < kRuns; ++i) {
    hits += SimulateLtCascade(g, w, {0}, rng).activated.size() == 2 ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kRuns, 0.3, 0.02);
}

TEST(LtCascadeTest, PressureAccumulatesAcrossNeighbors) {
  // v needs both parents: each weight 0.5, threshold uniform.
  // P(activate | both active) = P(theta <= 1.0) = 1.
  GraphBuilder builder(3);
  builder.AddEdge(0, 2);
  builder.AddEdge(1, 2);
  const SocialGraph g = std::move(builder.Build()).value();
  LtWeights w(g);
  w.Set(g.EdgeId(0, 2), 0.5);
  w.Set(g.EdgeId(1, 2), 0.5);
  Rng rng(4);
  int hits = 0;
  for (int i = 0; i < 200; ++i) {
    hits += SimulateLtCascade(g, w, {0, 1}, rng).activated.size() == 3 ? 1
                                                                       : 0;
  }
  EXPECT_EQ(hits, 200);  // Summed pressure 1.0 >= any threshold.
}

TEST(LtEstimateTest, FrequenciesMatchClosedForm) {
  GraphBuilder builder(2);
  builder.AddEdge(0, 1);
  const SocialGraph g = std::move(builder.Build()).value();
  LtWeights w(g);
  w.Set(g.EdgeId(0, 1), 0.4);
  Rng rng(5);
  const std::vector<double> freq =
      EstimateLtActivationProbabilities(g, w, {0}, 30000, rng);
  EXPECT_DOUBLE_EQ(freq[0], 1.0);
  EXPECT_NEAR(freq[1], 0.4, 0.02);
}

TEST(LtCascadeTest, DuplicateSeedsCollapse) {
  const SocialGraph g = ChainGraph();
  const LtWeights w(g);
  Rng rng(6);
  EXPECT_EQ(SimulateLtCascade(g, w, {2, 2}, rng).activated.size(), 1u);
}

}  // namespace
}  // namespace inf2vec
