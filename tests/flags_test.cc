#include "util/flags.h"

#include <gtest/gtest.h>

namespace inf2vec {
namespace {

FlagParser ParseArgs(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  auto parser = FlagParser::Parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(parser.ok());
  return std::move(parser).value();
}

TEST(FlagParserTest, KeyValuePairs) {
  const FlagParser p = ParseArgs({"--name", "alice", "--count", "7"});
  EXPECT_TRUE(p.Has("name"));
  EXPECT_EQ(p.GetString("name", ""), "alice");
  EXPECT_EQ(p.GetInt("count", 0).value(), 7);
}

TEST(FlagParserTest, EqualsForm) {
  const FlagParser p = ParseArgs({"--rate=0.25", "--label=x=y"});
  EXPECT_DOUBLE_EQ(p.GetDouble("rate", 0.0).value(), 0.25);
  EXPECT_EQ(p.GetString("label", ""), "x=y");  // Split on first '=' only.
}

TEST(FlagParserTest, BareSwitches) {
  const FlagParser p = ParseArgs({"--verbose", "--dry-run", "--k", "3"});
  EXPECT_TRUE(p.GetBool("verbose", false));
  EXPECT_TRUE(p.GetBool("dry-run", false));
  EXPECT_FALSE(p.GetBool("absent", false));
  EXPECT_TRUE(p.GetBool("absent", true));
}

TEST(FlagParserTest, BoolValueForms) {
  const FlagParser p =
      ParseArgs({"--a=true", "--b=1", "--c=yes", "--d=false", "--e=0"});
  EXPECT_TRUE(p.GetBool("a", false));
  EXPECT_TRUE(p.GetBool("b", false));
  EXPECT_TRUE(p.GetBool("c", false));
  EXPECT_FALSE(p.GetBool("d", true));
  EXPECT_FALSE(p.GetBool("e", true));
}

TEST(FlagParserTest, PositionalArguments) {
  const FlagParser p = ParseArgs({"train", "--dim", "8", "extra"});
  ASSERT_EQ(p.positional().size(), 2u);
  EXPECT_EQ(p.positional()[0], "train");
  EXPECT_EQ(p.positional()[1], "extra");
}

TEST(FlagParserTest, SwitchFollowedByFlag) {
  const FlagParser p = ParseArgs({"--local-only", "--dim", "16"});
  EXPECT_TRUE(p.GetBool("local-only", false));
  EXPECT_EQ(p.GetInt("dim", 0).value(), 16);
}

TEST(FlagParserTest, FallbacksWhenAbsent) {
  const FlagParser p = ParseArgs({});
  EXPECT_EQ(p.GetString("x", "def"), "def");
  EXPECT_EQ(p.GetInt("x", 9).value(), 9);
  EXPECT_DOUBLE_EQ(p.GetDouble("x", 1.5).value(), 1.5);
}

TEST(FlagParserTest, BadNumericValuesError) {
  const FlagParser p = ParseArgs({"--n", "abc", "--d", "1.2.3"});
  EXPECT_FALSE(p.GetInt("n", 0).ok());
  EXPECT_FALSE(p.GetDouble("d", 0.0).ok());
}

TEST(FlagParserTest, BareDoubleDashRejected) {
  std::vector<const char*> argv = {"prog", "--"};
  auto parser = FlagParser::Parse(2, argv.data());
  EXPECT_FALSE(parser.ok());
}

TEST(FlagParserTest, LastValueWins) {
  const FlagParser p = ParseArgs({"--k", "1", "--k", "2"});
  EXPECT_EQ(p.GetInt("k", 0).value(), 2);
}

TEST(FlagParserTest, KeysListsProvidedFlags) {
  const FlagParser p = ParseArgs({"--a", "1", "--b=2"});
  const std::vector<std::string> keys = p.Keys();
  EXPECT_EQ(keys.size(), 2u);
}

}  // namespace
}  // namespace inf2vec
