#include "citation/case_study.h"
#include "citation/citation_generator.h"

#include <gtest/gtest.h>

namespace inf2vec {
namespace citation {
namespace {

CitationData SmallData(uint64_t seed) {
  CitationProfile profile;
  profile.num_authors = 300;
  profile.num_papers = 600;
  profile.num_communities = 6;
  Rng rng(seed);
  auto data = GenerateCitationNetwork(profile, rng);
  EXPECT_TRUE(data.ok());
  return std::move(data).value();
}

TEST(CitationGeneratorTest, RejectsDegenerateProfiles) {
  Rng rng(1);
  CitationProfile p;
  p.num_authors = 2;
  p.num_communities = 5;
  EXPECT_FALSE(GenerateCitationNetwork(p, rng).ok());
  p = CitationProfile();
  p.num_papers = 3;
  EXPECT_FALSE(GenerateCitationNetwork(p, rng).ok());
}

TEST(CitationGeneratorTest, ProducesPairsWithinAuthorSpace) {
  const CitationData data = SmallData(2);
  EXPECT_EQ(data.num_authors, 300u);
  EXPECT_GT(data.influence_pairs.size(), 1000u);
  for (const InfluencePair& p : data.influence_pairs) {
    EXPECT_LT(p.source, 300u);
    EXPECT_LT(p.target, 300u);
    EXPECT_NE(p.source, p.target);
  }
}

TEST(CitationGeneratorTest, InfluenceConcentratesInsideCommunities) {
  const CitationData data = SmallData(3);
  uint64_t same = 0;
  for (const InfluencePair& p : data.influence_pairs) {
    same += data.author_community[p.source] == data.author_community[p.target]
                ? 1
                : 0;
  }
  const double share =
      static_cast<double>(same) / data.influence_pairs.size();
  // 6 communities: random mixing would give ~1/6; the bias should push it
  // far higher.
  EXPECT_GT(share, 0.5);
}

TEST(CitationGeneratorTest, DeterministicGivenSeed) {
  const CitationData a = SmallData(4);
  const CitationData b = SmallData(4);
  EXPECT_EQ(a.influence_pairs.size(), b.influence_pairs.size());
  EXPECT_EQ(a.author_community, b.author_community);
}

TEST(CaseStudyTest, RejectsEmptyData) {
  CitationData empty;
  empty.num_authors = 10;
  CaseStudyOptions options;
  Rng rng(5);
  EXPECT_FALSE(RunCitationCaseStudy(empty, options, rng).ok());
}

TEST(CaseStudyTest, ProducesValidPrecisions) {
  const CitationData data = SmallData(6);
  CaseStudyOptions options;
  options.dim = 16;
  options.epochs = 4;
  options.mc_simulations = 100;
  Rng rng(7);
  auto result = RunCitationCaseStudy(data, options, rng);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result.value().num_test_authors, 10u);
  EXPECT_GE(result.value().embedding_avg_precision, 0.0);
  EXPECT_LE(result.value().embedding_avg_precision, 1.0);
  EXPECT_GE(result.value().conventional_avg_precision, 0.0);
  EXPECT_LE(result.value().conventional_avg_precision, 1.0);
  EXPECT_LE(result.value().examples.size(), 3u);
  EXPECT_FALSE(result.value().examples.empty());
}

TEST(CaseStudyTest, EmbeddingModelFindsSignal) {
  // The paper's headline: the embedding model's average precision clearly
  // beats random guessing (which would be ~ held-out-degree / num_authors,
  // well under 0.05 here).
  const CitationData data = SmallData(8);
  CaseStudyOptions options;
  options.dim = 24;
  options.epochs = 6;
  options.mc_simulations = 150;
  Rng rng(9);
  auto result = RunCitationCaseStudy(data, options, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result.value().embedding_avg_precision, 0.05);
}

}  // namespace
}  // namespace citation
}  // namespace inf2vec
