#include "eval/diffusion_task.h"

#include <set>

#include <gtest/gtest.h>

namespace inf2vec {
namespace {

class SetOracle : public InfluenceModel {
 public:
  SetOracle(uint32_t num_users, std::set<UserId> hot)
      : num_users_(num_users), hot_(std::move(hot)) {}

  std::string name() const override { return "SetOracle"; }
  double ScoreActivation(UserId, const std::vector<UserId>&) const override {
    return 0.0;
  }
  std::vector<double> ScoreDiffusion(const std::vector<UserId>&,
                                     Rng&) const override {
    std::vector<double> scores(num_users_, 0.0);
    for (UserId u : hot_) scores[u] = 1.0;
    return scores;
  }

 private:
  uint32_t num_users_;
  std::set<UserId> hot_;
};

DiffusionEpisode Episode(std::vector<UserId> users) {
  DiffusionEpisode e(0);
  Timestamp t = 0;
  for (UserId u : users) e.Add(u, ++t);
  EXPECT_TRUE(e.Finalize().ok());
  return e;
}

TEST(BuildDiffusionCaseTest, FivePercentSeedSplit) {
  std::vector<UserId> users(100);
  for (UserId u = 0; u < 100; ++u) users[u] = u;
  DiffusionTaskOptions opts;
  const DiffusionCase c = BuildDiffusionCase(Episode(users), opts);
  EXPECT_EQ(c.seeds.size(), 5u);
  EXPECT_EQ(c.ground_truth.size(), 95u);
  EXPECT_EQ(c.seeds[0], 0u);  // Chronological prefix.
  EXPECT_EQ(c.ground_truth[0], 5u);
}

TEST(BuildDiffusionCaseTest, MinSeedsOnTinyEpisode) {
  DiffusionTaskOptions opts;
  const DiffusionCase c = BuildDiffusionCase(Episode({7, 8, 9}), opts);
  EXPECT_EQ(c.seeds.size(), 1u);
  EXPECT_EQ(c.seeds[0], 7u);
  EXPECT_EQ(c.ground_truth.size(), 2u);
}

TEST(BuildDiffusionCaseTest, EmptyEpisode) {
  DiffusionTaskOptions opts;
  DiffusionEpisode e(0);
  ASSERT_TRUE(e.Finalize().ok());
  const DiffusionCase c = BuildDiffusionCase(e, opts);
  EXPECT_TRUE(c.seeds.empty());
  EXPECT_TRUE(c.ground_truth.empty());
}

TEST(BuildDiffusionCaseTest, SeedFractionRespected) {
  std::vector<UserId> users(40);
  for (UserId u = 0; u < 40; ++u) users[u] = u;
  DiffusionTaskOptions opts;
  opts.seed_fraction = 0.25;
  const DiffusionCase c = BuildDiffusionCase(Episode(users), opts);
  EXPECT_EQ(c.seeds.size(), 10u);
}

TEST(EvaluateDiffusionTest, OracleScoresPerfectly) {
  ActionLog test;
  test.AddEpisode(Episode({0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
  // Seeds = {0}; ground truth = {1..9}.
  const SetOracle oracle(20, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  DiffusionTaskOptions opts;
  Rng rng(1);
  const RankingMetrics m = EvaluateDiffusion(oracle, 20, test, opts, rng);
  EXPECT_EQ(m.num_queries, 1u);
  EXPECT_DOUBLE_EQ(m.auc, 1.0);
  EXPECT_DOUBLE_EQ(m.map, 1.0);
}

TEST(EvaluateDiffusionTest, SeedsExcludedFromRanking) {
  ActionLog test;
  test.AddEpisode(Episode({0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
  // Oracle scores ONLY the seed high — which is excluded, so AUC is flat.
  const SetOracle oracle(20, {0});
  DiffusionTaskOptions opts;
  Rng rng(2);
  const RankingMetrics m = EvaluateDiffusion(oracle, 20, test, opts, rng);
  EXPECT_DOUBLE_EQ(m.auc, 0.5);  // All remaining scores tie at 0.
}

TEST(EvaluateDiffusionTest, SkipsEpisodesWithoutGroundTruth) {
  ActionLog test;
  test.AddEpisode(Episode({3}));  // Single user: all seed, no truth.
  const SetOracle oracle(10, {});
  DiffusionTaskOptions opts;
  Rng rng(3);
  const RankingMetrics m = EvaluateDiffusion(oracle, 10, test, opts, rng);
  EXPECT_EQ(m.num_queries, 0u);
}

TEST(EvaluateDiffusionTest, MacroAveragesAcrossEpisodes) {
  ActionLog test;
  test.AddEpisode(Episode({0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
  test.AddEpisode(Episode({10, 11, 12, 13, 14, 15, 16, 17, 18, 19}));
  // Oracle perfect on episode 1, useless on episode 2.
  const SetOracle oracle(20, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  DiffusionTaskOptions opts;
  Rng rng(4);
  const RankingMetrics m = EvaluateDiffusion(oracle, 20, test, opts, rng);
  EXPECT_EQ(m.num_queries, 2u);
  EXPECT_GT(m.auc, 0.5);
  EXPECT_LT(m.auc, 1.0);
}

}  // namespace
}  // namespace inf2vec
