// Incremental (delta) training tests: growing the embedding store for
// unseen users, warm-starting SGD at a reduced learning rate, and the
// validation surface.

#include "ckpt/incremental.h"

#include <cmath>

#include <gtest/gtest.h>

#include "synth/world_generator.h"

namespace inf2vec {
namespace ckpt {
namespace {

synth::World TinyWorld(uint64_t seed) {
  synth::WorldProfile profile = synth::WorldProfile::DiggLike();
  profile.num_users = 150;
  profile.num_items = 30;
  profile.mean_out_degree = 5.0;
  Rng rng(seed);
  auto world = synth::GenerateWorld(profile, rng);
  EXPECT_TRUE(world.ok());
  return std::move(world).value();
}

Inf2vecConfig SmallConfig() {
  Inf2vecConfig config;
  config.dim = 8;
  config.epochs = 2;
  config.context.length = 8;
  config.seed = 5;
  return config;
}

EmbeddingStore TrainBase(const synth::World& world,
                         const Inf2vecConfig& config) {
  Result<Inf2vecModel> model =
      Inf2vecModel::Train(world.graph, world.log, config);
  EXPECT_TRUE(model.ok()) << model.status().ToString();
  return model.value().embeddings();
}

/// The base world's graph widened by `extra` fresh users, each following
/// user 0 and followed by user 1 (so the new ids can appear in episodes).
SocialGraph WidenGraph(const SocialGraph& base, uint32_t extra) {
  GraphBuilder builder(base.num_users() + extra);
  for (UserId u = 0; u < base.num_users(); ++u) {
    for (UserId v : base.OutNeighbors(u)) builder.AddEdge(u, v);
  }
  for (uint32_t i = 0; i < extra; ++i) {
    const UserId fresh = base.num_users() + i;
    builder.AddEdge(0, fresh);
    builder.AddEdge(fresh, 1);
  }
  Result<SocialGraph> graph = builder.Build();
  EXPECT_TRUE(graph.ok()) << graph.status().ToString();
  return std::move(graph).value();
}

/// A delta log whose episodes involve both old and brand-new users.
ActionLog MakeDelta(uint32_t base_users, uint32_t extra) {
  ActionLog delta;
  for (ItemId item = 0; item < 4; ++item) {
    DiffusionEpisode episode(1000 + item);
    episode.Add(0, 1);
    episode.Add(base_users + (item % extra), 2);
    episode.Add(1, 3);
    episode.Add(2 + item, 4);
    EXPECT_TRUE(episode.Finalize().ok());
    delta.AddEpisode(std::move(episode));
  }
  return delta;
}

TEST(IncrementalUpdateTest, GrowsStoreAndKeepsParametersFinite) {
  const synth::World world = TinyWorld(1);
  const Inf2vecConfig config = SmallConfig();
  EmbeddingStore base = TrainBase(world, config);
  const uint32_t base_users = base.num_users();
  const uint32_t extra = 3;

  const SocialGraph graph = WidenGraph(world.graph, extra);
  const ActionLog delta = MakeDelta(base_users, extra);

  Result<Inf2vecModel> updated = IncrementalUpdate(
      std::move(base), graph, delta, config, IncrementalOptions{});
  ASSERT_TRUE(updated.ok()) << updated.status().ToString();
  const EmbeddingStore& store = updated.value().embeddings();
  EXPECT_EQ(store.num_users(), base_users + extra);
  EXPECT_EQ(store.dim(), config.dim);
  for (UserId u = 0; u < store.num_users(); ++u) {
    for (double x : store.Source(u)) EXPECT_TRUE(std::isfinite(x));
    for (double x : store.Target(u)) EXPECT_TRUE(std::isfinite(x));
  }
  // The delta pass ran at the scaled learning rate.
  EXPECT_DOUBLE_EQ(updated.value().config().sgd.learning_rate,
                   config.sgd.learning_rate * IncrementalOptions{}.lr_scale);
}

TEST(IncrementalUpdateTest, IsDeterministicForAFixedSeed) {
  const synth::World world = TinyWorld(2);
  const Inf2vecConfig config = SmallConfig();
  const EmbeddingStore base = TrainBase(world, config);
  const SocialGraph graph = WidenGraph(world.graph, 2);
  const ActionLog delta = MakeDelta(base.num_users(), 2);

  IncrementalOptions options;
  options.seed = 77;
  Result<Inf2vecModel> a =
      IncrementalUpdate(base, graph, delta, config, options);
  Result<Inf2vecModel> b =
      IncrementalUpdate(base, graph, delta, config, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().embeddings(), b.value().embeddings());

  // A different seed initializes new users differently and draws a
  // different corpus, so the result moves.
  options.seed = 78;
  Result<Inf2vecModel> c =
      IncrementalUpdate(base, graph, delta, config, options);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a.value().embeddings(), c.value().embeddings());
}

TEST(IncrementalUpdateTest, UntouchedUsersBarelyMoveAtScaledLr) {
  // The fine-tuning contract: a tiny delta at lr_scale 0.2 must not
  // bulldoze the converged base parameters. Users absent from the delta
  // episodes' propagation neighborhoods keep their embeddings verbatim
  // (no pair ever updates them).
  const synth::World world = TinyWorld(3);
  const Inf2vecConfig config = SmallConfig();
  const EmbeddingStore base = TrainBase(world, config);
  const SocialGraph graph = WidenGraph(world.graph, 2);
  const ActionLog delta = MakeDelta(base.num_users(), 2);

  Result<Inf2vecModel> updated =
      IncrementalUpdate(base, graph, delta, config, IncrementalOptions{});
  ASSERT_TRUE(updated.ok());
  const EmbeddingStore& store = updated.value().embeddings();
  // Negative sampling can touch anyone's target vector, but source vectors
  // only move for users that emit pairs; count how many moved.
  uint32_t moved = 0;
  for (UserId u = 0; u < base.num_users(); ++u) {
    bool same = true;
    for (uint32_t k = 0; k < base.dim(); ++k) {
      if (store.Source(u)[k] != base.Source(u)[k]) same = false;
    }
    if (!same) ++moved;
  }
  EXPECT_GT(moved, 0u);                       // The delta did train.
  EXPECT_LT(moved, base.num_users() / 2);     // But most users were left be.
}

TEST(IncrementalUpdateTest, ValidatesItsInputs) {
  const synth::World world = TinyWorld(4);
  const Inf2vecConfig config = SmallConfig();
  const EmbeddingStore base = TrainBase(world, config);
  const ActionLog delta = MakeDelta(base.num_users(), 1);
  const SocialGraph graph = WidenGraph(world.graph, 1);

  // Empty base store.
  EXPECT_EQ(IncrementalUpdate(EmbeddingStore(), graph, delta, config,
                              IncrementalOptions{})
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  // dim mismatch between store and config.
  Inf2vecConfig wrong_dim = config;
  wrong_dim.dim = config.dim + 1;
  EXPECT_EQ(IncrementalUpdate(base, graph, delta, wrong_dim,
                              IncrementalOptions{})
                .status()
                .code(),
            StatusCode::kFailedPrecondition);

  // Empty delta log.
  EXPECT_EQ(IncrementalUpdate(base, graph, ActionLog(), config,
                              IncrementalOptions{})
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  // Graph narrower than the base id space.
  GraphBuilder narrow(base.num_users() - 10);
  narrow.AddEdge(0, 1);
  EXPECT_EQ(IncrementalUpdate(base, narrow.Build().value(), delta, config,
                              IncrementalOptions{})
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  // Non-positive lr_scale.
  IncrementalOptions bad_lr;
  bad_lr.lr_scale = 0.0;
  EXPECT_EQ(IncrementalUpdate(base, graph, delta, config, bad_lr)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(IncrementalUpdateTest, PooledDeltaPassAlsoWorks) {
  const synth::World world = TinyWorld(6);
  Inf2vecConfig config = SmallConfig();
  const EmbeddingStore base = TrainBase(world, config);
  const SocialGraph graph = WidenGraph(world.graph, 2);
  const ActionLog delta = MakeDelta(base.num_users(), 2);

  config.num_threads = 2;
  Result<Inf2vecModel> updated =
      IncrementalUpdate(base, graph, delta, config, IncrementalOptions{});
  ASSERT_TRUE(updated.ok()) << updated.status().ToString();
  EXPECT_EQ(updated.value().embeddings().num_users(), graph.num_users());
}

}  // namespace
}  // namespace ckpt
}  // namespace inf2vec
