#include "synth/world_generator.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "diffusion/influence_pairs.h"

namespace inf2vec {
namespace {

synth::World SmallWorld(uint64_t seed) {
  synth::WorldProfile profile = synth::WorldProfile::DiggLike();
  profile.num_users = 600;
  profile.num_items = 100;
  Rng rng(seed);
  auto world = synth::GenerateWorld(profile, rng);
  EXPECT_TRUE(world.ok()) << world.status().ToString();
  return std::move(world).value();
}

TEST(WorldGeneratorTest, RejectsDegenerateProfiles) {
  Rng rng(1);
  synth::WorldProfile p;
  p.num_users = 3;
  EXPECT_FALSE(synth::GenerateWorld(p, rng).ok());
  p = synth::WorldProfile();
  p.num_topics = 0;
  EXPECT_FALSE(synth::GenerateWorld(p, rng).ok());
}

TEST(WorldGeneratorTest, BasicShapes) {
  const synth::World w = SmallWorld(2);
  EXPECT_EQ(w.graph.num_users(), 600u);
  EXPECT_GT(w.graph.num_edges(), 600u);
  EXPECT_GT(w.log.num_episodes(), 20u);
  EXPECT_EQ(w.true_probs.size(), w.graph.num_edges());
  EXPECT_EQ(w.user_topics.size(), 600u * w.profile.num_topics);
}

TEST(WorldGeneratorTest, TopicMixturesAreNormalized) {
  const synth::World w = SmallWorld(3);
  for (UserId u = 0; u < 50; ++u) {
    double sum = 0.0;
    for (uint32_t t = 0; t < w.profile.num_topics; ++t) {
      const double x = w.UserTopic(u, t);
      EXPECT_GE(x, 0.0);
      sum += x;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(WorldGeneratorTest, PlantedProbabilitiesAreBounded) {
  const synth::World w = SmallWorld(4);
  for (uint64_t e = 0; e < w.true_probs.size(); ++e) {
    EXPECT_GE(w.true_probs.Get(e), 0.0);
    EXPECT_LE(w.true_probs.Get(e), w.profile.max_edge_prob);
  }
}

TEST(WorldGeneratorTest, EpisodesAreChronologicalAndUserUnique) {
  const synth::World w = SmallWorld(5);
  for (const DiffusionEpisode& e : w.log.episodes()) {
    EXPECT_GE(e.size(), 3u);
    std::set<UserId> seen;
    Timestamp prev = -1;
    for (const Adoption& a : e.adoptions()) {
      EXPECT_GE(a.time, prev);
      prev = a.time;
      EXPECT_TRUE(seen.insert(a.user).second);
      EXPECT_LT(a.user, w.graph.num_users());
    }
  }
}

TEST(WorldGeneratorTest, SourceFrequenciesAreHeavyTailed) {
  // Fig. 1 shape: log-log slope of the source-frequency histogram clearly
  // negative.
  const synth::World w = SmallWorld(6);
  const PairFrequencyTable table(w.graph, w.log);
  ASSERT_GT(table.total_pairs(), 100u);
  const double slope = table.SourceFrequencyDistribution().LogLogSlope();
  EXPECT_LT(slope, -0.4) << "source-frequency distribution not heavy-tailed";
}

TEST(WorldGeneratorTest, TargetFrequenciesAreHeavyTailed) {
  const synth::World w = SmallWorld(7);
  const PairFrequencyTable table(w.graph, w.log);
  const double slope = table.TargetFrequencyDistribution().LogLogSlope();
  EXPECT_LT(slope, -0.4);
}

TEST(WorldGeneratorTest, DiggLikeZeroFriendShareNearPaper) {
  // Fig. 3: ~70% of Digg adoptions happen with zero previously-active
  // friends. The generator targets that regime; allow a generous band.
  const synth::World w = SmallWorld(8);
  const Histogram h = ActiveFriendCountDistribution(w.graph, w.log);
  const double at_zero = h.CdfAt(0);
  EXPECT_GT(at_zero, 0.5);
  EXPECT_LT(at_zero, 0.9);
}

TEST(WorldGeneratorTest, FlickrLikeHasLowerZeroFriendShare) {
  synth::WorldProfile digg = synth::WorldProfile::DiggLike();
  digg.num_users = 600;
  digg.num_items = 80;
  synth::WorldProfile flickr = synth::WorldProfile::FlickrLike();
  flickr.num_users = 600;
  flickr.num_items = 80;
  Rng rng1(9);
  Rng rng2(9);
  const synth::World dw = std::move(synth::GenerateWorld(digg, rng1)).value();
  const synth::World fw =
      std::move(synth::GenerateWorld(flickr, rng2)).value();
  const double digg_zero =
      ActiveFriendCountDistribution(dw.graph, dw.log).CdfAt(0);
  const double flickr_zero =
      ActiveFriendCountDistribution(fw.graph, fw.log).CdfAt(0);
  EXPECT_GT(digg_zero, flickr_zero)
      << "digg-like should be more spontaneous than flickr-like";
}

TEST(WorldGeneratorTest, DeterministicGivenSeed) {
  synth::WorldProfile p = synth::WorldProfile::DiggLike();
  p.num_users = 200;
  p.num_items = 30;
  Rng rng1(10);
  Rng rng2(10);
  const synth::World a = std::move(synth::GenerateWorld(p, rng1)).value();
  const synth::World b = std::move(synth::GenerateWorld(p, rng2)).value();
  EXPECT_EQ(a.graph.num_edges(), b.graph.num_edges());
  EXPECT_EQ(a.log.num_episodes(), b.log.num_episodes());
  EXPECT_EQ(a.log.num_actions(), b.log.num_actions());
}

TEST(WorldGeneratorTest, LinearThresholdWorldsGenerate) {
  synth::WorldProfile profile = synth::WorldProfile::DiggLike();
  profile.num_users = 400;
  profile.num_items = 80;
  profile.spread_model =
      synth::WorldProfile::SpreadModel::kLinearThreshold;
  Rng rng(31);
  auto world = synth::GenerateWorld(profile, rng);
  ASSERT_TRUE(world.ok()) << world.status().ToString();
  EXPECT_GT(world.value().log.num_episodes(), 10u);
  // Influence still happens under LT: some adoptions have active friends.
  const Histogram h =
      ActiveFriendCountDistribution(world.value().graph, world.value().log);
  EXPECT_LT(h.CdfAt(0), 0.999);
}

TEST(WorldGeneratorTest, SpreadModelChangesTheCascades) {
  synth::WorldProfile ic = synth::WorldProfile::DiggLike();
  ic.num_users = 300;
  ic.num_items = 40;
  synth::WorldProfile lt = ic;
  lt.spread_model = synth::WorldProfile::SpreadModel::kLinearThreshold;
  Rng rng1(33);
  Rng rng2(33);
  const synth::World a = std::move(synth::GenerateWorld(ic, rng1)).value();
  const synth::World b = std::move(synth::GenerateWorld(lt, rng2)).value();
  EXPECT_NE(a.log.num_actions(), b.log.num_actions());
}

TEST(WorldGeneratorTest, InterestComputesDotProduct) {
  const synth::World w = SmallWorld(11);
  double manual = 0.0;
  for (uint32_t t = 0; t < w.profile.num_topics; ++t) {
    manual += w.UserTopic(3, t) * w.ItemTopic(2, t);
  }
  EXPECT_NEAR(w.Interest(3, 2), manual, 1e-12);
}

}  // namespace
}  // namespace inf2vec
