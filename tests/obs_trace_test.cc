#include "obs/trace.h"

#include <string>

#include <gtest/gtest.h>

#include "obs/json.h"

namespace inf2vec {
namespace obs {
namespace {

TEST(TraceCollectorTest, DisabledCollectorRecordsNothingViaSpans) {
  TraceCollector collector(8);
  ASSERT_FALSE(collector.enabled());
  { TraceSpan span("noop", "test", &collector); }
  EXPECT_EQ(collector.size(), 0u);
}

TEST(TraceCollectorTest, SpansRecordNameCategoryAndDuration) {
  TraceCollector collector(8);
  collector.set_enabled(true);
  { TraceSpan span("work", "test", &collector); }
  ASSERT_EQ(collector.size(), 1u);
  const std::vector<TraceEvent> events = collector.Events();
  const TraceEvent& e = events[0];
  EXPECT_EQ(e.name, "work");
  EXPECT_EQ(e.category, "test");
  EXPECT_GE(e.duration_us, 0u);
}

TEST(TraceCollectorTest, NestedSpansCloseInnerFirst) {
  TraceCollector collector(8);
  collector.set_enabled(true);
  {
    TraceSpan outer("outer", "test", &collector);
    { TraceSpan inner("inner", "test", &collector); }
  }
  ASSERT_EQ(collector.size(), 2u);
  const std::vector<TraceEvent> events = collector.Events();
  // Destruction order: inner records before outer.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[1].name, "outer");
  // The outer interval contains the inner one (that containment is how
  // chrome://tracing reconstructs nesting).
  EXPECT_LE(events[1].start_us, events[0].start_us);
  EXPECT_GE(events[1].start_us + events[1].duration_us,
            events[0].start_us + events[0].duration_us);
}

TEST(TraceCollectorTest, RingOverflowKeepsNewestEvents) {
  TraceCollector collector(4);
  collector.set_enabled(true);
  for (int i = 0; i < 10; ++i) {
    collector.Record(TraceEvent{"e" + std::to_string(i), "test", 0,
                                static_cast<uint64_t>(i), 1});
  }
  EXPECT_EQ(collector.size(), 4u);
  EXPECT_EQ(collector.dropped(), 6u);
  const std::vector<TraceEvent> events = collector.Events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first order over the surviving (newest) window: e6..e9.
  EXPECT_EQ(events[0].name, "e6");
  EXPECT_EQ(events[3].name, "e9");
}

TEST(TraceCollectorTest, ClearEmptiesRingAndRestartsEpoch) {
  TraceCollector collector(4);
  collector.set_enabled(true);
  collector.Record(TraceEvent{"old", "test", 0, 0, 1});
  collector.Clear();
  EXPECT_EQ(collector.size(), 0u);
  EXPECT_EQ(collector.dropped(), 0u);
}

TEST(TraceCollectorTest, ChromeTraceJsonIsValidAndComplete) {
  TraceCollector collector(8);
  collector.set_enabled(true);
  collector.Record(TraceEvent{"phase \"a\"", "cat", 3, 10, 25});
  collector.Record(TraceEvent{"phase_b", "cat", 0, 40, 5});

  const std::string json = collector.ToChromeTraceJson();
  Result<JsonValue> parsed = ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue& root = parsed.value();
  EXPECT_EQ(root.Find("displayTimeUnit")->AsString(), "ms");

  const JsonValue* events = root.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->size(), 2u);
  const JsonValue& first = events->items()[0];
  // Quotes in span names survive the escape/parse round trip.
  EXPECT_EQ(first.Find("name")->AsString(), "phase \"a\"");
  EXPECT_EQ(first.Find("ph")->AsString(), "X");
  EXPECT_EQ(first.Find("ts")->AsInt(), 10);
  EXPECT_EQ(first.Find("dur")->AsInt(), 25);
  EXPECT_EQ(first.Find("pid")->AsInt(), 1);
  EXPECT_EQ(first.Find("tid")->AsInt(), 3);
}

TEST(TraceCollectorTest, SpanAgainstDefaultCollectorHonoursEnableFlag) {
  TraceCollector& collector = TraceCollector::Default();
  collector.Clear();
  collector.set_enabled(true);
  { TraceSpan span("default-span"); }
  EXPECT_EQ(collector.size(), 1u);
  collector.set_enabled(false);
  collector.Clear();
}

}  // namespace
}  // namespace obs
}  // namespace inf2vec
