#include "obs/trace.h"

#include <string>

#include <gtest/gtest.h>

#include "obs/json.h"

namespace inf2vec {
namespace obs {
namespace {

TEST(TraceCollectorTest, DisabledCollectorRecordsNothingViaSpans) {
  TraceCollector collector(8);
  ASSERT_FALSE(collector.enabled());
  { TraceSpan span("noop", "test", &collector); }
  EXPECT_EQ(collector.size(), 0u);
}

TEST(TraceCollectorTest, SpansRecordNameCategoryAndDuration) {
  TraceCollector collector(8);
  collector.set_enabled(true);
  { TraceSpan span("work", "test", &collector); }
  ASSERT_EQ(collector.size(), 1u);
  const std::vector<TraceEvent> events = collector.Events();
  const TraceEvent& e = events[0];
  EXPECT_EQ(e.name, "work");
  EXPECT_EQ(e.category, "test");
  EXPECT_GE(e.duration_us, 0u);
}

TEST(TraceCollectorTest, NestedSpansCloseInnerFirst) {
  TraceCollector collector(8);
  collector.set_enabled(true);
  {
    TraceSpan outer("outer", "test", &collector);
    { TraceSpan inner("inner", "test", &collector); }
  }
  ASSERT_EQ(collector.size(), 2u);
  const std::vector<TraceEvent> events = collector.Events();
  // Destruction order: inner records before outer.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[1].name, "outer");
  // The outer interval contains the inner one (that containment is how
  // chrome://tracing reconstructs nesting).
  EXPECT_LE(events[1].start_us, events[0].start_us);
  EXPECT_GE(events[1].start_us + events[1].duration_us,
            events[0].start_us + events[0].duration_us);
}

TEST(TraceCollectorTest, RingOverflowKeepsNewestEvents) {
  TraceCollector collector(4);
  collector.set_enabled(true);
  for (int i = 0; i < 10; ++i) {
    collector.Record(TraceEvent{"e" + std::to_string(i), "test", 0,
                                static_cast<uint64_t>(i), 1});
  }
  EXPECT_EQ(collector.size(), 4u);
  EXPECT_EQ(collector.dropped(), 6u);
  const std::vector<TraceEvent> events = collector.Events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first order over the surviving (newest) window: e6..e9.
  EXPECT_EQ(events[0].name, "e6");
  EXPECT_EQ(events[3].name, "e9");
}

TEST(TraceCollectorTest, ClearEmptiesRingAndRestartsEpoch) {
  TraceCollector collector(4);
  collector.set_enabled(true);
  collector.Record(TraceEvent{"old", "test", 0, 0, 1});
  collector.Clear();
  EXPECT_EQ(collector.size(), 0u);
  EXPECT_EQ(collector.dropped(), 0u);
}

TEST(TraceCollectorTest, ChromeTraceJsonIsValidAndComplete) {
  TraceCollector collector(8);
  collector.set_enabled(true);
  collector.Record(TraceEvent{"phase \"a\"", "cat", 3, 10, 25});
  collector.Record(TraceEvent{"phase_b", "cat", 0, 40, 5});

  const std::string json = collector.ToChromeTraceJson();
  Result<JsonValue> parsed = ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue& root = parsed.value();
  EXPECT_EQ(root.Find("displayTimeUnit")->AsString(), "ms");

  const JsonValue* events = root.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->size(), 2u);
  const JsonValue& first = events->items()[0];
  // Quotes in span names survive the escape/parse round trip.
  EXPECT_EQ(first.Find("name")->AsString(), "phase \"a\"");
  EXPECT_EQ(first.Find("ph")->AsString(), "X");
  EXPECT_EQ(first.Find("ts")->AsInt(), 10);
  EXPECT_EQ(first.Find("dur")->AsInt(), 25);
  EXPECT_EQ(first.Find("pid")->AsInt(), 1);
  EXPECT_EQ(first.Find("tid")->AsInt(), 3);
}

TEST(TraceCollectorTest, SpanAgainstDefaultCollectorHonoursEnableFlag) {
  TraceCollector& collector = TraceCollector::Default();
  collector.Clear();
  collector.set_enabled(true);
  { TraceSpan span("default-span"); }
  EXPECT_EQ(collector.size(), 1u);
  collector.set_enabled(false);
  collector.Clear();
}

TEST(TraceCollectorTest, RingOverflowCountsDroppedEvents) {
  TraceCollector collector(4);
  collector.set_enabled(true);
  for (int i = 0; i < 10; ++i) {
    TraceSpan span("spin", "test", &collector);
  }
  EXPECT_EQ(collector.size(), 4u);
  EXPECT_EQ(collector.dropped(), 6u);
  collector.Clear();
  EXPECT_EQ(collector.dropped(), 0u);
}

TEST(TraceSpanTest, NestedSpansLinkParentAndChildIds) {
  TraceCollector collector(8);
  collector.set_enabled(true);
  uint64_t outer_id = 0;
  {
    TraceSpan outer("outer", "test", &collector);
    outer_id = outer.span_id();
    EXPECT_EQ(TraceSpan::Current(), &outer);
    {
      TraceSpan inner("inner", "test", &collector);
      EXPECT_EQ(TraceSpan::Current(), &inner);
      EXPECT_NE(inner.span_id(), outer_id);
    }
    EXPECT_EQ(TraceSpan::Current(), &outer);
  }
  EXPECT_EQ(TraceSpan::Current(), nullptr);

  const std::vector<TraceEvent> events = collector.Events();
  ASSERT_EQ(events.size(), 2u);
  const TraceEvent& inner = events[0];  // Inner closes first.
  const TraceEvent& outer = events[1];
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(inner.parent_id, outer_id);
  EXPECT_EQ(outer.id, outer_id);
  EXPECT_EQ(outer.parent_id, 0u);
}

TEST(TraceSpanTest, AttributesLandInRecordedEventArgs) {
  TraceCollector collector(8);
  collector.set_enabled(true);
  {
    TraceSpan span("attributed", "test", &collector);
    span.SetAttr("seed_count", static_cast<uint64_t>(12));
    span.SetAttr("cache_hit", true);
    span.SetAttr("kernel_isa", "avx2");
  }
  const std::vector<TraceEvent> events = collector.Events();
  ASSERT_EQ(events.size(), 1u);
  const auto& args = events[0].args;
  ASSERT_EQ(args.size(), 3u);
  EXPECT_EQ(args[0], (std::pair<std::string, std::string>{"seed_count",
                                                          "12"}));
  EXPECT_EQ(args[1], (std::pair<std::string, std::string>{"cache_hit",
                                                          "true"}));
  EXPECT_EQ(args[2], (std::pair<std::string, std::string>{"kernel_isa",
                                                          "avx2"}));
}

TEST(TraceSpanTest, InertSpanIgnoresAttributesAndHasNoCurrent) {
  TraceCollector collector(8);  // Disabled, no sink installed.
  TraceSpan span("inert", "test", &collector);
  EXPECT_FALSE(span.active());
  span.SetAttr("ignored", "value");  // Must not crash or allocate args.
  EXPECT_EQ(TraceSpan::Current(), nullptr);
}

/// Collects every span finished on the installing thread.
class RecordingSink : public TraceSink {
 public:
  void OnSpanEnd(const TraceEvent& event) override {
    events.push_back(event);
  }
  std::vector<TraceEvent> events;
};

TEST(TraceSinkTest, SinkReceivesSpansEvenWithCollectorDisabled) {
  TraceCollector collector(8);
  ASSERT_FALSE(collector.enabled());
  RecordingSink sink;
  {
    ScopedTraceSink guard(&sink);
    TraceSpan span("sunk", "test", &collector);
    EXPECT_TRUE(span.active());
    span.SetAttr("k", "v");
  }
  EXPECT_EQ(ThreadTraceSink(), nullptr);  // Guard restored the previous.
  ASSERT_EQ(sink.events.size(), 1u);
  EXPECT_EQ(sink.events[0].name, "sunk");
  ASSERT_EQ(sink.events[0].args.size(), 1u);
  // Nothing reached the (disabled) collector.
  EXPECT_EQ(collector.size(), 0u);
}

TEST(TraceSinkTest, ChromeTraceEmitsSpanLinkageInArgs) {
  TraceCollector collector(8);
  collector.set_enabled(true);
  {
    TraceSpan outer("outer", "test", &collector);
    TraceSpan inner("inner", "test", &collector);
  }
  Result<JsonValue> doc = ParseJson(collector.ToChromeTraceJson());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const JsonValue* events = doc.value().Find("traceEvents");
  ASSERT_NE(events, nullptr);
  const JsonValue& inner = events->items()[0];
  const JsonValue* args = inner.Find("args");
  ASSERT_NE(args, nullptr);
  EXPECT_GT(args->Find("span_id")->AsInt(), 0);
  EXPECT_GT(args->Find("parent_id")->AsInt(), 0);
}

}  // namespace
}  // namespace obs
}  // namespace inf2vec
