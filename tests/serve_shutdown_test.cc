// Serve lifecycle regression tests. The pinned bug: a SIGINT delivered
// while `serve` was still loading the model used to hit the default signal
// disposition (handlers were only installed after the load) and kill the
// process; now the handlers are installed for the whole serve lifetime and
// a stop requested during the load exits cleanly before the server starts.

#include <csignal>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <future>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "cli_commands.h"
#include "embedding/model_io.h"
#include "util/flags.h"
#include "util/rng.h"

namespace inf2vec {
namespace cli {
namespace {

FlagParser ParseArgs(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "inf2vec_cli");
  auto parser = FlagParser::Parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(parser.ok());
  return std::move(parser).value();
}

class ServeShutdownTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("inf2vec_shutdown_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
    model_path_ = (dir_ / "model.bin").string();

    EmbeddingStore store(32, 4);
    Rng rng(3);
    store.InitUniform(-0.5, 0.5, rng);
    ModelMetadata metadata;
    metadata.aggregation = "Ave";
    metadata.dim = 4;
    ASSERT_TRUE(SaveModelArtifact(store, metadata, model_path_).ok());
  }
  void TearDown() override {
    SetServeStartupHookForTest(nullptr);
    std::filesystem::remove_all(dir_);
  }

  std::filesystem::path dir_;
  std::string model_path_;
};

TEST_F(ServeShutdownTest, SigintDuringModelLoadExitsCleanly) {
  // The hook runs right after the load finishes — the widest point of the
  // old race window. Raising SIGINT there must neither kill the process
  // (the old bug) nor start the server.
  SetServeStartupHookForTest([]() { std::raise(SIGINT); });

  const auto start = std::chrono::steady_clock::now();
  const Status status = RunServe(
      ParseArgs({"serve", "--model", model_path_.c_str(), "--port", "0",
                 "--max-seconds", "30"}));
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  EXPECT_TRUE(status.ok()) << status.ToString();
  // Well under --max-seconds: the serve loop never started.
  EXPECT_LT(elapsed, 5.0);
}

TEST_F(ServeShutdownTest, SigintDuringFailedLoadStillReportsTheLoadError) {
  SetServeStartupHookForTest([]() { std::raise(SIGINT); });
  const Status status = RunServe(
      ParseArgs({"serve", "--model", (dir_ / "missing.bin").string().c_str(),
                 "--port", "0", "--max-seconds", "30"}));
  EXPECT_FALSE(status.ok());
}

TEST_F(ServeShutdownTest, RequestServeStopEndsARunningServer) {
  std::promise<void> loaded;
  SetServeStartupHookForTest([&loaded]() { loaded.set_value(); });

  Status status = Status::OK();
  std::thread server([&]() {
    status = RunServe(ParseArgs({"serve", "--model", model_path_.c_str(),
                                 "--port", "0", "--max-seconds", "30"}));
  });
  // Wait until the model is loaded, give the serve loop a beat to start,
  // then stop it the way the signal handler would.
  ASSERT_EQ(loaded.get_future().wait_for(std::chrono::seconds(20)),
            std::future_status::ready);
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  RequestServeStop();
  server.join();
  EXPECT_TRUE(status.ok()) << status.ToString();
}

}  // namespace
}  // namespace cli
}  // namespace inf2vec
