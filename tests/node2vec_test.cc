#include "baselines/node2vec.h"

#include <gtest/gtest.h>

#include "graph/graph_generators.h"

namespace inf2vec {
namespace {

/// Barbell graph: two dense cliques joined by one bridge edge. Node2vec
/// should place same-clique nodes closer than cross-clique nodes.
SocialGraph BarbellGraph() {
  GraphBuilder builder(12);
  for (UserId u = 0; u < 6; ++u) {
    for (UserId v = 0; v < 6; ++v) {
      if (u != v) builder.AddEdge(u, v);
    }
  }
  for (UserId u = 6; u < 12; ++u) {
    for (UserId v = 6; v < 12; ++v) {
      if (u != v) builder.AddEdge(u, v);
    }
  }
  builder.AddUndirectedEdge(5, 6);
  return std::move(builder.Build()).value();
}

TEST(Node2vecTest, TrainRejectsBadOptions) {
  const SocialGraph g = BarbellGraph();
  Node2vecOptions options;
  options.dim = 0;
  EXPECT_FALSE(Node2vecModel::Train(g, options).ok());
  options = Node2vecOptions();
  options.walk_length = 1;
  EXPECT_FALSE(Node2vecModel::Train(g, options).ok());
}

TEST(Node2vecTest, TrainOnEdgelessGraphFails) {
  GraphBuilder builder(5);
  const SocialGraph g = std::move(builder.Build()).value();
  Node2vecOptions options;
  EXPECT_FALSE(Node2vecModel::Train(g, options).ok());
}

TEST(Node2vecTest, CapturesCommunityStructure) {
  const SocialGraph g = BarbellGraph();
  Node2vecOptions options;
  options.dim = 8;
  options.walks_per_node = 8;
  options.walk_length = 15;
  options.epochs = 3;
  auto model = Node2vecModel::Train(g, options);
  ASSERT_TRUE(model.ok());
  const EmbeddingStore& store = model.value().embeddings();

  double same = 0.0;
  double cross = 0.0;
  int same_n = 0;
  int cross_n = 0;
  for (UserId u = 0; u < 12; ++u) {
    for (UserId v = 0; v < 12; ++v) {
      if (u == v) continue;
      if ((u < 6) == (v < 6)) {
        same += store.Score(u, v);
        ++same_n;
      } else {
        cross += store.Score(u, v);
        ++cross_n;
      }
    }
  }
  EXPECT_GT(same / same_n, cross / cross_n);
}

TEST(Node2vecTest, BiasesRemainZero) {
  const SocialGraph g = BarbellGraph();
  Node2vecOptions options;
  options.dim = 4;
  options.walks_per_node = 2;
  options.walk_length = 8;
  options.epochs = 1;
  auto model = Node2vecModel::Train(g, options);
  ASSERT_TRUE(model.ok());
  for (UserId u = 0; u < 12; ++u) {
    EXPECT_DOUBLE_EQ(model.value().embeddings().source_bias(u), 0.0);
    EXPECT_DOUBLE_EQ(model.value().embeddings().target_bias(u), 0.0);
  }
}

TEST(Node2vecTest, DeterministicGivenSeed) {
  const SocialGraph g = BarbellGraph();
  Node2vecOptions options;
  options.dim = 4;
  options.walks_per_node = 2;
  options.walk_length = 8;
  options.epochs = 1;
  options.seed = 5;
  auto m1 = Node2vecModel::Train(g, options);
  auto m2 = Node2vecModel::Train(g, options);
  ASSERT_TRUE(m1.ok());
  ASSERT_TRUE(m2.ok());
  EXPECT_EQ(m1.value().embeddings(), m2.value().embeddings());
}

TEST(Node2vecTest, PredictorName) {
  const SocialGraph g = BarbellGraph();
  Node2vecOptions options;
  options.dim = 4;
  options.walks_per_node = 1;
  options.walk_length = 5;
  options.epochs = 1;
  auto model = Node2vecModel::Train(g, options);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model.value().Predictor().name(), "Node2vec");
}

}  // namespace
}  // namespace inf2vec
