// Quickstart: the smallest end-to-end Inf2vec workflow.
//
// 1. Build a social graph and an action log by hand (the same shapes you
//    would load from TSV files with LoadEdgeList / LoadActionLog).
// 2. Train an Inf2vec model.
// 3. Ask influence questions: "how strongly does u influence v?" and
//    "which users will this seed set activate?".
//
// Run:  ./quickstart

#include <cstdio>

#include "core/inf2vec_model.h"
#include "graph/social_graph.h"
#include "util/logging.h"

namespace {

using namespace inf2vec;  // NOLINT: example brevity.

/// A little world: user 0 is an opinion leader followed by 1..4; users 5-7
/// follow 1 and 2.
SocialGraph BuildGraph() {
  GraphBuilder builder(8);
  for (UserId v = 1; v <= 4; ++v) builder.AddEdge(0, v);
  builder.AddEdge(1, 5);
  builder.AddEdge(1, 6);
  builder.AddEdge(2, 6);
  builder.AddEdge(2, 7);
  Result<SocialGraph> graph = builder.Build();
  INF2VEC_CHECK(graph.ok()) << graph.status().ToString();
  return std::move(graph).value();
}

/// Observed cascades: whatever user 0 adopts, users 1, 2 and then 5..7
/// tend to adopt shortly after; 3 and 4 rarely react.
ActionLog BuildLog() {
  ActionLog log;
  for (ItemId item = 0; item < 30; ++item) {
    DiffusionEpisode episode(item);
    episode.Add(0, 10);
    episode.Add(1, 20);
    episode.Add(2, 25);
    if (item % 2 == 0) episode.Add(5, 30);
    if (item % 3 == 0) episode.Add(6, 35);
    if (item % 3 == 1) episode.Add(7, 40);
    if (item % 10 == 0) episode.Add(3, 50);
    INF2VEC_CHECK_OK(episode.Finalize());
    log.AddEpisode(std::move(episode));
  }
  return log;
}

}  // namespace

int main() {
  const SocialGraph graph = BuildGraph();
  const ActionLog log = BuildLog();
  std::printf("world: %u users, %llu edges, %zu episodes\n",
              graph.num_users(),
              static_cast<unsigned long long>(graph.num_edges()),
              log.num_episodes());

  // Train with paper defaults scaled to toy size.
  Inf2vecConfig config;
  config.dim = 16;
  config.epochs = 20;
  config.context.length = 10;
  Result<Inf2vecModel> model = Inf2vecModel::Train(graph, log, config);
  INF2VEC_CHECK(model.ok()) << model.status().ToString();

  // Pairwise influence scores x(u, v) = S_u . T_v + b_u + b~_v.
  std::printf("\ninfluence scores from user 0:\n");
  for (UserId v = 1; v < graph.num_users(); ++v) {
    std::printf("  x(0 -> %u) = %+.3f\n", v, model.value().Score(0, v));
  }

  // Activation prediction through the shared predictor interface (Eq. 7).
  const EmbeddingPredictor predictor = model.value().Predictor();
  std::printf("\nP-score that user 6 activates given {1, 2} active: %+.3f\n",
              predictor.ScoreActivation(6, {1, 2}));

  // Diffusion prediction: rank everyone by expected influence from seeds.
  Rng rng(1);
  const std::vector<double> spread = predictor.ScoreDiffusion({0}, rng);
  std::printf("\ndiffusion scores with seed {0}:\n");
  for (UserId v = 0; v < graph.num_users(); ++v) {
    std::printf("  user %u: %+.3f\n", v, spread[v]);
  }
  std::printf("\nExpect followers 1 and 2 (and their audience 5-7) to score "
              "above the inactive users 3 and 4.\n");
  return 0;
}
