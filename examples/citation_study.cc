// Citation case study (Section V-D): who will cite this author next?
//
// Mirrors the paper's DBLP experiment on a synthetic citation network:
// train an influence embedding on 80% of author-level citation influence
// pairs, then predict each test author's top-10 future "followers" and
// compare against the conventional ST + Monte-Carlo pipeline.
//
// Run:  ./citation_study

#include <cstdio>

#include "citation/case_study.h"
#include "citation/citation_generator.h"
#include "util/logging.h"

int main() {
  using namespace inf2vec;            // NOLINT: example brevity.
  using namespace inf2vec::citation;  // NOLINT: example brevity.

  CitationProfile profile;
  profile.num_authors = 800;
  profile.num_papers = 1600;
  Rng rng(11);
  Result<CitationData> data = GenerateCitationNetwork(profile, rng);
  INF2VEC_CHECK(data.ok()) << data.status().ToString();
  std::printf(
      "citation network: %u authors, %zu influence relationships\n",
      data.value().num_authors, data.value().influence_pairs.size());

  CaseStudyOptions options;
  options.dim = 32;
  options.epochs = 6;
  options.mc_simulations = 300;
  Result<CaseStudyResult> result =
      RunCitationCaseStudy(data.value(), options, rng);
  INF2VEC_CHECK(result.ok()) << result.status().ToString();

  const CaseStudyResult& r = result.value();
  std::printf("\ntop-%u follower prediction over %zu test authors:\n",
              options.top_k, r.num_test_authors);
  std::printf("  embedding model    avg precision: %.4f\n",
              r.embedding_avg_precision);
  std::printf("  conventional model avg precision: %.4f\n",
              r.conventional_avg_precision);

  std::printf("\nmost-cited test authors (hits out of top-%u):\n",
              options.top_k);
  for (const auto& ex : r.examples) {
    std::printf("  author %-5u embedding %u/%u   conventional %u/%u\n",
                ex.author, ex.embedding_hits, options.top_k,
                ex.conventional_hits, options.top_k);
  }
  std::printf("\nThe embedding model identifies more true followers — the "
              "paper's Table VI pattern.\n");
  return 0;
}
