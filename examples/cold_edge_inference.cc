// Cold-edge inference: the sparsity argument from the paper's introduction.
//
// Per-edge learners (ST) can say nothing about a social edge that never
// appeared in an observed propagation — its estimate is stuck at 0. An
// embedding model still scores such an edge through the latent space,
// because the endpoints' vectors were trained on *other* interactions.
//
// This example quantifies that: among social edges with ZERO observed
// propagations in training, does the model's score still separate edges
// with high planted probability from edges with low planted probability?
//
// Run:  ./cold_edge_inference

#include <algorithm>
#include <cstdio>
#include <vector>

#include "baselines/ic_baseline.h"
#include "core/inf2vec_model.h"
#include "diffusion/influence_pairs.h"
#include "synth/world_generator.h"
#include "util/logging.h"

namespace {

using namespace inf2vec;  // NOLINT: example brevity.

/// Rank-correlation style score: AUC of `scores` against the top-quartile
/// vs bottom-quartile of `truth`.
double SeparationAuc(const std::vector<double>& scores,
                     const std::vector<double>& truth) {
  std::vector<size_t> order(truth.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return truth[a] < truth[b]; });
  const size_t quartile = truth.size() / 4;
  double wins = 0.0;
  double total = 0.0;
  for (size_t i = 0; i < quartile; ++i) {
    for (size_t j = truth.size() - quartile; j < truth.size(); ++j) {
      total += 1.0;
      if (scores[order[j]] > scores[order[i]]) {
        wins += 1.0;
      } else if (scores[order[j]] == scores[order[i]]) {
        wins += 0.5;
      }
    }
  }
  return total > 0 ? wins / total : 0.5;
}

}  // namespace

int main() {
  synth::WorldProfile profile = synth::WorldProfile::DiggLike();
  profile.num_users = 800;
  profile.num_items = 150;
  Rng rng(31);
  Result<synth::World> world_result = synth::GenerateWorld(profile, rng);
  INF2VEC_CHECK(world_result.ok()) << world_result.status().ToString();
  const synth::World& world = world_result.value();

  // Which edges ever carried an observed influence pair?
  std::vector<bool> observed(world.graph.num_edges(), false);
  for (const DiffusionEpisode& episode : world.log.episodes()) {
    for (const InfluencePair& p :
         ExtractInfluencePairs(world.graph, episode)) {
      const int64_t e = world.graph.EdgeId(p.source, p.target);
      if (e >= 0) observed[static_cast<uint64_t>(e)] = true;
    }
  }
  uint64_t cold = 0;
  for (bool b : observed) cold += b ? 0 : 1;
  std::printf("social edges: %llu total, %llu (%.0f%%) never observed "
              "propagating — the sparsity problem\n",
              static_cast<unsigned long long>(world.graph.num_edges()),
              static_cast<unsigned long long>(cold),
              100.0 * cold / world.graph.num_edges());

  // Train both learners on the full observed log.
  Inf2vecConfig config;
  config.dim = 32;
  config.epochs = 5;
  config.context.length = 20;
  Result<Inf2vecModel> model =
      Inf2vecModel::Train(world.graph, world.log, config);
  INF2VEC_CHECK(model.ok()) << model.status().ToString();
  const IcBaselineModel st = CreateStaticModel(world.graph, world.log, 1);

  // Collect cold edges with their planted truth and both models' scores.
  std::vector<double> truth;
  std::vector<double> emb_scores;
  std::vector<double> st_scores;
  for (UserId u = 0; u < world.graph.num_users(); ++u) {
    for (UserId v : world.graph.OutNeighbors(u)) {
      const uint64_t e = static_cast<uint64_t>(world.graph.EdgeId(u, v));
      if (observed[e]) continue;
      truth.push_back(world.true_probs.Get(e));
      emb_scores.push_back(model.value().Score(u, v));
      st_scores.push_back(st.probs().Get(e));
    }
  }

  const double emb_auc = SeparationAuc(emb_scores, truth);
  const double st_auc = SeparationAuc(st_scores, truth);
  std::printf("\nseparating truly-strong from truly-weak COLD edges "
              "(quartile AUC):\n");
  std::printf("  Inf2vec embedding : %.3f\n", emb_auc);
  std::printf("  ST per-edge MLE   : %.3f   (stuck at its prior — every "
              "cold edge scores 0)\n", st_auc);
  std::printf("\nEmbeddings generalize to never-observed edges; per-edge "
              "counting cannot. This is Section I's motivating claim.\n");
  return 0;
}
