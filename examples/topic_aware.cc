// Topic-aware influence: the paper's first future-work direction, working
// end to end. Episodes are clustered by audience; each sufficiently large
// cluster gets its own Inf2vec model; predictions interpolate the global
// and topic-specific scores, with the topic of an unseen cascade inferred
// from its already-active users.
//
// Run:  ./topic_aware

#include <cstdio>

#include "core/topic_inf2vec.h"
#include "eval/activation_task.h"
#include "eval/topic_eval.h"
#include "synth/world_generator.h"
#include "util/logging.h"

int main() {
  using namespace inf2vec;  // NOLINT: example brevity.

  synth::WorldProfile profile = synth::WorldProfile::DiggLike();
  profile.num_users = 800;
  profile.num_items = 200;
  Rng rng(77);
  Result<synth::World> world = synth::GenerateWorld(profile, rng);
  INF2VEC_CHECK(world.ok()) << world.status().ToString();
  Rng split_rng(8);
  const LogSplit split = SplitLog(world.value().log, 0.8, 0.0, split_rng);
  std::printf("world: %u users, %zu train episodes, %zu test episodes\n",
              world.value().graph.num_users(),
              split.train.num_episodes(), split.test.num_episodes());

  TopicInf2vecConfig config;
  config.base.dim = 32;
  config.base.epochs = 6;
  config.base.context.length = 20;
  config.clustering.num_clusters = 6;
  config.topic_weight = 0.4;
  Result<TopicInf2vecModel> model = TopicInf2vecModel::Train(
      world.value().graph, split.train, config);
  INF2VEC_CHECK(model.ok()) << model.status().ToString();

  std::printf("\naudience clusters (episodes per topic): ");
  for (uint32_t size : model.value().clustering().ClusterSizes()) {
    std::printf("%u ", size);
  }
  std::printf("\ntopic models trained: ");
  for (uint32_t c = 0; c < model.value().num_topics(); ++c) {
    std::printf("%c", model.value().topic_model(c) != nullptr ? 'Y' : '-');
  }
  std::printf("  (- = cluster too small, global fallback)\n");

  // Same protocol, global vs topic-aware scoring.
  const RankingMetrics global = EvaluateActivation(
      model.value().global_model().Predictor(), world.value().graph,
      split.test);
  const RankingMetrics topical = EvaluateActivationTopicAware(
      model.value(), world.value().graph, split.test);
  std::printf("\nactivation prediction on held-out episodes:\n");
  std::printf("  %-14s AUC %.4f   MAP %.4f\n", "global only", global.auc,
              global.map);
  std::printf("  %-14s AUC %.4f   MAP %.4f\n", "topic-aware", topical.auc,
              topical.map);

  // Show topic inference at prediction time: the first test episode's
  // early adopters pick the topic.
  const DiffusionEpisode& episode = split.test.episodes()[0];
  std::vector<UserId> early;
  for (size_t i = 0; i < episode.size() && i < 5; ++i) {
    early.push_back(episode.adoptions()[i].user);
  }
  std::printf("\nfirst test episode: early adopters map to topic %u of %u\n",
              model.value().InferTopic(early), model.value().num_topics());
  std::printf("Interpolation weight w = %.1f; set w = 0 to recover plain "
              "Inf2vec exactly.\n", config.topic_weight);
  return 0;
}
