// Viral marketing: use learned influence embeddings to pick seed users —
// the application that motivates influence-parameter learning in the
// paper's introduction (Kempe et al.'s influence maximization).
//
// Pipeline:
//   1. Generate a Digg-like synthetic world (social graph + cascades).
//   2. Train Inf2vec on the observed cascades.
//   3. Pick k seeds three ways: embedding-space greedy over the learned
//      scores (SelectSeedsEmbedding), classical CELF greedy over the
//      ST-estimated edge probabilities, and top-out-degree / random
//      baselines.
//   4. Validate every seed set by simulating the *ground-truth* cascade
//      process the generator planted — something a real marketer cannot
//      do, but our synthetic world can: whose seeds actually spread
//      furthest?
//
// Run:  ./viral_marketing

#include <algorithm>
#include <cstdio>
#include <vector>

#include "baselines/ic_baseline.h"
#include "core/inf2vec_model.h"
#include "core/influence_maximization.h"
#include "synth/world_generator.h"
#include "util/logging.h"

namespace {

using namespace inf2vec;  // NOLINT: example brevity.

std::vector<UserId> PickSeedsByDegree(const SocialGraph& graph, uint32_t k) {
  std::vector<UserId> users(graph.num_users());
  for (UserId u = 0; u < graph.num_users(); ++u) users[u] = u;
  std::sort(users.begin(), users.end(), [&](UserId a, UserId b) {
    return graph.OutDegree(a) > graph.OutDegree(b);
  });
  users.resize(k);
  return users;
}

/// Ground-truth spread: average cascade size under the planted edge
/// probabilities (the oracle a real marketer lacks).
double TrueSpread(const synth::World& world,
                  const std::vector<UserId>& seeds, Rng& rng) {
  return EstimateSpread(world.graph, world.true_probs, seeds, 300, rng);
}

}  // namespace

int main() {
  synth::WorldProfile profile = synth::WorldProfile::DiggLike();
  profile.num_users = 600;
  profile.num_items = 150;
  Rng rng(2024);
  Result<synth::World> world_result = synth::GenerateWorld(profile, rng);
  INF2VEC_CHECK(world_result.ok()) << world_result.status().ToString();
  const synth::World& world = world_result.value();
  std::printf("world: %u users, %llu edges, %zu cascades observed\n",
              world.graph.num_users(),
              static_cast<unsigned long long>(world.graph.num_edges()),
              world.log.num_episodes());

  // Learn influence two ways from the same observations.
  Inf2vecConfig config;
  config.dim = 32;
  config.epochs = 8;
  config.context.length = 20;
  Result<Inf2vecModel> model =
      Inf2vecModel::Train(world.graph, world.log, config);
  INF2VEC_CHECK(model.ok()) << model.status().ToString();
  const IcBaselineModel st = CreateStaticModel(world.graph, world.log, 1);

  InfluenceMaxOptions options;
  options.num_seeds = 5;
  options.mc_simulations = 100;

  Result<SeedSelection> emb =
      SelectSeedsEmbedding(model.value().embeddings(), options);
  INF2VEC_CHECK(emb.ok()) << emb.status().ToString();
  Result<SeedSelection> celf_st =
      SelectSeedsCelf(world.graph, st.probs(), options);
  INF2VEC_CHECK(celf_st.ok()) << celf_st.status().ToString();
  const std::vector<UserId> deg_seeds =
      PickSeedsByDegree(world.graph, options.num_seeds);
  std::vector<UserId> rnd_seeds;
  Rng pick_rng(7);
  while (rnd_seeds.size() < options.num_seeds) {
    const UserId u =
        static_cast<UserId>(pick_rng.UniformU64(world.graph.num_users()));
    if (std::find(rnd_seeds.begin(), rnd_seeds.end(), u) ==
        rnd_seeds.end()) {
      rnd_seeds.push_back(u);
    }
  }

  Rng sim_rng(99);
  std::printf("\nexpected cascade size under the PLANTED truth:\n");
  std::printf("  Inf2vec embedding greedy : %7.1f users\n",
              TrueSpread(world, emb.value().seeds, sim_rng));
  std::printf("  CELF over ST estimates   : %7.1f users\n",
              TrueSpread(world, celf_st.value().seeds, sim_rng));
  std::printf("  top-degree seeds         : %7.1f users\n",
              TrueSpread(world, deg_seeds, sim_rng));
  std::printf("  random seeds             : %7.1f users\n",
              TrueSpread(world, rnd_seeds, sim_rng));

  std::printf("\nInf2vec seeds: ");
  for (UserId u : emb.value().seeds) std::printf("%u ", u);
  std::printf("\nLearned embeddings recover influential users without ever "
              "seeing the planted edge probabilities.\n");
  return 0;
}
